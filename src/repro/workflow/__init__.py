"""End-to-end workflows: auto-labeling at scale, accuracy experiments, data preparation."""

from .autolabel import AutoLabelWorkflow, AutoLabelWorkflowConfig, AutoLabelWorkflowResult
from .preparation import PreparationTiming, run_preparation_pipeline
from .training import AccuracyExperimentConfig, AccuracyExperimentResult, run_accuracy_experiment

__all__ = [
    "AutoLabelWorkflow",
    "AutoLabelWorkflowConfig",
    "AutoLabelWorkflowResult",
    "PreparationTiming",
    "run_preparation_pipeline",
    "AccuracyExperimentConfig",
    "AccuracyExperimentResult",
    "run_accuracy_experiment",
]
