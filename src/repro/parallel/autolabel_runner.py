"""Parallel auto-labeling runner (the workload of Table I / Figure 10).

Combines the tile stack, the cloud/shadow filter and the colour-segmentation
labeler with :mod:`repro.parallel.pool` into a single entry point that labels
a dataset at a configurable process count and reports the scaling table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..labeling.autolabel import autolabel_tile
from ..metrics.scaling import ScalingPoint, ScalingTable
from .pool import measure_scaling, parallel_map

__all__ = ["AutoLabelRunConfig", "run_parallel_autolabel", "autolabel_scaling_table"]


@dataclass(frozen=True)
class AutoLabelRunConfig:
    """Configuration of one parallel auto-labeling run."""

    num_workers: int = 1
    chunk_size: int | None = None
    apply_cloud_filter: bool = True


def _label_one(tile: np.ndarray) -> np.ndarray:
    """Module-level worker function (picklable) with the paper's default settings."""
    return autolabel_tile(tile, apply_cloud_filter=True)


def _label_one_unfiltered(tile: np.ndarray) -> np.ndarray:
    return autolabel_tile(tile, apply_cloud_filter=False)


def run_parallel_autolabel(
    tiles: np.ndarray,
    config: AutoLabelRunConfig = AutoLabelRunConfig(),
) -> tuple[np.ndarray, float]:
    """Auto-label a ``(N, H, W, 3)`` tile stack in parallel.

    Returns ``(labels, elapsed_seconds)`` with ``labels`` of shape ``(N, H, W)``.
    """
    stack = np.asarray(tiles)
    if stack.ndim != 4 or stack.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
    func = _label_one if config.apply_cloud_filter else _label_one_unfiltered
    result = parallel_map(func, list(stack), num_workers=config.num_workers, chunk_size=config.chunk_size)
    return np.stack(result.results), result.elapsed


def autolabel_scaling_table(
    tiles: np.ndarray,
    worker_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    apply_cloud_filter: bool = True,
) -> ScalingTable:
    """Measure auto-labeling wall time at several process counts (Table I).

    The returned :class:`~repro.metrics.scaling.ScalingTable` exposes the
    speedup column exactly as the paper tabulates it (``S = Ts / Tp`` with
    ``Ts`` the 1-process row).
    """
    stack = np.asarray(tiles)
    func = _label_one if apply_cloud_filter else _label_one_unfiltered
    measurements = measure_scaling(func, list(stack), worker_counts=worker_counts)
    points = [
        ScalingPoint(workers=m.num_workers, time=m.elapsed, items=stack.shape[0]) for m in measurements
    ]
    return ScalingTable(points=points, label="Python multiprocessing auto-labeling")
