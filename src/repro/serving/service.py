"""JSON-over-HTTP serving front-end (stdlib ``http.server`` only).

The service wires the other serving pieces together: a
:class:`~repro.serving.registry.ModelRegistry` resolves model names to warm
classifiers, and every model gets one shared
:class:`~repro.serving.batching.MicroBatcher`, so tiles from *concurrent*
HTTP requests (``ThreadingHTTPServer`` runs one thread per connection)
coalesce into single batched forward passes.

Endpoints::

    GET  /healthz   → {"status": "ok", "uptime_s": ..., "models": [...]}
    GET  /models    → registry listing (versions, latest, what is warm)
    POST /predict   → {"model": "name", "version": 2, "tile": [[[r,g,b]...]]}
                    → {"class_map": [[...]], "counts": {...}, ...}

``/predict`` accepts one ``tile`` (``(H, W, 3)`` nested uint8 lists) or a
``tiles`` batch, defaults to the registry's only model when just one is
registered, and returns per-class probability maps instead of the argmax
map when ``"proba": true``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .batching import MicroBatcher
from .registry import ModelRegistry

__all__ = ["ServiceConfig", "InferenceService", "make_server", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the HTTP front-end and its micro-batchers.

    ``bucket_batches`` (default on) makes every micro-batcher pad flushed
    batches up to power-of-two sizes, pinning the compiled-plan engine to a
    fixed set of batch shapes per tile shape.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 16
    batch_window_s: float = 0.005
    request_timeout_s: float = 60.0
    bucket_batches: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")


class InferenceService:
    """Registry + per-model micro-batchers behind a JSON API (HTTP-agnostic)."""

    def __init__(self, registry: ModelRegistry, config: ServiceConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.started_at = time.time()
        self._batchers: dict[tuple[str, int], MicroBatcher] = {}
        self._lock = threading.Lock()
        self._requests = 0
        self._tiles = 0
        # Warm-model eviction (LRU cap or version hot-swap) retires the
        # evicted entry's micro-batcher — and with it the pinned plans.
        registry.add_evict_listener(self._on_warm_evicted)

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "models": sorted(self.registry.models()),
            "requests": self._requests,
            "tiles": self._tiles,
        }

    def models_payload(self) -> dict:
        models = self.registry.models()
        warm = set(self.registry.loaded_versions())
        return {
            "models": [
                {
                    "name": name,
                    "versions": versions,
                    "latest": versions[-1],
                    "warm": [v for v in versions if (name, v) in warm],
                }
                for name, versions in models.items()
            ]
        }

    # ------------------------------------------------------------------ #
    def _resolve_model_name(self, name: str | None) -> str:
        if name:
            return name
        models = sorted(self.registry.models())
        if len(models) == 1:
            return models[0]
        raise KeyError(
            "request must name a 'model' when the registry holds "
            f"{len(models)} models: {models}"
        )

    def _batcher(self, name: str, version: int | None) -> tuple[MicroBatcher, tuple[str, int]]:
        record = self.registry.record(name, version)
        key = (record.name, record.version)
        with self._lock:
            batcher = self._batchers.get(key)
        if batcher is not None:
            return batcher, key

        # Cold path outside the lock: loading a big archive must not stall
        # requests for models that are already warm.
        classifier = self.registry.classifier(record.name, record.version)

        batcher = MicroBatcher(
            classifier.predict_batch,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.batch_window_s,
            bucket_batches=self.config.bucket_batches,
        )
        retired: list[MicroBatcher] = []
        with self._lock:
            existing = self._batchers.get(key)
            if existing is not None:
                retired.append(batcher)  # lost the load race; keep the first
                batcher = existing
            else:
                self._batchers[key] = batcher
                if version is None:
                    # Hot swap: stop serving superseded versions of this model.
                    for other in [k for k in self._batchers if k[0] == record.name and k[1] < record.version]:
                        retired.append(self._batchers.pop(other))
        for old in retired:
            old.close()
        return batcher, key

    def predict_payload(self, body: dict) -> dict:
        """Serve one ``/predict`` request body; raises ``ValueError``/``KeyError``."""
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        if ("tile" in body) == ("tiles" in body):
            raise ValueError("request must provide exactly one of 'tile' or 'tiles'")
        raw = body.get("tile") if "tile" in body else body.get("tiles")
        try:
            stack = np.asarray(raw, dtype=np.uint8)
        except (OverflowError, TypeError, ValueError) as exc:
            raise ValueError(f"tile pixels must be uint8 values in [0, 255]: {exc}") from exc
        if "tile" in body:
            stack = stack[None]
        if stack.ndim != 4 or stack.shape[-1] != 3:
            raise ValueError(f"tiles must be (H, W, 3) uint8 arrays, got shape {stack.shape[1:]}")

        name = self._resolve_model_name(body.get("model"))
        version = body.get("version")
        return_proba = bool(body.get("proba", False))
        start = time.perf_counter()
        batcher, (name, resolved_version) = self._batcher(name, version)
        pending = [batcher.submit(tile) for tile in stack]
        probs = np.stack([p.result(self.config.request_timeout_s) for p in pending])
        class_maps = probs.argmax(axis=1).astype(np.uint8)
        with self._lock:
            self._requests += 1
            self._tiles += len(pending)

        values, counts = np.unique(class_maps, return_counts=True)
        payload: dict = {
            "model": name,
            "version": resolved_version,
            "num_tiles": int(stack.shape[0]),
            "tile_shape": list(stack.shape[1:3]),
            "class_counts": {int(v): int(c) for v, c in zip(values, counts)},
            "elapsed_ms": round((time.perf_counter() - start) * 1e3, 3),
        }
        maps_out = class_maps.tolist() if "tiles" in body else class_maps[0].tolist()
        if return_proba:
            payload["proba"] = probs.tolist() if "tiles" in body else probs[0].tolist()
        payload["class_map"] = maps_out
        return payload

    def _on_warm_evicted(self, key: tuple[str, int]) -> None:
        """Registry listener: close the micro-batcher of a retired warm model."""
        with self._lock:
            batcher = self._batchers.pop(key, None)
        if batcher is not None:
            batcher.close()

    def batcher_stats(self) -> dict:
        with self._lock:
            return {
                f"{name}/{version}": batcher.stats().to_dict()
                for (name, version), batcher in sorted(self._batchers.items())
            }

    def backend_stats(self) -> dict:
        """Execution-backend occupancy per warm model (``/stats``).

        A warm classifier with an in-process (serial) config reports just its
        backend name; thread/fork classifiers report live worker occupancy,
        published models and dispatch counters from :meth:`Backend.occupancy`.
        """
        stats: dict = {}
        for name, version in self.registry.loaded_versions():
            classifier = self.registry.warm_classifier(name, version)
            if classifier is None:  # raced retirement between the two reads
                continue
            backend = classifier.backend
            if backend is None:
                stats[f"{name}/{version}"] = {"backend": "serial", "workers": 1}
            else:
                stats[f"{name}/{version}"] = backend.occupancy()
        return stats

    def stats_payload(self) -> dict:
        """The ``/stats`` body: batcher counters, backend occupancy, warm models."""
        return {
            "batchers": self.batcher_stats(),
            "backends": self.backend_stats(),
            "warm_models": {
                "count": self.registry.warm_count(),
                "max_warm": self.registry.max_warm,
                "loaded": [f"{name}/{version}" for name, version in self.registry.loaded_versions()],
            },
        }

    def close(self) -> None:
        self.registry.remove_evict_listener(self._on_warm_evicted)
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()


# ---------------------------------------------------------------------- #
# HTTP layer
# ---------------------------------------------------------------------- #
def _make_handler(service: InferenceService, quiet: bool) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - console noise
            if not quiet:
                super().log_message(fmt, *args)

        def _send_json(self, status: int, payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                if self.path in ("/healthz", "/health"):
                    self._send_json(200, service.health())
                elif self.path == "/models":
                    self._send_json(200, service.models_payload())
                elif self.path == "/stats":
                    self._send_json(200, service.stats_payload())
                else:
                    self._send_json(404, {"error": f"unknown path {self.path!r}"})
            except Exception as exc:  # noqa: BLE001 - must answer the socket
                self._send_json(500, {"error": str(exc)})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/predict":
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError as exc:
                    raise ValueError(f"request body is not valid JSON: {exc}") from exc
                self._send_json(200, service.predict_payload(body))
            except (ValueError, KeyError) as exc:
                # str(KeyError) wraps the message in repr quotes; unwrap it.
                message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
                self._send_json(400, {"error": message})
            except TimeoutError as exc:
                self._send_json(503, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - must answer the socket
                self._send_json(500, {"error": str(exc)})

    return Handler


def make_server(
    service: InferenceService, host: str | None = None, port: int | None = None, quiet: bool = True
) -> ThreadingHTTPServer:
    """Bind a :class:`ThreadingHTTPServer` for ``service`` (port 0 → ephemeral).

    The caller owns the server: run ``serve_forever()`` (often in a thread),
    then ``shutdown()`` + ``server_close()`` and ``service.close()``.
    """
    host = service.config.host if host is None else host
    port = service.config.port if port is None else port
    return ThreadingHTTPServer((host, port), _make_handler(service, quiet))


def run_service(service: InferenceService, quiet: bool = False, on_ready=None) -> None:
    """Blocking convenience runner used by the CLI (Ctrl-C to stop).

    ``on_ready(server)`` is called after the socket is bound but before
    requests are served — the CLI uses it to print the machine-readable
    ready line with the actual port (``--port 0`` binds an ephemeral one).
    """
    server = make_server(service, quiet=quiet)
    try:
        if on_ready is not None:
            on_ready(server)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
