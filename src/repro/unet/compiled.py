"""Compile a :class:`~repro.unet.UNet` into a zero-allocation inference plan.

:func:`compile_unet_plan` walks the encoder–bottleneck–decoder graph once for
a concrete ``(N, C, H, W)`` input shape and emits a
:class:`~repro.nn.plan.CompiledPlan` whose steps run the *exact* eval-mode
forward (offset-GEMM convolutions, fused bias+ReLU, window max pooling,
fused 2× upsample + edge pad) into a single preallocated workspace arena.

Two structural fusions fall out of planning ahead:

* **Concatenation disappears.**  Each decoder level's merged feature map is
  one arena buffer; the matching encoder's second convolution writes its
  skip activation directly into the upper channel slice during the
  contracting pass, and the up-convolution GEMMs into the lower slice during
  the expansive pass — no ``np.concatenate``, no skip copy.
* **Padding is free.**  Padded-input buffers are dedicated and zeroed once at
  compile time; each call only rewrites the interior.

:class:`CompiledUNet` wraps a model with an LRU :class:`~repro.nn.plan.PlanCache`
so consumers just call :meth:`CompiledUNet.predict_proba` and plans appear
per traffic shape.  Plans snapshot weights at compile time — call
:meth:`CompiledUNet.clear` after mutating parameters (e.g. more training).
"""

from __future__ import annotations

import numpy as np

from ..nn.plan import INPUT, CompiledPlan, PlanBuilder, PlanCache
from .model import UNet

__all__ = ["compile_unet_plan", "iter_plan_conv_layers", "CompiledUNet"]


def iter_plan_conv_layers(model: UNet):
    """Yield ``(name, Conv2D)`` for every convolution a U-Net plan packs.

    The names are the layers' dotted module paths (the same paths
    ``state_dict`` uses), in plan execution order.  This is the single
    enumeration both :func:`compile_unet_plan` and the shared-memory model
    store rely on, so pre-packed weights published under these names line up
    with the plan steps that bind them.
    """
    if not isinstance(model, UNet):
        raise TypeError(f"iter_plan_conv_layers requires a UNet, got {type(model).__name__}")
    for e, encoder in enumerate(model.encoders):
        yield f"encoders.{e}.conv.conv1", encoder.conv.conv1
        yield f"encoders.{e}.conv.conv2", encoder.conv.conv2
    yield "bottleneck.conv1", model.bottleneck.conv1
    yield "bottleneck.conv2", model.bottleneck.conv2
    for j, decoder in enumerate(model.decoders):
        yield f"decoders.{j}.upconv.conv", decoder.upconv.conv
        yield f"decoders.{j}.conv.conv1", decoder.conv.conv1
        yield f"decoders.{j}.conv.conv2", decoder.conv.conv2
    yield "head", model.head


def compile_unet_plan(
    model: UNet, input_shape: tuple[int, ...], packed_weights: dict | None = None
) -> CompiledPlan:
    """Compile ``model``'s eval forward for one concrete input shape.

    The plan computes ``softmax(model.forward(x), axis=1)`` — the same maps
    :meth:`UNet.predict_proba` produces — without per-call allocations.
    ``packed_weights`` maps :func:`iter_plan_conv_layers` names to pre-packed
    ``(w_mat, bias)`` pairs (e.g. read-only views into a shared-memory weight
    arena); layers found there bind the shared pack instead of copying.
    """
    if not isinstance(model, UNet):
        raise TypeError(f"compile_unet_plan requires a UNet, got {type(model).__name__}")
    cfg = model.config
    if len(input_shape) != 4:
        raise ValueError(f"expected a (N, C, H, W) input shape, got {input_shape}")
    n, c, h, w = (int(d) for d in input_shape)
    if c != cfg.in_channels:
        raise ValueError(f"model expects {cfg.in_channels} input channels, got {c}")
    step = cfg.min_input_size()
    if h % step or w % step:
        raise ValueError(f"input spatial size must be divisible by {step} for depth {cfg.depth}")

    widths = cfg.encoder_channels()
    b = PlanBuilder((n, c, h, w), packed_weights=packed_weights)

    # Merged (up-convolution ‖ skip) buffers, one per encoder/decoder level.
    # Channel layout matches Concat(upsampled, skip): [0:width) up, [width:2w) skip.
    merged = [b.reserve((n, 2 * widths[e], h >> e, w >> e)) for e in range(cfg.depth)]

    x = INPUT
    for e, encoder in enumerate(model.encoders):
        block = encoder.conv  # DoubleConv (dropout is identity in eval)
        x = b.conv2d(x, block.conv1, relu=True, name=f"encoders.{e}.conv.conv1")
        skip = b.conv2d(x, block.conv2, relu=True, out=merged[e].slice(widths[e], 2 * widths[e]),
                        name=f"encoders.{e}.conv.conv2")
        x = b.maxpool(skip, encoder.pool.pool_size)

    x = b.conv2d(x, model.bottleneck.conv1, relu=True, name="bottleneck.conv1")
    x = b.conv2d(x, model.bottleneck.conv2, relu=True, name="bottleneck.conv2")

    for j, decoder in enumerate(model.decoders):
        e = cfg.depth - 1 - j
        up = b.upsample_pad(x)
        b.conv2d(up, decoder.upconv.conv, relu=False, out=merged[e].slice(0, widths[e]),
                 name=f"decoders.{j}.upconv.conv")
        x = b.conv2d(merged[e], decoder.conv.conv1, relu=True, name=f"decoders.{j}.conv.conv1")
        x = b.conv2d(x, decoder.conv.conv2, relu=True, name=f"decoders.{j}.conv.conv2")

    logits = b.conv2d(x, model.head, relu=False, name="head")
    b.softmax_output(logits)
    return b.finalize()


class CompiledUNet:
    """A model plus its per-shape LRU plan cache — the serving hot path.

    Drop-in for the ``predict_proba`` seam: the first call at a new input
    shape compiles a plan (one arena allocation), later calls at that shape
    run allocation-free.  Thread-safe; concurrent runs of the same shape are
    serialised by the plan's lock, distinct shapes run in parallel.
    """

    def __init__(self, model: UNet, max_plans: int = 8, packed_weights: dict | None = None):
        if not isinstance(model, UNet):
            raise TypeError(f"CompiledUNet requires a UNet, got {type(model).__name__}")
        self.model = model
        self.max_plans = int(max_plans)
        self._cache = PlanCache(
            lambda shape: compile_unet_plan(model, shape, packed_weights=packed_weights),
            max_plans=max_plans,
        )

    def predict_proba(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Class probabilities ``(N, K, H, W)`` through the compiled plan.

        ``out`` routes the final softmax into a caller-provided float32
        buffer (bit-identical values, zero output allocation) — the seam the
        shared-memory backend workers use to write straight into a shared
        output arena.
        """
        x = np.asarray(x, dtype=np.float32)
        return self._cache.get(x.shape).run(x, out=out)

    def warm(self, input_shape: tuple[int, ...]) -> CompiledPlan:
        """Pre-compile (and cache) the plan for ``input_shape``."""
        return self._cache.get(input_shape)

    def clear(self) -> None:
        """Drop every cached plan (required after the model's weights change)."""
        self._cache.clear()

    def cache_info(self) -> dict:
        return self._cache.info()

    def enable_profiling(self, enabled: bool = True) -> None:
        """Toggle per-step timing on every currently cached plan.

        Plans compiled *after* this call start unprofiled — re-enable after
        warming new shapes (the ``repro-seaice profile`` runner warms first,
        then enables, so its measured iterations all profile).
        """
        for _shape, plan in self._cache.items():
            plan.enable_profiling(enabled)

    def profile_info(self) -> dict[tuple[int, ...], list[dict]]:
        """``{input_shape: per-step timings}`` for every profiled cached plan."""
        return {
            shape: info
            for shape, plan in self._cache.items()
            if (info := plan.profile_info())
        }
