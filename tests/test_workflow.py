"""Integration tests for repro.workflow (auto-label pipeline, accuracy experiment, prep timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workflow import (
    AccuracyExperimentConfig,
    AutoLabelWorkflow,
    AutoLabelWorkflowConfig,
    run_accuracy_experiment,
    run_preparation_pipeline,
)


class TestAutoLabelWorkflow:
    def test_serial_run(self, tiny_dataset):
        result = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial")).run(tiny_dataset)
        assert result.auto_labels.shape == tiny_dataset.labels.shape
        assert 0.0 <= result.ssim_vs_manual <= 1.0
        assert 0.0 <= result.pixel_agreement <= 1.0
        assert result.elapsed_s > 0
        summary = result.summary()
        assert summary["tiles"] == len(tiny_dataset)

    def test_backends_agree_on_labels(self, tiny_dataset):
        serial = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial")).run(tiny_dataset)
        mp = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="multiprocessing", num_workers=2)).run(tiny_dataset)
        mr = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="mapreduce", num_workers=2)).run(tiny_dataset)
        np.testing.assert_array_equal(serial.auto_labels, mp.auto_labels)
        np.testing.assert_array_equal(serial.auto_labels, mr.auto_labels)

    def test_filter_improves_agreement(self, tiny_dataset):
        with_filter = AutoLabelWorkflow(AutoLabelWorkflowConfig(apply_cloud_filter=True)).run(tiny_dataset)
        without = AutoLabelWorkflow(AutoLabelWorkflowConfig(apply_cloud_filter=False)).run(tiny_dataset)
        assert with_filter.pixel_agreement >= without.pixel_agreement - 0.02

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            AutoLabelWorkflowConfig(backend="spark")

    def test_chunk_size_threads_through_multiprocessing(self, tiny_dataset):
        config = AutoLabelWorkflowConfig(backend="multiprocessing", num_workers=2, chunk_size=2)
        chunked = AutoLabelWorkflow(config).run(tiny_dataset)
        serial = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial")).run(tiny_dataset)
        np.testing.assert_array_equal(chunked.auto_labels, serial.auto_labels)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            AutoLabelWorkflowConfig(chunk_size=0)

    def test_manual_label_shape_mismatch(self, tiny_dataset):
        workflow = AutoLabelWorkflow()
        with pytest.raises(ValueError):
            workflow.run(tiny_dataset, manual_labels=tiny_dataset.labels[:2])


class TestPreparationPipeline:
    def test_timing_summary(self):
        timing = run_preparation_pipeline(num_scenes=1, scene_size=64, tile_size=32, seed=0)
        assert timing.num_tiles == 4
        assert timing.total_s > 0
        summary = timing.summary()
        assert summary["num_scenes"] == 1
        assert summary["seconds_per_scene"] > 0

    def test_scales_with_scene_count(self):
        one = run_preparation_pipeline(num_scenes=1, scene_size=64, tile_size=32)
        two = run_preparation_pipeline(num_scenes=2, scene_size=64, tile_size=32)
        assert two.num_tiles == 2 * one.num_tiles

    def test_overlap_produces_more_tiles(self):
        disjoint = run_preparation_pipeline(num_scenes=1, scene_size=64, tile_size=32)
        overlapped = run_preparation_pipeline(num_scenes=1, scene_size=64, tile_size=32, overlap=8)
        assert overlapped.num_tiles > disjoint.num_tiles
        assert overlapped.summary()["tile_overlap"] == 8


class TestAccuracyExperiment:
    @pytest.fixture(scope="class")
    def small_result(self):
        """One small end-to-end run shared by the assertions below."""
        config = AccuracyExperimentConfig(
            num_scenes=3,
            scene_size=64,
            tile_size=32,
            cloudy_fraction=0.7,
            epochs=18,
            batch_size=4,
            learning_rate=3e-3,
            unet_depth=2,
            unet_base_channels=8,
            unet_dropout=0.0,
            seed=1,
        )
        return run_accuracy_experiment(config)

    def test_structure(self, small_result):
        rows4 = small_result.table4_rows()
        assert len(rows4) == 2
        assert {"dataset", "unet_man_accuracy_pct", "unet_auto_accuracy_pct"} <= set(rows4[0])
        assert small_result.unet_man is not small_result.unet_auto
        matrices = small_result.confusion_matrices()
        assert set(matrices) == {"man_original", "man_filtered", "auto_original", "auto_filtered"}
        assert matrices["auto_filtered"].shape == (3, 3)

    def test_models_learned_something(self, small_result):
        for variant in ("original", "filtered"):
            for model in ("man", "auto"):
                assert small_result.table4[variant][model].accuracy > 0.5

    def test_autolabel_quality_reported(self, small_result):
        assert 0.0 < small_result.autolabel_ssim <= 1.0
        assert 0.5 < small_result.autolabel_agreement <= 1.0

    def test_table5_rows_subset_of_splits(self, small_result):
        rows = small_result.table5_rows()
        assert 0 < len(rows) <= 4
        for row in rows:
            assert 0.0 <= row["unet_man_accuracy_pct"] <= 100.0
