"""Shared fixtures and helpers for the benchmark harness.

Every paper table / figure has a benchmark module that regenerates it at a
reduced but structurally identical scale (synthetic scenes instead of the
Sentinel-2 archive, CPU instead of GPUs/Dataproc, calibrated cost models for
the hardware sweeps).  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see the regenerated rows printed next to the paper's published values.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.data import build_dataset
from repro.workflow import AccuracyExperimentConfig, run_accuracy_experiment

#: Scale knobs of the benchmark workloads.  Increase toward the paper's scale
#: (66 scenes of 2048², 256-px tiles, depth-5/64-channel U-Net, 50 epochs)
#: when more compute time is available.
BENCH_NUM_SCENES = 6
BENCH_SCENE_SIZE = 256
BENCH_TILE_SIZE = 64

#: ``BENCH_SMOKE=1`` shrinks the throughput benchmarks to CI-smoke scale and
#: relaxes their speedup assertions (shared runners are too noisy to gate on
#: a ratio); the cache-size assertions are deterministic and stay strict.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "0") not in ("0", "")


def write_bench_json(name: str, payload: dict) -> str:
    """Write a benchmark result payload to ``BENCH_<name>.json``.

    The output lands in ``$BENCH_JSON_DIR`` (default: current directory) so
    CI can upload every ``BENCH_*.json`` as a workflow artifact and track the
    perf trajectory per PR.  Returns the path written.
    """
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[bench] wrote {path}")
    return path


def update_bench_json(name: str, section: str, payload) -> str:
    """Merge ``payload`` (any JSON-safe value) under ``section`` into ``BENCH_<name>.json``.

    Used when several benchmark tests contribute to one results file (e.g.
    the scene-throughput and compiled-plan arms of the inference benchmark):
    existing sections written earlier in the run are preserved.
    """
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    path = os.path.join(directory, f"BENCH_{name}.json")
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[section] = payload
    return write_bench_json(name, data)


def print_rows(title: str, rows: list[dict]) -> None:
    """Uniform table printer used by every benchmark module."""
    print(f"\n== {title} ==")
    for row in rows:
        print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))


def print_paper_vs_measured(title: str, paper_rows: list[dict], measured_rows: list[dict]) -> None:
    print_rows(f"{title} — paper", paper_rows)
    print_rows(f"{title} — this reproduction", measured_rows)


@pytest.fixture(scope="session")
def bench_dataset():
    """A moderate tile archive used by the auto-labeling scaling benchmarks."""
    return build_dataset(
        num_scenes=BENCH_NUM_SCENES,
        scene_size=BENCH_SCENE_SIZE,
        tile_size=BENCH_TILE_SIZE,
        base_seed=42,
        cloudy_fraction=0.5,
    )


@pytest.fixture(scope="session")
def accuracy_experiment():
    """One shared U-Net-Man vs U-Net-Auto experiment (Tables IV, V and Figure 13)."""
    config = AccuracyExperimentConfig(
        num_scenes=8,
        scene_size=128,
        tile_size=32,
        cloudy_fraction=0.5,
        epochs=30,
        batch_size=8,
        learning_rate=2e-3,
        unet_depth=3,
        unet_base_channels=12,
        unet_dropout=0.1,
        seed=7,
    )
    return run_accuracy_experiment(config)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(123)
