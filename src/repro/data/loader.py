"""Batch loading, normalisation and augmentation for U-Net training.

The paper "organise[s] the data into batches for the U-Net models using
dataloader" with batch sizes of 16/32/64 and relies on U-Net's heavy use of
data augmentation.  This loader converts uint8 RGB tiles into normalised
``(N, C, H, W)`` float32 batches with one-hot targets, supports shuffling
and the standard flip / rotate-90 augmentations that preserve label maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..classes import NUM_CLASSES

__all__ = ["image_to_tensor", "labels_to_onehot", "augment_pair", "augment_batch", "BatchLoader"]


def image_to_tensor(images: np.ndarray) -> np.ndarray:
    """Convert ``(N, H, W, 3)`` uint8 (or ``(H, W, 3)``) images to NCHW float32 in [0, 1]."""
    arr = np.asarray(images)
    single = arr.ndim == 3
    if single:
        arr = arr[None]
    if arr.ndim != 4 or arr.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) images, got shape {np.asarray(images).shape}")
    tensor = arr.astype(np.float32) / 255.0
    tensor = np.transpose(tensor, (0, 3, 1, 2))
    return tensor[0] if single else tensor


def labels_to_onehot(labels: np.ndarray, num_classes: int = NUM_CLASSES) -> np.ndarray:
    """Convert ``(N, H, W)`` integer class maps to ``(N, num_classes, H, W)`` float32 one-hot."""
    arr = np.asarray(labels)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    if arr.ndim != 3:
        raise ValueError(f"expected (N, H, W) labels, got shape {np.asarray(labels).shape}")
    if arr.min() < 0 or arr.max() >= num_classes:
        raise ValueError("labels outside [0, num_classes)")
    onehot = np.zeros((arr.shape[0], num_classes) + arr.shape[1:], dtype=np.float32)
    np.put_along_axis(onehot, arr.astype(np.intp)[:, None], 1.0, axis=1)
    return onehot[0] if single else onehot


def augment_pair(
    image: np.ndarray,
    label: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a random label-preserving augmentation to an (image, label) pair.

    ``image`` is ``(C, H, W)`` float32, ``label`` is ``(H, W)`` int.  The
    augmentation group is the 8-element dihedral group (flips + 90° rotations),
    which is exact for square tiles and keeps image/label aligned.
    """
    img = np.asarray(image)
    lab = np.asarray(label)
    if img.ndim != 3 or lab.ndim != 2 or img.shape[1:] != lab.shape:
        raise ValueError("augment_pair expects (C, H, W) image and matching (H, W) label")
    if rng.uniform() < 0.5:
        img = img[:, :, ::-1]
        lab = lab[:, ::-1]
    if rng.uniform() < 0.5:
        img = img[:, ::-1, :]
        lab = lab[::-1, :]
    k = int(rng.integers(0, 4))
    if k and img.shape[1] == img.shape[2]:
        img = np.rot90(img, k=k, axes=(1, 2))
        lab = np.rot90(lab, k=k)
    return np.ascontiguousarray(img), np.ascontiguousarray(lab)


def augment_batch(
    images: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply independent random dihedral augmentations to a whole batch at once.

    ``images`` is ``(N, C, H, W)`` float32, ``labels`` is ``(N, H, W)`` int;
    both are modified in place and returned.  Each sample draws its own flips
    and rotation (the same group :func:`augment_pair` uses), but the work is
    vectorised per transform over the sub-batch that drew it instead of
    looping tile by tile.
    """
    img = np.asarray(images)
    lab = np.asarray(labels)
    if img.ndim != 4 or lab.ndim != 3 or img.shape[2:] != lab.shape[1:] or img.shape[0] != lab.shape[0]:
        raise ValueError("augment_batch expects (N, C, H, W) images and matching (N, H, W) labels")
    n = img.shape[0]
    flip_w = rng.uniform(size=n) < 0.5
    if flip_w.any():
        img[flip_w] = img[flip_w, :, :, ::-1]
        lab[flip_w] = lab[flip_w, :, ::-1]
    flip_h = rng.uniform(size=n) < 0.5
    if flip_h.any():
        img[flip_h] = img[flip_h, :, ::-1, :]
        lab[flip_h] = lab[flip_h, ::-1, :]
    if img.shape[2] == img.shape[3]:
        quarter_turns = rng.integers(0, 4, size=n)
        for k in (1, 2, 3):
            sel = quarter_turns == k
            if sel.any():
                img[sel] = np.rot90(img[sel], k=k, axes=(2, 3))
                lab[sel] = np.rot90(lab[sel], k=k, axes=(1, 2))
    return img, lab


@dataclass
class BatchLoader:
    """Mini-batch iterator over (image, label) tile pairs.

    Parameters
    ----------
    images:
        ``(N, H, W, 3)`` uint8 tiles.
    labels:
        ``(N, H, W)`` integer class maps.
    batch_size:
        Number of tiles per batch (paper uses 16/32/64, default 32).
    shuffle:
        Reshuffle the order every epoch.
    augment:
        Apply random flips/rotations per sample.
    drop_last:
        Drop the final incomplete batch (needed for fixed-size distributed shards).
    seed:
        Seed of the loader's private random generator.
    """

    images: np.ndarray
    labels: np.ndarray
    batch_size: int = 32
    shuffle: bool = True
    augment: bool = False
    drop_last: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images)
        self.labels = np.asarray(self.labels)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must have the same length")
        if self.images.shape[0] == 0:
            raise ValueError("cannot build a loader over zero tiles")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._rng = np.random.default_rng(self.seed)

    def __len__(self) -> int:
        n = self.images.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    # ------------------------------------------------------------------ #
    def rng_state(self) -> dict:
        """JSON-serialisable snapshot of the loader's private generator.

        Captured into checkpoints so a resumed run replays the exact same
        shuffle permutations and augmentation draws as the uninterrupted
        one — shuffling and augmentation both consume this generator, so
        without the snapshot a resume silently forks the data trajectory.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    @property
    def num_samples(self) -> int:
        return int(self.images.shape[0])

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(x, y)`` with ``x`` NCHW float32 and ``y`` (N, H, W) int64."""
        n = self.images.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        num_batches = len(self)
        for b in range(num_batches):
            idx = order[b * self.batch_size : (b + 1) * self.batch_size]
            if idx.size == 0:
                continue
            x = image_to_tensor(self.images[idx])
            y = self.labels[idx].astype(np.int64)
            if self.augment:
                augment_batch(x, y, self._rng)
            yield x, y
