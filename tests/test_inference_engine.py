"""Tests for the overlap-aware batched scene-inference engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import softmax
from repro.unet import (
    InferenceConfig,
    SceneClassifier,
    UNet,
    predict_tile_probabilities,
    predict_tiles,
    tiny_unet_config,
)


@pytest.fixture(scope="module")
def engine_model():
    return UNet(tiny_unet_config(seed=9))


class _PixelwiseModel:
    """Stub whose per-pixel probabilities depend only on that pixel, making
    predictions tiling-invariant — the property the blend tests rely on."""

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        r, g, b = x[:, 0], x[:, 1], x[:, 2]
        logits = np.stack([3.0 * r - g, 2.0 * g - 0.5 * b, 1.5 * b + 0.25 * r], axis=1)
        return softmax(logits.astype(np.float32), axis=1)


class TestInferenceConfig:
    def test_defaults_valid(self):
        config = InferenceConfig()
        assert config.overlap == 0 and config.num_workers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tile_size": 0},
            {"overlap": -1},
            {"tile_size": 32, "overlap": 32},
            {"batch_size": 0},
            {"num_workers": 0},
        ],
    )
    def test_rejects_bad_options(self, kwargs):
        with pytest.raises(ValueError):
            InferenceConfig(**kwargs)

    def test_dict_roundtrip(self):
        config = InferenceConfig(tile_size=48, overlap=8, apply_cloud_filter=False,
                                 batch_size=4, num_workers=2)
        data = config.to_dict()
        import json

        assert json.loads(json.dumps(data)) == data  # JSON-safe
        assert InferenceConfig.from_dict(data) == config

    def test_from_dict_partial_uses_defaults(self):
        config = InferenceConfig.from_dict({"tile_size": 64})
        assert config == InferenceConfig(tile_size=64)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown InferenceConfig keys.*'typo_size'"):
            InferenceConfig.from_dict({"typo_size": 32})
        with pytest.raises(ValueError, match="dict"):
            InferenceConfig.from_dict([("tile_size", 32)])

    def test_from_dict_validates_values(self):
        with pytest.raises(ValueError):
            InferenceConfig.from_dict({"tile_size": 32, "overlap": 32})

    def test_backend_key_round_trips(self):
        config = InferenceConfig(backend="thread", num_workers=3)
        data = config.to_dict()
        assert data["backend"] == "thread"
        assert InferenceConfig.from_dict(data) == config

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            InferenceConfig(backend="gpu")

    def test_fork_backend_rejected_at_config_time_without_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setattr("repro.backend.base._fork_available", lambda: False)
        with pytest.raises(ValueError, match="fork"):
            InferenceConfig(backend="fork")
        # ... while "auto" quietly degrades instead of failing.
        config = InferenceConfig(backend="auto", num_workers=4)
        assert config.resolved_backend() == "serial"

    def test_resolved_backend_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert InferenceConfig().resolved_backend() == "serial"
        assert InferenceConfig(backend="serial", num_workers=8).resolved_backend() == "serial"


class TestPredictTiles:
    def test_empty_stack_returns_empty_map(self, engine_model):
        out = predict_tiles(engine_model, np.empty((0, 32, 32, 3), dtype=np.uint8))
        assert out.shape == (0, 32, 32)
        assert out.dtype == np.uint8

    def test_empty_stack_probabilities(self, engine_model):
        out = predict_tile_probabilities(engine_model, np.empty((0, 32, 32, 3), dtype=np.uint8))
        assert out.shape == (0, 3, 32, 32)
        assert out.dtype == np.float32

    def test_probabilities_shape_and_norm(self, engine_model, tiny_dataset):
        probs = predict_tile_probabilities(engine_model, tiny_dataset.images[:3], batch_size=2)
        assert probs.shape == (3, 3, 32, 32)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_probabilities_match_labels(self, engine_model, tiny_dataset):
        tiles = tiny_dataset.images[:4]
        labels = predict_tiles(engine_model, tiles, batch_size=2)
        probs = predict_tile_probabilities(engine_model, tiles, batch_size=2)
        np.testing.assert_array_equal(probs.argmax(axis=1).astype(np.uint8), labels)

    def test_multiprocess_matches_serial(self, engine_model, tiny_dataset):
        tiles = tiny_dataset.images[:6]
        serial = predict_tile_probabilities(engine_model, tiles, batch_size=2, num_workers=1)
        pooled = predict_tile_probabilities(engine_model, tiles, batch_size=2, num_workers=2)
        np.testing.assert_array_equal(serial, pooled)

    def test_rejects_bad_stack(self, engine_model, tiny_dataset):
        with pytest.raises(ValueError):
            predict_tile_probabilities(engine_model, tiny_dataset.labels)
        with pytest.raises(ValueError):
            predict_tile_probabilities(engine_model, tiny_dataset.images, batch_size=0)
        with pytest.raises(ValueError):
            predict_tile_probabilities(engine_model, tiny_dataset.images, num_workers=0)


class TestOverlapBlending:
    def _scene(self):
        rng = np.random.default_rng(11)
        return rng.integers(0, 255, size=(100, 140, 3), dtype=np.uint8)

    def test_blended_output_matches_non_overlap(self):
        """With a tiling-invariant model, overlap blending must reproduce the
        non-overlap classification exactly (interiors and seams)."""
        scene = self._scene()
        stub = _PixelwiseModel()

        def classify(overlap):
            config = InferenceConfig(tile_size=32, overlap=overlap, apply_cloud_filter=False, batch_size=4)
            return SceneClassifier(model=stub, config=config).classify_scene_proba(scene)

        probs0 = classify(0)
        probs8 = classify(8)
        np.testing.assert_allclose(probs8, probs0, atol=1e-6)
        np.testing.assert_array_equal(probs8.argmax(axis=-1), probs0.argmax(axis=-1))

    def test_proba_map_shape_and_norm(self, engine_model):
        scene = self._scene()
        config = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=False, batch_size=4)
        probs = SceneClassifier(model=engine_model, config=config).classify_scene_proba(scene)
        assert probs.shape == (100, 140, 3)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)

    def test_classify_scene_with_overlap_and_workers(self, engine_model):
        scene = self._scene()
        config = InferenceConfig(
            tile_size=32, overlap=8, apply_cloud_filter=False, batch_size=4, num_workers=2
        )
        class_map = SceneClassifier(model=engine_model, config=config).classify_scene(scene)
        assert class_map.shape == scene.shape[:2]
        assert set(np.unique(class_map)).issubset({0, 1, 2})


class TestSmallSceneHandling:
    """Scenes (or tile sizes) the model cannot ingest directly must pad-and-crop."""

    @pytest.fixture(scope="class")
    def deep_model(self):
        # depth 3 → forward requires spatial sizes divisible by 8.
        from repro.unet import UNetConfig

        return UNet(UNetConfig(depth=3, base_channels=4, dropout=0.0, seed=2))

    def test_tile_size_not_divisible_by_model_step(self, deep_model):
        """Regression: tile_size 20 with a depth-3 model used to raise."""
        scene = np.random.default_rng(0).integers(0, 255, size=(20, 20, 3), dtype=np.uint8)
        config = InferenceConfig(tile_size=20, apply_cloud_filter=False)
        class_map = SceneClassifier(model=deep_model, config=config).classify_scene(scene)
        assert class_map.shape == (20, 20)

    def test_scene_smaller_than_tile(self, deep_model):
        scene = np.random.default_rng(1).integers(0, 255, size=(13, 9, 3), dtype=np.uint8)
        config = InferenceConfig(tile_size=32, apply_cloud_filter=False)
        class_map = SceneClassifier(model=deep_model, config=config).classify_scene(scene)
        assert class_map.shape == (13, 9)

    def test_one_pixel_band_after_padding(self, deep_model):
        """A 33-row scene with 32-px tiles leaves a 1-pixel remainder band."""
        scene = np.random.default_rng(2).integers(0, 255, size=(33, 1, 3), dtype=np.uint8)
        config = InferenceConfig(tile_size=32, apply_cloud_filter=False)
        class_map = SceneClassifier(model=deep_model, config=config).classify_scene(scene)
        assert class_map.shape == (33, 1)

    def test_padding_does_not_change_divisible_results(self, engine_model, tiny_dataset):
        """The pad-and-crop seam is a no-op when sizes already divide evenly."""
        tiles = tiny_dataset.images[:4]
        probs = predict_tile_probabilities(engine_model, tiles, batch_size=2)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        assert probs.shape[2:] == tiles.shape[1:3]

    def test_odd_tiles_through_predict_tiles(self, deep_model):
        tiles = np.random.default_rng(3).integers(0, 255, size=(3, 20, 28, 3), dtype=np.uint8)
        labels = predict_tiles(deep_model, tiles, batch_size=2)
        assert labels.shape == (3, 20, 28)
        probs = predict_tile_probabilities(deep_model, tiles, batch_size=2)
        assert probs.shape == (3, 3, 20, 28)
        np.testing.assert_array_equal(probs.argmax(axis=1).astype(np.uint8), labels)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)


class TestEvalModeMemory:
    def test_inference_leaves_no_backward_caches(self, engine_model):
        """Eval-mode forward must not pin backward state (the seed kept the
        full im2col matrix of every conv alive during inference)."""
        engine_model.predict(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with pytest.raises(RuntimeError):
            engine_model.backward(np.zeros((1, 3, 32, 32), dtype=np.float32))

    def test_eval_forward_matches_train_forward_without_dropout(self):
        from repro.unet import UNetConfig

        model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=3))
        x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
        train_logits = model.train().forward(x)
        eval_logits = model.eval().forward(x)
        np.testing.assert_allclose(eval_logits, train_logits, atol=1e-4)


class TestPaddingAvoidsCopies:
    """Tile padding must be a no-op (same object, no reflect recompute) when
    the stack already matches the model's input multiple."""

    def test_pad_stack_already_multiple_returns_same_object(self, rng):
        from repro.unet.inference import _pad_stack_to_multiple

        stack = rng.integers(0, 255, size=(3, 32, 32, 3), dtype=np.uint8)
        assert _pad_stack_to_multiple(stack, 4) is stack
        assert _pad_stack_to_multiple(stack, 1) is stack

    def test_pad_stack_only_copies_when_needed(self, rng):
        from repro.unet.inference import _pad_stack_to_multiple

        stack = rng.integers(0, 255, size=(2, 30, 32, 3), dtype=np.uint8)
        padded = _pad_stack_to_multiple(stack, 8)
        assert padded is not stack and padded.shape == (2, 32, 32, 3)
        # Reflect padding: row 30 mirrors row 28, row 31 mirrors row 27.
        np.testing.assert_array_equal(padded[:, 30], stack[:, 28])
        np.testing.assert_array_equal(padded[:, 31], stack[:, 27])

    def test_pad_to_multiple_already_multiple_is_identity(self, rng):
        from repro.imops.resize import _pad_bottom_right, pad_to_multiple

        image = rng.integers(0, 255, size=(64, 96, 3), dtype=np.uint8)
        assert pad_to_multiple(image, 32) is image
        assert _pad_bottom_right(image, 0, 0, "reflect") is image

    def test_seam_output_equals_unpadded_forward(self, engine_model, rng):
        from repro.unet.inference import predict_batch_probabilities

        batch = rng.integers(0, 255, size=(2, 16, 16, 3), dtype=np.uint8)
        probs = predict_batch_probabilities(batch, engine_model, None)
        assert probs.shape[2:] == (16, 16)
