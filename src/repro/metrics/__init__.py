"""Evaluation metrics: classification scores, SSIM, and parallel-scaling metrics."""

from .classification import (
    ClassificationReport,
    accuracy_score,
    classification_report,
    confusion_matrix,
    iou_score,
    normalize_confusion,
    per_class_accuracy,
    precision_recall_f1,
)
from .scaling import (
    ScalingPoint,
    ScalingTable,
    amdahl_speedup,
    efficiency,
    fit_amdahl_serial_fraction,
    speedup,
    throughput,
)
from .ssim import mean_ssim_over_pairs, ssim

__all__ = [
    "ClassificationReport",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "iou_score",
    "normalize_confusion",
    "per_class_accuracy",
    "precision_recall_f1",
    "ScalingPoint",
    "ScalingTable",
    "amdahl_speedup",
    "efficiency",
    "fit_amdahl_serial_fraction",
    "speedup",
    "throughput",
    "mean_ssim_over_pairs",
    "ssim",
]
