"""Process-pool parallel map for the auto-labeling workflow (paper §III-B(a)).

The auto-labeling of Sentinel-2 tiles is embarrassingly parallel: every tile
is filtered and segmented independently.  This module provides the
single-machine scaling path the paper benchmarks in Table I — a
``multiprocessing.Pool`` based map with chunking, a serial reference path,
and a measurement harness that produces (process count, wall time) scaling
tables.

Idioms follow the HPC guides: the per-item work stays vectorised NumPy, the
driver only orchestrates; chunks are sized so each worker receives a few
large messages rather than thousands of tiny ones; and ``fork`` start method
is preferred so the read-only tile stack is shared copy-on-write instead of
being pickled to every worker.

Since the unified execution-backend seam landed, this module is a thin
adapter: the fan-out itself is :meth:`repro.backend.ProcessBackend.map`,
and this layer only keeps the historical measurement-oriented API
(:class:`ParallelMapResult`, :func:`measure_scaling`) on top of it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..backend.process import ProcessBackend

__all__ = [
    "available_cpu_count",
    "default_chunk_size",
    "serial_map",
    "parallel_map",
    "ParallelMapResult",
    "measure_scaling",
]


def available_cpu_count() -> int:
    """Number of usable CPUs (respects CPU affinity when available)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_chunk_size(num_items: int, num_workers: int, chunks_per_worker: int = 4) -> int:
    """Chunk size giving each worker a few sizable chunks (load balance vs overhead)."""
    if num_items <= 0:
        return 1
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    return max(1, int(np.ceil(num_items / (num_workers * chunks_per_worker))))


def serial_map(func: Callable, items: Sequence) -> list:
    """Reference serial implementation (the ``Ts`` baseline of Table I)."""
    return [func(item) for item in items]


@dataclass
class ParallelMapResult:
    """Results plus timing of one parallel map execution."""

    results: list
    elapsed: float
    num_workers: int
    chunk_size: int


def parallel_map(
    func: Callable,
    items: Sequence,
    num_workers: int | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
) -> ParallelMapResult:
    """Map ``func`` over ``items`` with a process pool, preserving order.

    Parameters
    ----------
    func:
        Picklable callable applied to each item (module-level functions such
        as :func:`repro.labeling.autolabel_tile` work; lambdas do not).
    items:
        Sequence of work items (e.g. a list of RGB tiles).
    num_workers:
        Worker processes; defaults to the available CPU count.  ``1`` runs
        serially in-process, which is the baseline row of the scaling tables.
        Workloads of 0 or 1 items also run serially regardless of
        ``num_workers`` (no pool is ever started); the returned
        :class:`ParallelMapResult` then reports the single in-process worker
        and single chunk that actually ran.
    chunk_size:
        Items per task message; defaults to :func:`default_chunk_size`.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; defaults to ``fork`` on
        platforms that support it so the input data is shared copy-on-write.
    """
    items = list(items)
    n = len(items)
    if num_workers is None:
        num_workers = available_cpu_count()
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if chunk_size is None:
        chunk_size = default_chunk_size(n, num_workers)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    start = time.perf_counter()
    if num_workers == 1 or n <= 1:
        # Serial short-circuit: a pool cannot recoup its fork/pickle overhead
        # for one worker or a 0/1-item workload.  The result reports what
        # actually ran — one in-process worker consuming a single chunk of n
        # items — not the requested worker count or the pre-computed chunk
        # size, which was never used on this path.
        results = serial_map(func, items)
        return ParallelMapResult(results, time.perf_counter() - start, 1, max(n, 1))

    if start_method is None:
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    with ProcessBackend(num_workers=num_workers, start_method=start_method) as backend:
        results = backend.map(func, items, chunk_size=chunk_size)
    return ParallelMapResult(results, time.perf_counter() - start, num_workers, chunk_size)


def measure_scaling(
    func: Callable,
    items: Sequence,
    worker_counts: Iterable[int] = (1, 2, 4, 6, 8),
    chunk_size: int | None = None,
) -> list[ParallelMapResult]:
    """Run the parallel map at several worker counts (the Table I sweep).

    The first entry of ``worker_counts`` should be 1 so the sequential time
    is measured by the same harness that measures the parallel times.
    """
    measurements = []
    for workers in worker_counts:
        measurements.append(parallel_map(func, items, num_workers=workers, chunk_size=chunk_size))
    return measurements
