"""Spectral (fractal) noise fields used to synthesise sea-ice scenes.

Real Sentinel-2 sea-ice scenes have spatial structure at every scale: large
floes, leads (cracks), brash ice and texture on the snow surface.  A
power-law ("1/f^beta") random field reproduces that multi-scale structure
and is cheap to generate with a single FFT, so it is the core primitive of
the synthetic data generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spectral_noise", "fractal_noise", "smooth_blobs"]


def spectral_noise(
    shape: tuple[int, int],
    beta: float = 2.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate a power-law noise field normalised to ``[0, 1]``.

    Parameters
    ----------
    shape:
        ``(height, width)`` of the field.
    beta:
        Spectral slope; 0 gives white noise, ~2 gives cloud-like smooth
        structure, larger values give ever smoother fields.
    rng:
        NumPy random generator (a fresh default generator when omitted).
    """
    h, w = int(shape[0]), int(shape[1])
    if h < 1 or w < 1:
        raise ValueError("shape must be positive")
    rng = rng or np.random.default_rng()

    # Frequency magnitudes for a real FFT grid.
    fy = np.fft.fftfreq(h)[:, None]
    fx = np.fft.rfftfreq(w)[None, :]
    freq = np.sqrt(fy * fy + fx * fx)
    freq[0, 0] = 1.0  # avoid division by zero at DC

    amplitude = freq ** (-beta / 2.0)
    amplitude[0, 0] = 0.0  # zero-mean field

    phase = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
    spectrum = amplitude * np.exp(1j * phase)
    field = np.fft.irfft2(spectrum, s=(h, w))

    lo, hi = field.min(), field.max()
    if hi - lo < 1e-15:
        return np.zeros((h, w))
    return (field - lo) / (hi - lo)


def fractal_noise(
    shape: tuple[int, int],
    octaves: int = 4,
    persistence: float = 0.55,
    base_beta: float = 2.5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sum several spectral-noise octaves for richer multi-scale texture."""
    if octaves < 1:
        raise ValueError("octaves must be >= 1")
    rng = rng or np.random.default_rng()
    field = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    for octave in range(octaves):
        beta = max(base_beta - 0.4 * octave, 0.5)
        field += amplitude * spectral_noise(shape, beta=beta, rng=rng)
        total += amplitude
        amplitude *= persistence
    field /= total
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-15:
        return np.zeros(shape)
    return (field - lo) / (hi - lo)


def smooth_blobs(
    shape: tuple[int, int],
    coverage: float,
    beta: float = 3.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Boolean mask of smooth blobs covering approximately ``coverage`` of the image.

    Thresholding a smooth random field at its ``(1 - coverage)`` quantile
    yields connected, organically shaped regions — how both cloud banks and
    open-water leads are placed in the synthetic scenes.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if coverage == 0.0:
        return np.zeros(shape, dtype=bool)
    if coverage == 1.0:
        return np.ones(shape, dtype=bool)
    field = spectral_noise(shape, beta=beta, rng=rng)
    threshold = np.quantile(field, 1.0 - coverage)
    return field >= threshold
