"""Tests for the reliability substrate (deadlines, backpressure, breakers,
retry, fault injection) and its integration into batching, the registry and
checkpoint serialization."""

from __future__ import annotations

import glob
import os
import threading
import time

import numpy as np
import pytest

from repro.nn.optimizers import SGD
from repro.nn.serialization import (
    CheckpointError,
    load_model_state,
    save_checkpoint,
    save_weights,
)
from repro.reliability import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    FaultSpec,
    OverloadedError,
    RetryPolicy,
    configure_faults,
    fault_point,
    fault_stats,
    faults_enabled,
    reset_faults,
)
from repro.reliability.faults import _parse_env
from repro.serving import MicroBatcher, ModelRegistry
from repro.unet import UNet, UNetConfig, tiny_unet_config


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    reset_faults()


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining() is None
        deadline.check("anywhere")  # never raises
        assert Deadline.none().remaining() is None

    def test_expires_and_check_raises_with_stage(self):
        deadline = Deadline(0.0)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="stage 'dispatch'") as excinfo:
            deadline.check("dispatch")
        assert excinfo.value.stage == "dispatch"
        assert isinstance(excinfo.value, TimeoutError)

    def test_remaining_clamps_at_zero(self):
        deadline = Deadline(0.0)
        assert deadline.remaining() == 0.0
        assert Deadline(60.0).remaining() > 59.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.1, max_delay_s=0.3)
        assert policy.delay_s(0) == pytest.approx(0.1)
        assert policy.delay_s(1) == pytest.approx(0.2)
        assert policy.delay_s(2) == pytest.approx(0.3)  # capped
        assert policy.delay_s(5) == pytest.approx(0.3)

    def test_sleep_clipped_to_deadline(self):
        policy = RetryPolicy(max_retries=1, base_delay_s=5.0, max_delay_s=5.0)
        start = time.monotonic()
        policy.sleep(0, deadline=Deadline(0.01))
        assert time.monotonic() - start < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0,
                                 clock=lambda: clock[0])
        for _ in range(2):
            breaker.record_failure()
        breaker.check()  # still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError, match="3 consecutive failures") as excinfo:
            breaker.check()
        assert 0.0 < excinfo.value.retry_after_s <= 10.0

    def test_half_open_probe_then_close_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        breaker.check()  # claims the probe slot
        assert breaker.state == "half_open"
        # Second concurrent request is held back while the probe is out.
        with pytest.raises(CircuitOpenError, match="probe"):
            breaker.check()
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.check()

    def test_half_open_failure_reopens_full_window(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        breaker.check()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.to_dict()["times_opened"] == 2

    def test_record_cancelled_frees_probe_without_verdict(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        breaker.check()
        breaker.record_cancelled()  # caller timed out — no verdict
        assert breaker.state == "half_open"
        breaker.check()  # slot is free again for the next probe

    def test_to_dict_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        snapshot = breaker.to_dict()
        assert snapshot["state"] == "closed"
        assert snapshot["consecutive_failures"] == 1
        assert snapshot["total_failures"] == 1


class TestAdmissionController:
    def test_sheds_past_high_water_mark(self):
        admission = AdmissionController(max_concurrent=2, retry_after_s=0.5)
        with admission.acquire(), admission.acquire():
            with pytest.raises(OverloadedError, match="shed") as excinfo:
                with admission.acquire():
                    pass  # pragma: no cover - never admitted
            assert excinfo.value.retry_after_s == 0.5
            assert admission.active == 2
        assert admission.active == 0
        stats = admission.to_dict()
        assert stats["shed"] == 1 and stats["admitted"] == 2 and stats["peak_active"] == 2
        assert admission.recently_shed()

    def test_unlimited_mode_keeps_counters(self):
        admission = AdmissionController(max_concurrent=None)
        with admission.acquire():
            pass
        assert admission.to_dict()["admitted"] == 1
        assert not admission.recently_shed()

    def test_release_survives_body_exception(self):
        admission = AdmissionController(max_concurrent=1)
        with pytest.raises(RuntimeError, match="boom"):
            with admission.acquire():
                raise RuntimeError("boom")
        with admission.acquire():  # the slot came back
            pass


class TestFaultInjection:
    def test_disarmed_fault_point_is_noop(self):
        reset_faults()
        assert not faults_enabled()
        fault_point("shm_attach_fail")  # nothing raised

    def test_raise_action_fires_exactly_budgeted_times(self):
        configure_faults({"shm_attach_fail": FaultSpec(times=2)})
        assert faults_enabled()
        for _ in range(2):
            with pytest.raises(FaultInjected):
                fault_point("shm_attach_fail")
        fault_point("shm_attach_fail")  # budget exhausted → no-op
        assert fault_stats()["shm_attach_fail"]["fired"] == 2

    def test_sleep_action_uses_param(self):
        configure_faults({"slow_predict": FaultSpec(times=1, param=0.05)})
        start = time.monotonic()
        fault_point("slow_predict")
        assert time.monotonic() - start >= 0.05

    def test_env_string_parsing(self):
        specs = _parse_env("worker_crash,slow_predict:3:0.02, worker_hang:-1")
        assert specs["worker_crash"] == FaultSpec(times=1, param=None)
        assert specs["slow_predict"] == FaultSpec(times=3, param=0.02)
        assert specs["worker_hang"] == FaultSpec(times=-1, param=None)

    def test_unknown_fault_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            configure_faults({"meteor_strike": FaultSpec()})

    def test_corrupt_archive_read_surfaces_as_checkpoint_error(self, tmp_path):
        model = UNet(tiny_unet_config(seed=0))
        path = save_weights(model, str(tmp_path / "w.npz"))
        configure_faults({"corrupt_archive_read": FaultSpec(times=1)})
        with pytest.raises(CheckpointError, match="corrupt"):
            load_model_state(path)
        # The injected failure is transient: the next read succeeds.
        assert load_model_state(path)


class TestBatcherReliability:
    def test_timed_out_caller_cancels_and_flush_skips_it(self):
        release = threading.Event()
        computed = []

        def predict_fn(stack):
            release.wait(5.0)
            computed.append(stack.shape[0])
            return np.zeros((stack.shape[0], 3, *stack.shape[1:3]), dtype=np.float32)

        tile = np.zeros((8, 8, 3), dtype=np.uint8)
        with MicroBatcher(predict_fn, max_batch=4, max_delay_s=0.01) as batcher:
            blocker = batcher.submit(tile)  # occupies the worker once flushed
            time.sleep(0.05)
            with pytest.raises(TimeoutError):
                batcher.predict(tile, timeout=0.05)  # cancels on the way out
            release.set()
            blocker.result(5.0)
            deadline = time.monotonic() + 5.0
            while batcher.stats().cancelled == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        stats = batcher.stats()
        assert stats.cancelled == 1
        # Only the blocker was computed; the abandoned tile never was.
        assert computed and sum(computed) == 1

    def test_expired_deadline_dropped_at_flush(self):
        release = threading.Event()

        def predict_fn(stack):
            release.wait(5.0)
            return np.zeros((stack.shape[0], 3, *stack.shape[1:3]), dtype=np.float32)

        tile = np.zeros((8, 8, 3), dtype=np.uint8)
        with MicroBatcher(predict_fn, max_batch=1, max_delay_s=0.0) as batcher:
            blocker = batcher.submit(tile)
            time.sleep(0.05)
            doomed = batcher.submit(tile, deadline=Deadline(0.0))  # expired on arrival
            release.set()
            blocker.result(5.0)
            with pytest.raises(DeadlineExceeded):
                doomed.result(5.0)
        assert batcher.stats().expired == 1

    def test_bounded_queue_sheds_with_overloaded_error(self):
        release = threading.Event()

        def predict_fn(stack):
            release.wait(5.0)
            return np.zeros((stack.shape[0], 3, *stack.shape[1:3]), dtype=np.float32)

        tile = np.zeros((8, 8, 3), dtype=np.uint8)
        batcher = MicroBatcher(predict_fn, max_batch=1, max_delay_s=0.0, max_queue=2)
        try:
            pending = [batcher.submit(tile)]
            time.sleep(0.05)  # let the worker pick up the blocker
            pending += [batcher.submit(tile) for _ in range(2)]
            with pytest.raises(OverloadedError, match="queue full"):
                batcher.submit(tile)
            stats = batcher.stats()
            assert stats.shed == 1
            assert stats.queue_depth <= stats.max_queue == 2
            release.set()
            for p in pending:
                p.result(5.0)
        finally:
            release.set()
            batcher.close()

    def test_deadline_forwarded_to_deadline_aware_predict_fn(self):
        seen = []

        def predict_fn(stack, deadline=None):
            seen.append(deadline)
            return np.zeros((stack.shape[0], 3, *stack.shape[1:3]), dtype=np.float32)

        tile = np.zeros((8, 8, 3), dtype=np.uint8)
        with MicroBatcher(predict_fn, max_batch=1, max_delay_s=0.0) as batcher:
            batcher.submit(tile, deadline=Deadline(30.0)).result(5.0)
            batcher.submit(tile).result(5.0)  # unbounded entry → None
        assert len(seen) == 2
        assert isinstance(seen[0], Deadline) and seen[1] is None


class TestAtomicCheckpointWrites:
    def test_save_weights_leaves_no_temp_files(self, tmp_path):
        model = UNet(tiny_unet_config(seed=1))
        path = save_weights(model, str(tmp_path / "weights.npz"))
        assert os.path.exists(path)
        assert glob.glob(str(tmp_path / "*.tmp-*")) == []
        assert load_model_state(path)

    def test_save_checkpoint_replaces_previous_archive_atomically(self, tmp_path):
        model = UNet(tiny_unet_config(seed=2))
        optimizer = SGD(model.parameters(), lr=0.1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, optimizer, path)
        before = load_model_state(path)
        save_checkpoint(model, optimizer, path)  # overwrite in place
        after = load_model_state(path)
        assert sorted(before) == sorted(after)
        assert glob.glob(str(tmp_path / "*.tmp-*")) == []

    def test_failed_write_keeps_previous_archive(self, tmp_path, monkeypatch):
        model = UNet(tiny_unet_config(seed=2))
        path = save_weights(model, str(tmp_path / "w.npz"))
        good = load_model_state(path)

        import repro.nn.serialization as serialization

        def explode(stream, **state):
            stream.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(serialization.np, "savez_compressed", explode)
        with pytest.raises(OSError, match="disk full"):
            save_weights(model, path)
        monkeypatch.undo()
        # The interrupted write never touched the published archive.
        recovered = load_model_state(path)
        assert sorted(recovered) == sorted(good)
        assert glob.glob(str(tmp_path / "*.tmp-*")) == []


def _publish(registry: ModelRegistry, name: str, version: int, seed: int = 0) -> None:
    registry.publish(name, version, UNet(UNetConfig(depth=1, base_channels=2, seed=seed)))


class TestRegistryGracefulDegrade:
    def test_corrupt_new_version_keeps_serving_previous(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        _publish(registry, "m", 1)
        first = registry.classifier("m")
        # A half-written v2 lands in the registry directory mid-rescan.
        bad = tmp_path / "m" / "2.npz"
        bad.write_bytes(b"this is not a zip archive")
        registry.scan()
        served = registry.classifier("m")
        assert served is first  # still the warm v1
        assert str(bad) in registry.quarantined_paths()
        registry.close()

    def test_rewritten_archive_leaves_quarantine(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        _publish(registry, "m", 1)
        registry.classifier("m")
        bad = tmp_path / "m" / "2.npz"
        bad.write_bytes(b"garbage")
        registry.classifier("m")  # quarantines v2
        assert registry.quarantined_paths()
        # Republishing v2 properly (new mtime) gets it served again.
        _publish(registry, "m", 2, seed=9)
        os.utime(bad, ns=(time.time_ns(), time.time_ns()))
        served = registry.classifier("m")
        assert registry.loaded_versions("m")[-1] == ("m", 2)
        assert served is registry.warm_classifier("m", 2)
        assert not registry.quarantined_paths()
        registry.close()

    def test_pinned_version_still_raises_on_corruption(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        _publish(registry, "m", 1)
        bad = tmp_path / "m" / "2.npz"
        bad.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            registry.classifier("m", version=2)
        registry.close()

    def test_all_versions_corrupt_raises_checkpoint_error(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        (tmp_path / "m").mkdir()
        (tmp_path / "m" / "1.npz").write_bytes(b"junk")
        registry.scan()
        with pytest.raises(CheckpointError):
            registry.classifier("m")
        # Quarantined now; the next lookup reports every version unusable.
        with pytest.raises(CheckpointError, match="quarantined"):
            registry.classifier("m")
        registry.close()

    def test_registry_close_retires_every_warm_entry(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        _publish(registry, "a", 1)
        _publish(registry, "b", 1, seed=4)
        retired = []
        registry.add_evict_listener(retired.append)
        registry.classifier("a")
        registry.classifier("b")
        registry.close()
        assert registry.warm_count() == 0
        assert sorted(retired) == [("a", 1), ("b", 1)]
