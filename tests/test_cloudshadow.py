"""Tests for repro.cloudshadow (detection, removal, pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloudshadow import (
    CloudShadowFilter,
    ThinCloudShadowRemover,
    detect_cloud_shadow,
    estimate_coverage,
    filter_tiles,
)
from repro.metrics import accuracy_score, ssim


class TestDetection:
    def test_clear_scene_low_coverage(self, clear_scene):
        masks = detect_cloud_shadow(clear_scene.rgb)
        assert masks.coverage < 0.05

    def test_cloudy_scene_detected(self, cloudy_scene):
        masks = detect_cloud_shadow(cloudy_scene.rgb)
        assert masks.coverage > 0.10

    def test_detected_coverage_correlates_with_truth(self, clear_scene, cloudy_scene):
        assert estimate_coverage(cloudy_scene.rgb) > estimate_coverage(clear_scene.rgb)

    def test_masks_are_boolean_and_shaped(self, cloudy_scene):
        masks = detect_cloud_shadow(cloudy_scene.rgb)
        assert masks.cloud.dtype == bool and masks.shadow.dtype == bool
        assert masks.cloud.shape == cloudy_scene.rgb.shape[:2]
        np.testing.assert_array_equal(masks.affected, masks.cloud | masks.shadow)

    def test_rejects_gray_input(self, gray_image):
        with pytest.raises(ValueError):
            detect_cloud_shadow(gray_image)

    def test_detected_clouds_overlap_true_clouds(self, cloudy_scene):
        masks = detect_cloud_shadow(cloudy_scene.rgb)
        true_cloud = cloudy_scene.veil.cloud_alpha > 0.15
        if masks.cloud.any() and true_cloud.any():
            overlap = (masks.cloud & true_cloud).sum() / masks.cloud.sum()
            assert overlap > 0.4


class TestRemoval:
    def test_clean_scene_nearly_unchanged(self, clear_scene):
        remover = ThinCloudShadowRemover()
        out = remover.remove(clear_scene.rgb)
        assert np.abs(out.astype(int) - clear_scene.rgb.astype(int)).mean() < 8

    def test_filter_recovers_clean_radiometry(self, cloudy_scene):
        remover = ThinCloudShadowRemover()
        filtered = remover.remove(cloudy_scene.rgb)
        err_before = np.abs(cloudy_scene.rgb.astype(int) - cloudy_scene.clean_rgb.astype(int)).mean()
        err_after = np.abs(filtered.astype(int) - cloudy_scene.clean_rgb.astype(int)).mean()
        # The veil error must drop substantially (thick ice under thin cloud is
        # radiometrically ambiguous, so perfect restoration is not expected).
        assert err_after < err_before * 0.6

    def test_filter_improves_ssim(self, cloudy_scene):
        remover = ThinCloudShadowRemover()
        filtered = remover.remove(cloudy_scene.rgb)
        assert ssim(filtered, cloudy_scene.clean_rgb) > ssim(cloudy_scene.rgb, cloudy_scene.clean_rgb)

    def test_estimate_finds_veil_where_it_is(self, cloudy_scene):
        est = ThinCloudShadowRemover().estimate(cloudy_scene.rgb)
        true_cloud = cloudy_scene.veil.cloud_alpha
        # Estimated opacity should be much larger inside the true cloud bank.
        inside = est.cloud_alpha[true_cloud > 0.3]
        outside = est.cloud_alpha[true_cloud < 0.02]
        if inside.size and outside.size:
            assert inside.mean() > outside.mean() + 0.1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ThinCloudShadowRemover().estimate(np.zeros((4, 4)))

    def test_rejects_bad_prototypes(self):
        with pytest.raises(ValueError):
            ThinCloudShadowRemover(surface_prototypes=np.zeros((3, 2)))

    def test_callable_alias(self, cloudy_scene):
        remover = ThinCloudShadowRemover()
        np.testing.assert_array_equal(remover(cloudy_scene.rgb), remover.remove(cloudy_scene.rgb))


class TestFilterPipeline:
    def test_apply_returns_all_products(self, cloudy_scene):
        result = CloudShadowFilter().apply(cloudy_scene.rgb)
        assert result.filtered.shape == cloudy_scene.rgb.shape
        assert 0.0 <= result.coverage <= 1.0
        assert result.veil.cloud_alpha.shape == cloudy_scene.rgb.shape[:2]

    def test_apply_batch_shape(self, tiny_dataset):
        out = CloudShadowFilter().apply_batch(tiny_dataset.images)
        assert out.shape == tiny_dataset.images.shape
        assert out.dtype == np.uint8

    def test_apply_batch_rejects_bad_shape(self, tiny_dataset):
        with pytest.raises(ValueError):
            CloudShadowFilter().apply_batch(tiny_dataset.labels)

    def test_filter_tiles_helper(self, tiny_dataset):
        out = filter_tiles(tiny_dataset.images[:2])
        assert out.shape == tiny_dataset.images[:2].shape

    def test_filtering_improves_autolabel_accuracy(self, cloudy_scene):
        """The central claim of the paper's filter: labels on filtered imagery are better."""
        from repro.labeling import ColorSegmentationLabeler

        raw_labels = ColorSegmentationLabeler(apply_cloud_filter=False)(cloudy_scene.rgb)
        filtered_labels = ColorSegmentationLabeler(apply_cloud_filter=True)(cloudy_scene.rgb)
        raw_acc = accuracy_score(cloudy_scene.class_map, raw_labels)
        filtered_acc = accuracy_score(cloudy_scene.class_map, filtered_labels)
        assert filtered_acc > raw_acc
