"""Serving subsystem throughput — micro-batching gain and streaming memory bound.

Two production questions, answered at benchmark scale and recorded in
``BENCH_serving_throughput.json``:

1. **Micro-batching**: when many concurrent clients each request one tile,
   how much throughput does coalescing them into batched forward passes buy
   over dispatching every request individually?  The per-request baseline
   runs the same queue/worker machinery with ``max_batch=1`` so the only
   difference is the coalescing itself; the gate (full scale only) is the
   acceptance criterion's ≥ 1.5x requests/sec.
2. **Streaming**: a row-band streamed classification must produce the
   *identical* argmax map as the whole-scene engine while its peak working
   buffer stays ≥ 4x smaller than the scene it classifies (the scene is
   fetched through a ``np.memmap``, so neither input nor working state ever
   holds the whole scene in RAM).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import MicroBatcher, StreamingSceneClassifier
from repro.unet import (
    InferenceConfig,
    SceneClassifier,
    UNet,
    UNetConfig,
    predict_batch_probabilities,
)

from conftest import BENCH_SMOKE, print_rows, write_bench_json

TILE = 32
NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 4 if BENCH_SMOKE else 12
TRIALS = 2 if BENCH_SMOKE else 3  # best-of-N, since thread scheduling is noisy
STREAM_SCENE = (640, 128) if BENCH_SMOKE else (2560, 128)


@pytest.fixture(scope="module")
def model():
    return UNet(UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=77))


@pytest.fixture(scope="module")
def tiles(bench_rng):
    count = NUM_CLIENTS * REQUESTS_PER_CLIENT
    return bench_rng.integers(0, 255, size=(count, TILE, TILE, 3), dtype=np.uint8)


def _drive_clients(batcher: MicroBatcher, tiles: np.ndarray) -> float:
    """All clients hammer the batcher concurrently; returns elapsed seconds."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(NUM_CLIENTS + 1)

    def client(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(REQUESTS_PER_CLIENT):
                tile = tiles[worker * REQUESTS_PER_CLIENT + i]
                batcher.predict(tile, timeout=120.0)
        except BaseException as exc:  # noqa: BLE001 - surfaced in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(NUM_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


@pytest.mark.benchmark(group="serving")
def test_microbatch_throughput_vs_per_request(model, tiles):
    """Coalesced serving must reach ≥ 1.5x the per-request dispatch rate."""
    predict_fn = lambda stack: predict_batch_probabilities(stack, model)  # noqa: E731
    predict_fn(tiles[:2])  # warmup
    total = len(tiles)

    rows = []
    rates = {}
    for label, max_batch, window_ms in [
        ("per-request (max_batch=1)", 1, 0.0),
        ("micro-batch (window 2 ms)", 16, 2.0),
        ("micro-batch (window 10 ms)", 16, 10.0),
    ]:
        best_elapsed, best_stats = None, None
        for _ in range(TRIALS):
            with MicroBatcher(predict_fn, max_batch=max_batch, max_delay_s=window_ms / 1e3) as batcher:
                elapsed = _drive_clients(batcher, tiles)
                stats = batcher.stats()
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed, best_stats = elapsed, stats
        rates[label] = total / best_elapsed
        rows.append({
            "path": label,
            "time_s": round(best_elapsed, 3),
            "requests_per_s": round(total / best_elapsed, 2),
            "mean_batch": round(best_stats.mean_batch_size, 2),
            "max_batch": best_stats.max_batch_size,
        })
    baseline = rates["per-request (max_batch=1)"]
    best = max(rate for label, rate in rates.items() if label != "per-request (max_batch=1)")
    for row in rows:
        row["speedup"] = round(row["requests_per_s"] / baseline, 2)

    print_rows(
        f"Serving micro-batch throughput ({NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} "
        f"single-tile requests of {TILE}x{TILE})", rows)

    # Correctness: the batched path returns exactly the per-tile maps.
    with MicroBatcher(predict_fn, max_batch=16, max_delay_s=0.002) as batcher:
        pending = [batcher.submit(tile) for tile in tiles[:12]]
        coalesced = np.stack([p.result(120.0) for p in pending])
    np.testing.assert_array_equal(coalesced, predict_fn(tiles[:12]))

    write_bench_json("serving_throughput", {
        "config": {
            "tile": TILE, "clients": NUM_CLIENTS, "requests_per_client": REQUESTS_PER_CLIENT,
            "smoke": BENCH_SMOKE,
        },
        "microbatch": rows,
    })

    # Shared CI runners are too noisy to gate on a timing ratio — the smoke
    # run records the numbers; the full-scale run enforces the 1.5x gate.
    if not BENCH_SMOKE:
        assert best >= 1.5 * baseline, (
            f"micro-batching reached {best:.1f} req/s vs per-request {baseline:.1f} req/s"
        )


@pytest.mark.benchmark(group="serving")
def test_streaming_memory_vs_whole_scene(model, tmp_path, bench_rng):
    """Streamed classification: identical argmax map, ≥ 4x smaller peak buffer."""
    h, w = STREAM_SCENE
    scene = bench_rng.integers(0, 255, size=(h, w, 3), dtype=np.uint8)
    config = InferenceConfig(tile_size=TILE, overlap=8, apply_cloud_filter=False, batch_size=4)

    # The streamed side reads through a memmap: rows are fetched from disk
    # band by band, so peak_buffer_bytes really is the working set.
    source = np.memmap(tmp_path / "scene.dat", dtype=np.uint8, mode="w+", shape=scene.shape)
    source[:] = scene
    source.flush()

    streamer = StreamingSceneClassifier(model=model, config=config)
    start = time.perf_counter()
    streamed = streamer.classify_scene(source)
    t_stream = time.perf_counter() - start

    whole_engine = SceneClassifier(model=model, config=config)
    start = time.perf_counter()
    whole = whole_engine.classify_scene(scene)
    t_whole = time.perf_counter() - start

    np.testing.assert_array_equal(streamed, whole)

    # The whole-scene path materialises the full tile stack, every per-tile
    # probability map and a scene-sized float64 blend accumulator at once.
    stride = TILE - config.overlap
    rows_n = int(np.ceil((h - TILE) / stride)) + 1
    cols_n = int(np.ceil((w - TILE) / stride)) + 1
    num_classes = model.config.num_classes
    whole_working_set = (
        scene.nbytes
        + rows_n * cols_n * TILE * TILE * (3 + num_classes * 4)  # tile stack + prob maps
        + h * w * (num_classes + 1) * 8                          # blend accumulator + weights
    )
    ratio_scene = scene.nbytes / streamer.peak_buffer_bytes
    rows = [{
        "scene": f"{h}x{w}",
        "tile": TILE,
        "overlap": config.overlap,
        "stream_time_s": round(t_stream, 3),
        "whole_time_s": round(t_whole, 3),
        "peak_band_buffer_bytes": streamer.peak_buffer_bytes,
        "scene_bytes": scene.nbytes,
        "scene_to_buffer_ratio": round(ratio_scene, 2),
        "whole_working_set_bytes": whole_working_set,
        "working_set_ratio": round(whole_working_set / streamer.peak_buffer_bytes, 2),
        "identical_argmax": bool(np.array_equal(streamed, whole)),
    }]
    print_rows("Streaming scene classification vs whole-scene engine", rows)

    import json
    import os

    # Merge into the JSON the micro-batch test already wrote (module order).
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    path = os.path.join(directory, "BENCH_serving_throughput.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload["streaming"] = rows
    write_bench_json("serving_throughput", payload)

    if not BENCH_SMOKE:
        assert ratio_scene >= 4.0, (
            f"scene is only {ratio_scene:.2f}x the streaming band buffer"
        )
