"""Tests for the micro-batching request queue."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import MicroBatcher
from repro.unet import UNet, predict_batch_probabilities, tiny_unet_config


def _counting_predict_fn(calls: list[int]):
    """A tiling-invariant stub predictor that records every batch size."""

    def predict(stack: np.ndarray) -> np.ndarray:
        calls.append(stack.shape[0])
        mean = stack.astype(np.float32).mean(axis=-1) / 255.0  # (N, H, W)
        probs = np.stack([mean, 1.0 - mean], axis=1)
        return probs.astype(np.float32)

    return predict


@pytest.fixture()
def tiles(rng):
    return rng.integers(0, 255, size=(24, 16, 16, 3), dtype=np.uint8)


class TestMicroBatcher:
    def test_single_request_roundtrip(self, tiles):
        calls: list[int] = []
        with MicroBatcher(_counting_predict_fn(calls), max_batch=4, max_delay_s=0.001) as batcher:
            probs = batcher.predict(tiles[0])
        assert probs.shape == (2, 16, 16)
        assert calls == [1]

    def test_concurrent_requests_coalesce(self, tiles):
        calls: list[int] = []
        # A long window guarantees the concurrent submissions land in one flush.
        with MicroBatcher(_counting_predict_fn(calls), max_batch=32, max_delay_s=0.25) as batcher:
            pending = [batcher.submit(tile) for tile in tiles]
            results = [p.result(10.0) for p in pending]
        assert len(results) == len(tiles)
        stats = batcher.stats()
        assert stats.requests == len(tiles)
        assert stats.batches < len(tiles)  # actually coalesced
        assert stats.max_batch_size > 1
        assert max(calls) > 1

    def test_batch_size_trigger_flushes_before_deadline(self, tiles):
        calls: list[int] = []
        with MicroBatcher(_counting_predict_fn(calls), max_batch=4, max_delay_s=30.0) as batcher:
            start = time.perf_counter()
            pending = [batcher.submit(tile) for tile in tiles[:4]]
            for p in pending:
                p.result(5.0)
            elapsed = time.perf_counter() - start
        assert elapsed < 5.0  # size trigger fired, not the 30 s deadline
        assert calls and calls[0] == 4

    def test_results_match_direct_prediction(self, tiles):
        calls: list[int] = []
        predict = _counting_predict_fn(calls)
        with MicroBatcher(predict, max_batch=8, max_delay_s=0.05) as batcher:
            pending = [batcher.submit(tile) for tile in tiles]
            batched = np.stack([p.result(10.0) for p in pending])
        direct = predict(tiles)
        np.testing.assert_array_equal(batched, direct)

    def test_mixed_tile_shapes_grouped_not_crashed(self, rng):
        calls: list[int] = []
        small = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        big = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        with MicroBatcher(_counting_predict_fn(calls), max_batch=8, max_delay_s=0.2) as batcher:
            pending = [batcher.submit(t) for t in (small, big, small, big)]
            shapes = [p.result(10.0).shape for p in pending]
        assert shapes == [(2, 16, 16), (2, 32, 32), (2, 16, 16), (2, 32, 32)]

    def test_predict_fn_error_propagates_to_callers(self, tiles):
        def boom(stack: np.ndarray) -> np.ndarray:
            raise RuntimeError("model exploded")

        with MicroBatcher(boom, max_batch=4, max_delay_s=0.01) as batcher:
            pending = batcher.submit(tiles[0])
            with pytest.raises(RuntimeError, match="model exploded"):
                pending.result(10.0)

    def test_submit_after_close_raises(self, tiles):
        batcher = MicroBatcher(_counting_predict_fn([]), max_batch=2, max_delay_s=0.01)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(tiles[0])

    def test_close_drains_queued_work(self, tiles):
        calls: list[int] = []
        batcher = MicroBatcher(_counting_predict_fn(calls), max_batch=4, max_delay_s=0.05)
        pending = [batcher.submit(tile) for tile in tiles[:6]]
        batcher.close()
        for p in pending:
            assert p.result(5.0).shape == (2, 16, 16)

    def test_rejects_bad_tiles(self, tiles):
        with MicroBatcher(_counting_predict_fn([]), max_batch=2, max_delay_s=0.01) as batcher:
            with pytest.raises(ValueError, match=r"\(H, W, 3\)"):
                batcher.submit(tiles)  # a whole stack, not one tile
            with pytest.raises(ValueError):
                MicroBatcher(_counting_predict_fn([]), max_batch=0)
            with pytest.raises(ValueError):
                MicroBatcher(_counting_predict_fn([]), max_delay_s=-1.0)

    def test_real_model_through_batcher_matches_direct(self, rng):
        """The batcher glued to the shared prediction seam is exact."""
        model = UNet(tiny_unet_config(seed=31))
        tiles = rng.integers(0, 255, size=(5, 32, 32, 3), dtype=np.uint8)
        with MicroBatcher(lambda s: predict_batch_probabilities(s, model),
                          max_batch=5, max_delay_s=0.2) as batcher:
            pending = [batcher.submit(tile) for tile in tiles]
            batched = np.stack([p.result(30.0) for p in pending])
        direct = predict_batch_probabilities(tiles, model)
        np.testing.assert_array_equal(batched, direct)

    def test_close_fails_requests_enqueued_behind_sentinel(self, tiles):
        """A submit that races past the closed-check must error, not hang."""
        from repro.serving import PendingPrediction

        batcher = MicroBatcher(_counting_predict_fn([]), max_batch=2, max_delay_s=0.01)
        batcher.close()
        stranded = PendingPrediction(tiles[0])
        batcher._queue.put(stranded)  # simulate the submit/close race
        batcher.close()
        with pytest.raises(RuntimeError, match="closed before prediction"):
            stranded.result(1.0)

    def test_results_do_not_pin_the_whole_batch(self, tiles):
        """Each returned map must own its memory, not view the batch array."""
        with MicroBatcher(_counting_predict_fn([]), max_batch=8, max_delay_s=0.1) as batcher:
            pending = [batcher.submit(tile) for tile in tiles[:4]]
            results = [p.result(10.0) for p in pending]
        assert all(result.base is None for result in results)

    def test_many_threads_share_one_batcher(self, tiles):
        calls: list[int] = []
        results: dict[int, np.ndarray] = {}
        with MicroBatcher(_counting_predict_fn(calls), max_batch=8, max_delay_s=0.02) as batcher:
            def client(i: int) -> None:
                results[i] = batcher.predict(tiles[i % len(tiles)], timeout=10.0)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 16
        assert sum(calls) == 16


class TestBucketBatching:
    def test_flushes_pad_to_power_of_two(self, tiles):
        calls: list[int] = []
        with MicroBatcher(_counting_predict_fn(calls), max_batch=8, max_delay_s=0.2,
                          bucket_batches=True) as batcher:
            pending = [batcher.submit(tiles[i]) for i in range(3)]
            maps = [p.result(5.0) for p in pending]
        # 3 queued tiles pad up to one batch of 4; callers see only their own map.
        assert calls == [4]
        for tile, probs in zip(tiles, maps):
            expected = _counting_predict_fn([])(tile[None])[0]
            np.testing.assert_allclose(probs, expected)

    def test_padding_never_exceeds_max_batch(self, tiles):
        calls: list[int] = []
        with MicroBatcher(_counting_predict_fn(calls), max_batch=6, max_delay_s=0.2,
                          bucket_batches=True) as batcher:
            pending = [batcher.submit(tiles[i]) for i in range(6)]
            for p in pending:
                p.result(5.0)
        assert calls and all(size <= 6 for size in calls)

    def test_single_request_stays_single(self, tiles):
        calls: list[int] = []
        with MicroBatcher(_counting_predict_fn(calls), max_batch=8, max_delay_s=0.001,
                          bucket_batches=True) as batcher:
            batcher.predict(tiles[0], timeout=5.0)
        assert calls == [1]
