"""Single-process U-Net training loop (the paper's 1-GPU baseline).

Training follows the paper's recipe: Adam optimiser, categorical
cross-entropy over the three sea-ice classes, batch size 32, dropout
regularisation, 50 epochs for the reported results.  The trainer also
records per-epoch wall time and throughput so the distributed-training
benchmarks can compare against the single-worker baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.loader import BatchLoader
from ..metrics.classification import ClassificationReport, classification_report
from ..nn import Adam, CategoricalCrossEntropy, Optimizer, load_checkpoint, save_checkpoint
from ..obs.profile import LayerTimer, _named_top_blocks
from .model import UNet, UNetConfig

__all__ = ["EpochStats", "TrainingHistory", "UNetTrainer"]


@dataclass
class EpochStats:
    """Bookkeeping of one training epoch."""

    epoch: int
    loss: float
    time_s: float
    images_per_s: float
    #: Per-phase / per-layer timings (only when the trainer's profiling is on):
    #: ``{"phases_ms": {forward, loss, backward, optimizer}, "layers": {...}}``.
    profile: dict | None = None


@dataclass
class TrainingHistory:
    """Loss / timing history of a full training run."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def losses(self) -> list[float]:
        return [e.loss for e in self.epochs]

    @property
    def total_time(self) -> float:
        return float(sum(e.time_s for e in self.epochs))

    @property
    def mean_epoch_time(self) -> float:
        return self.total_time / max(len(self.epochs), 1)

    @property
    def mean_throughput(self) -> float:
        """Mean images/second across epochs (the "Data/s" column of Table III)."""
        if not self.epochs:
            return 0.0
        return float(np.mean([e.images_per_s for e in self.epochs]))


class UNetTrainer:
    """Trains a U-Net on (image, label) tiles.

    Parameters
    ----------
    model:
        The :class:`~repro.unet.model.UNet` to train (a fresh one is created
        from ``config`` when omitted).
    config:
        Model configuration used when ``model`` is not supplied.
    optimizer:
        Optimiser instance; defaults to Adam with the paper's settings.
    learning_rate:
        Learning rate of the default Adam optimiser.
    class_weights:
        Optional per-class loss weights (useful when open water is rare).
    """

    def __init__(
        self,
        model: UNet | None = None,
        config: UNetConfig | None = None,
        optimizer: Optimizer | None = None,
        learning_rate: float = 1e-3,
        class_weights: np.ndarray | None = None,
    ) -> None:
        self.model = model if model is not None else UNet(config)
        self.loss_fn = CategoricalCrossEntropy(class_weights=class_weights)
        self.optimizer = optimizer if optimizer is not None else Adam(self.model.parameters(), lr=learning_rate)
        self.history = TrainingHistory()
        self._profile_enabled = False
        self._phase_acc: dict[str, float] | None = None

    # ------------------------------------------------------------------ #
    def enable_profiling(self, enabled: bool = True) -> None:
        """Record per-phase and per-layer wall time for subsequent epochs.

        Each :class:`EpochStats` produced while enabled carries a ``profile``
        dict; the hot path pays nothing while disabled.
        """
        self._profile_enabled = bool(enabled)

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimisation step on a single batch; returns the batch loss."""
        if self._phase_acc is not None:
            return self._train_step_profiled(x, y)
        self.model.train()
        logits = self.model.forward(x)
        loss = self.loss_fn.forward(logits, y)
        self.optimizer.zero_grad()
        self.model.backward(self.loss_fn.backward(), need_input_grad=False)
        self.optimizer.step()
        return loss

    def _train_step_profiled(self, x: np.ndarray, y: np.ndarray) -> float:
        acc = self._phase_acc
        self.model.train()
        t0 = time.perf_counter()
        logits = self.model.forward(x)
        t1 = time.perf_counter()
        loss = self.loss_fn.forward(logits, y)
        t2 = time.perf_counter()
        self.optimizer.zero_grad()
        self.model.backward(self.loss_fn.backward(), need_input_grad=False)
        t3 = time.perf_counter()
        self.optimizer.step()
        t4 = time.perf_counter()
        acc["forward_ms"] += (t1 - t0) * 1e3
        acc["loss_ms"] += (t2 - t1) * 1e3
        acc["backward_ms"] += (t3 - t2) * 1e3
        acc["optimizer_ms"] += (t4 - t3) * 1e3
        return loss

    def train_epoch(self, loader: BatchLoader, epoch: int = 0) -> EpochStats:
        """One pass over the loader."""
        profile = None
        if self._profile_enabled:
            self._phase_acc = {
                "forward_ms": 0.0, "loss_ms": 0.0, "backward_ms": 0.0, "optimizer_ms": 0.0,
            }
            with LayerTimer(_named_top_blocks(self.model)) as timer:
                stats = self._run_epoch(loader, epoch)
            profile = {
                "phases_ms": {k: round(v, 3) for k, v in self._phase_acc.items()},
                "layers": timer.to_dict(),
            }
            self._phase_acc = None
            stats.profile = profile
        else:
            stats = self._run_epoch(loader, epoch)
        self.history.append(stats)
        return stats

    def _run_epoch(self, loader: BatchLoader, epoch: int) -> EpochStats:
        start = time.perf_counter()
        losses = []
        num_images = 0
        for x, y in loader:
            losses.append(self.train_step(x, y))
            num_images += x.shape[0]
        elapsed = time.perf_counter() - start
        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            time_s=elapsed,
            images_per_s=num_images / elapsed if elapsed > 0 else 0.0,
        )

    def fit(self, loader: BatchLoader, epochs: int = 10, verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` passes over the loader (paper default: 50)."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        for epoch in range(epochs):
            stats = self.train_epoch(loader, epoch=epoch)
            if verbose:  # pragma: no cover - console output
                print(
                    f"epoch {epoch + 1:3d}/{epochs}  loss={stats.loss:.4f}  "
                    f"time={stats.time_s:.2f}s  throughput={stats.images_per_s:.1f} img/s"
                )
        return self.history

    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path, metadata: dict | None = None,
                        extra_state: dict | None = None) -> str:
        """Persist model weights plus the full optimiser state for exact resume.

        ``extra_state`` (JSON-serialisable) rides along in the archive — the
        elastic trainer uses it for the epoch/step cursor and loader RNG
        state — and comes back from :meth:`load_checkpoint`.
        """
        return save_checkpoint(self.model, self.optimizer, path,
                               metadata=metadata, extra_state=extra_state)

    def load_checkpoint(self, path) -> dict:
        """Restore a checkpoint saved by :meth:`save_checkpoint`.

        Both the model parameters and the optimiser's adaptive state (Adam
        moments / step count, SGD velocity) come back, so training continues
        exactly where the saved run stopped.  Returns the ``extra_state``
        the checkpoint carries (``{}`` when absent).
        """
        return load_checkpoint(self.model, self.optimizer, path)

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 8,
        class_names: list[str] | None = None,
    ) -> ClassificationReport:
        """Evaluate the model on a validation tile set (accuracy / P / R / F1 / confusion)."""
        loader = BatchLoader(images, labels, batch_size=batch_size, shuffle=False, augment=False)
        predictions, targets = [], []
        for x, y in loader:
            predictions.append(self.model.predict(x))
            targets.append(y)
        y_pred = np.concatenate(predictions, axis=0)
        y_true = np.concatenate(targets, axis=0)
        return classification_report(y_true, y_pred, num_classes=self.model.config.num_classes,
                                     class_names=class_names)
