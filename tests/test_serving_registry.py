"""Tests for the serving model registry and the checkpoint lifecycle through it."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn import Adam, CheckpointError, read_metadata, save_checkpoint, save_weights
from repro.serving import ModelRegistry
from repro.unet import InferenceConfig, SceneClassifier, UNet, UNetConfig


@pytest.fixture()
def small_model():
    return UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=21))


@pytest.fixture()
def scene(rng):
    return rng.integers(0, 255, size=(48, 64, 3), dtype=np.uint8)


def _publish(tmp_path, model, name="seaice", version=1, with_optimizer=False, **kwargs):
    registry = ModelRegistry(str(tmp_path / "registry"))
    optimizer = Adam(model.parameters()) if with_optimizer else None
    registry.publish(name, version, model, optimizer=optimizer, **kwargs)
    return registry


class TestRegistryBasics:
    def test_publish_scan_and_lookup(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        assert registry.models() == {"seaice": [1]}
        assert registry.latest_version("seaice") == 1
        record = registry.record("seaice")
        assert record.version == 1 and record.path.endswith("1.npz")

    def test_unknown_model_and_version_are_informative(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        with pytest.raises(KeyError, match="unknown model 'nope'.*seaice"):
            registry.record("nope")
        with pytest.raises(KeyError, match="no version 9.*\\[1\\]"):
            registry.record("seaice", 9)

    def test_directory_scan_finds_v_prefixed_archives(self, tmp_path, small_model):
        root = tmp_path / "registry"
        save_weights(small_model, str(root / "ice" / "v3.npz"),
                     metadata={"unet_config": small_model.config.__dict__})
        registry = ModelRegistry(str(root))
        assert registry.models() == {"ice": [3]}

    def test_explicit_register_survives_scan(self, tmp_path, small_model):
        path = save_weights(small_model, str(tmp_path / "elsewhere" / "model.npz"),
                            metadata={"unet_config": small_model.config.__dict__})
        registry = ModelRegistry(str(tmp_path / "registry"))
        registry.register("external", 2, path)
        registry.scan()
        assert registry.models() == {"external": [2]}

    def test_register_missing_file_raises(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(FileNotFoundError):
            registry.register("x", 1, str(tmp_path / "absent.npz"))


class TestCheckpointLifecycle:
    """save_checkpoint → registry load → identical classify_scene_proba output."""

    def test_weights_archive_roundtrip(self, tmp_path, small_model, scene):
        inference = InferenceConfig(tile_size=32, overlap=8, apply_cloud_filter=False)
        registry = _publish(tmp_path, small_model, inference=inference)
        served = registry.classifier("seaice")
        assert served.config == inference
        direct = SceneClassifier(model=small_model, config=inference)
        np.testing.assert_array_equal(
            served.classify_scene_proba(scene), direct.classify_scene_proba(scene)
        )

    def test_training_checkpoint_roundtrip(self, tmp_path, small_model, scene):
        """A full save_checkpoint archive (model + optimiser) serves directly."""
        inference = InferenceConfig(tile_size=32, apply_cloud_filter=False)
        registry = _publish(tmp_path, small_model, with_optimizer=True, inference=inference)
        served = registry.classifier("seaice")
        direct = SceneClassifier(model=small_model, config=inference)
        np.testing.assert_array_equal(
            served.classify_scene_proba(scene), direct.classify_scene_proba(scene)
        )

    def test_published_metadata_rebuilds_config(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model, extra_metadata={"note": "hi"})
        metadata = registry.record("seaice").metadata()
        assert metadata["unet_config"]["depth"] == 2
        assert metadata["note"] == "hi"
        served = registry.classifier("seaice")
        assert served.model.config == small_model.config

    def test_corrupt_archive_raises_checkpoint_error(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        with open(registry.record("seaice").path, "wb") as fh:
            fh.write(b"this is not an npz archive")
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            registry.classifier("seaice")

    def test_archive_without_metadata_raises(self, tmp_path, small_model):
        root = tmp_path / "registry"
        save_weights(small_model, str(root / "bare" / "1.npz"))
        registry = ModelRegistry(str(root))
        with pytest.raises(CheckpointError, match="unet_config"):
            registry.classifier("bare")

    def test_archive_with_missing_keys_raises(self, tmp_path, small_model):
        """An archive whose weights do not match its declared config errors clearly."""
        root = tmp_path / "registry"
        other = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=0))
        # Metadata promises the small_model architecture but stores other's weights.
        save_weights(other, str(root / "broken" / "1.npz"),
                     metadata={"unet_config": small_model.config.__dict__})
        registry = ModelRegistry(str(root))
        with pytest.raises(CheckpointError, match="does not match its declared unet_config"):
            registry.classifier("broken")

    def test_optimizer_only_archive_raises(self, tmp_path, small_model):
        import json

        root = tmp_path / "registry"
        path = root / "optonly" / "1.npz"
        path.parent.mkdir(parents=True)
        optimizer = Adam(small_model.parameters())
        meta = json.dumps({"unet_config": small_model.config.__dict__}).encode()
        entries = {"optim/" + key: np.asarray(value) for key, value in optimizer.state_dict().items()}
        entries["__meta__/json"] = np.frombuffer(meta, dtype=np.uint8)
        np.savez_compressed(str(path), **entries)
        registry = ModelRegistry(str(root))
        with pytest.raises(CheckpointError, match="no model parameters"):
            registry.classifier("optonly")


class TestWarmInstancesAndHotSwap:
    def test_classifier_is_warm_and_cached(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        first = registry.classifier("seaice")
        assert registry.classifier("seaice") is first
        assert registry.loaded_versions("seaice") == [("seaice", 1)]
        assert not first.model.training  # served models stay in eval mode

    def test_version_bump_hot_swaps(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        v1 = registry.classifier("seaice")

        bumped = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=99))
        registry.publish("seaice", 2, bumped)
        v2 = registry.classifier("seaice")
        assert v2 is not v1
        assert registry.record("seaice").version == 2
        # The superseded warm instance is retired; pinned lookups still work.
        assert registry.loaded_versions("seaice") == [("seaice", 2)]
        pinned = registry.classifier("seaice", 1)
        np.testing.assert_array_equal(
            pinned.model.head.weight.value, v1.model.head.weight.value
        )

    def test_new_archive_dropped_into_directory_is_discovered(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        assert registry.models() == {"seaice": [1]}
        # Simulate another process dropping a new version into the directory.
        other = ModelRegistry(registry.root)
        other.publish("seaice", 7, small_model)
        assert registry.latest_version("seaice") == 7

    def test_inference_override_beats_archive_metadata(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model,
                            inference=InferenceConfig(tile_size=64))
        override = InferenceConfig(tile_size=16, batch_size=2, apply_cloud_filter=False)
        pinned = ModelRegistry(registry.root, inference=override)
        assert pinned.classifier("seaice").config == override


class TestSerializationMetadata:
    def test_read_metadata_roundtrip(self, tmp_path, small_model):
        path = save_weights(small_model, str(tmp_path / "m.npz"), metadata={"a": [1, 2]})
        assert read_metadata(path) == {"a": [1, 2]}

    def test_read_metadata_absent_is_empty(self, tmp_path, small_model):
        path = save_weights(small_model, str(tmp_path / "m.npz"))
        assert read_metadata(path) == {}

    def test_checkpoint_metadata_roundtrip(self, tmp_path, small_model):
        optimizer = Adam(small_model.parameters())
        path = save_checkpoint(small_model, optimizer, str(tmp_path / "ckpt.npz"),
                               metadata={"epoch": 5})
        assert read_metadata(path)["epoch"] == 5
        # load_checkpoint still round-trips with the metadata block present.
        from repro.nn import load_checkpoint
        load_checkpoint(small_model, optimizer, path)

    def test_non_json_metadata_rejected(self, tmp_path, small_model):
        with pytest.raises(ValueError, match="JSON-serialisable"):
            save_weights(small_model, str(tmp_path / "m.npz"), metadata={"x": object()})

    def test_missing_archive_is_informative(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not found"):
            read_metadata(str(tmp_path / "ghost.npz"))


class TestWarmEvictionPolicy:
    def _publish_many(self, tmp_path, count: int) -> ModelRegistry:
        registry = ModelRegistry(str(tmp_path / "registry"))
        for i in range(count):
            model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=i))
            registry.publish(f"model-{i}", 1, model,
                             inference=InferenceConfig(tile_size=8, apply_cloud_filter=False))
        return registry

    def test_max_warm_caps_resident_models_lru(self, tmp_path):
        registry = self._publish_many(tmp_path, 4)
        registry.max_warm = 2
        registry.classifier("model-0")
        registry.classifier("model-1")
        assert registry.warm_count() == 2
        registry.classifier("model-0")  # refresh model-0: model-1 is now LRU
        registry.classifier("model-2")
        assert registry.warm_count() == 2
        assert registry.loaded_versions() == [("model-0", 1), ("model-2", 1)]
        # The evicted model reloads transparently on demand.
        assert registry.classifier("model-1") is not None
        assert registry.warm_count() == 2

    def test_eviction_notifies_listeners(self, tmp_path):
        registry = self._publish_many(tmp_path, 3)
        registry.max_warm = 1
        retired: list[tuple[str, int]] = []
        registry.add_evict_listener(retired.append)
        registry.classifier("model-0")
        registry.classifier("model-1")
        registry.classifier("model-2")
        assert retired == [("model-0", 1), ("model-1", 1)]
        assert registry.loaded_versions() == [("model-2", 1)]

    def test_version_hot_swap_also_notifies(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model)
        retired: list[tuple[str, int]] = []
        registry.add_evict_listener(retired.append)
        registry.classifier("seaice")
        registry.publish("seaice", 2, small_model)
        registry.classifier("seaice")
        assert retired == [("seaice", 1)]

    def test_rejects_bad_max_warm(self, tmp_path):
        with pytest.raises(ValueError, match="max_warm"):
            ModelRegistry(str(tmp_path / "registry"), max_warm=0)

    def test_warm_load_precompiles_serving_plan(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model,
                            inference=InferenceConfig(tile_size=16, apply_cloud_filter=False))
        classifier = registry.classifier("seaice")
        info = classifier.plan_cache_info()
        assert info is not None and info["plans"] == 1  # (1, C, 16, 16) pre-compiled


class TestIdempotentRetirement:
    """A hot-swap and an LRU eviction racing over the same warm key must
    retire it exactly once (listeners fired once, classifier closed once)."""

    _tiny = InferenceConfig(tile_size=8, apply_cloud_filter=False)

    def test_double_claim_under_lock_wins_once(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model, inference=self._tiny)
        registry.classifier("seaice")
        key = ("seaice", 1)
        first: list = []
        second: list = []
        with registry._lock:
            entry = registry._warm[key]
            registry._claim_retirement(key, first)
            registry._claim_retirement(key, second)  # the loser claims nothing
        assert first == [(key, entry)]
        assert second == []
        assert entry.retired

    def test_racing_retirement_paths_notify_exactly_once(self, tmp_path, small_model):
        registry = _publish(tmp_path, small_model, inference=self._tiny)
        registry.max_warm = 1
        other = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=3))
        registry.publish("other", 1, other, inference=self._tiny)
        registry.classifier("seaice")  # warm ("seaice", 1): the contended key

        entry = registry._warm[("seaice", 1)]
        close_calls: list[int] = []
        original_close = entry.classifier.close

        def counting_close() -> None:
            close_calls.append(1)
            original_close()

        entry.classifier.close = counting_close
        registry.publish("seaice", 2, small_model, inference=self._tiny)
        notified: list[tuple[str, int]] = []
        registry.add_evict_listener(notified.append)

        # Thread A retires v1 via the version hot-swap; thread B retires the
        # LRU entry (the same key) via the max_warm cap — at the same time.
        barrier = threading.Barrier(2)

        def hot_swap() -> None:
            barrier.wait()
            registry.classifier("seaice")

        def lru_evict() -> None:
            barrier.wait()
            registry.classifier("other")

        threads = [threading.Thread(target=hot_swap), threading.Thread(target=lru_evict)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert notified.count(("seaice", 1)) == 1
        assert len(close_calls) == 1
        assert ("seaice", 1) not in registry._warm
