"""U-Net building blocks: double convolution, encoder step, decoder step.

The paper's architecture (Figure 7): every contracting step is two 3×3
convolutions with ReLU followed by 2×2 max pooling; the bottleneck is the
same without pooling; every expansive step is a 2× up-convolution, a skip
concatenation with the matching encoder feature map and two 3×3 convolutions
with ReLU.  Dropout layers are interleaved between convolutions for
regularisation, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..nn import Concat, Conv2D, Dropout, MaxPool2D, Module, ReLU, UpConv2D

__all__ = ["DoubleConv", "EncoderBlock", "DecoderBlock"]


class DoubleConv(Module):
    """Two consecutive 3×3 convolutions, each followed by ReLU, with optional dropout."""

    def __init__(self, in_channels: int, out_channels: int, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.conv1 = Conv2D(in_channels, out_channels, kernel_size=3, padding="same", seed=seed)
        self.relu1 = ReLU()
        self.dropout = Dropout(dropout, seed=seed + 1) if dropout > 0 else None
        if self.dropout is not None:
            self.register_module("dropout", self.dropout)
        self.conv2 = Conv2D(out_channels, out_channels, kernel_size=3, padding="same", seed=seed + 2)
        self.relu2 = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.relu1(self.conv1(x))
        if self.dropout is not None:
            x = self.dropout(x)
        return self.relu2(self.conv2(x))

    def backward(self, grad_output: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        grad = self.conv2.backward(self.relu2.backward(grad_output))
        if self.dropout is not None:
            grad = self.dropout.backward(grad)
        return self.conv1.backward(self.relu1.backward(grad), need_input_grad=need_input_grad)


class EncoderBlock(Module):
    """One contracting step: double convolution, then 2×2 max pooling.

    ``forward`` returns ``(pooled, skip)`` where ``skip`` is the pre-pooling
    feature map handed to the matching decoder step.
    """

    def __init__(self, in_channels: int, out_channels: int, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.conv = DoubleConv(in_channels, out_channels, dropout=dropout, seed=seed)
        self.pool = MaxPool2D(2)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        skip = self.conv(x)
        return self.pool(skip), skip

    def __call__(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        return self.forward(x)

    def backward(  # type: ignore[override]
        self, grad_pooled: np.ndarray, grad_skip: np.ndarray | None = None,
        need_input_grad: bool = True,
    ) -> np.ndarray | None:
        grad = self.pool.backward(grad_pooled)
        if grad_skip is not None:
            grad = grad + grad_skip
        return self.conv.backward(grad, need_input_grad=need_input_grad)


class DecoderBlock(Module):
    """One expansive step: up-convolution, skip concatenation, double convolution."""

    def __init__(self, in_channels: int, skip_channels: int, out_channels: int, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.upconv = UpConv2D(in_channels, out_channels, seed=seed)
        self.concat = Concat()
        self.conv = DoubleConv(out_channels + skip_channels, out_channels, dropout=dropout, seed=seed + 3)

    def forward(self, x: np.ndarray, skip: np.ndarray) -> np.ndarray:  # type: ignore[override]
        upsampled = self.upconv(x)
        merged = self.concat(upsampled, skip)
        return self.conv(merged)

    def __call__(self, x: np.ndarray, skip: np.ndarray) -> np.ndarray:  # type: ignore[override]
        return self.forward(x, skip)

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:  # type: ignore[override]
        """Returns ``(grad_wrt_input, grad_wrt_skip)``."""
        grad_merged = self.conv.backward(grad_output)
        grad_up, grad_skip = self.concat.backward(grad_merged)
        grad_input = self.upconv.backward(grad_up)
        return grad_input, grad_skip
