"""Table II — PySpark (sparklite) map-reduce auto-labeling scalability.

Paper result: on a 4-node Google Cloud Dataproc cluster the distributed
auto-labeling job reaches a 9× data-loading speedup and a 16.25× map-reduce
speedup at 4 executors × 4 cores.  Here the identical job runs on the
sparklite engine: the real UDF is measured locally (serial and multi-process
executors), and the executor×core sweep is regenerated with the calibrated
Dataproc cost model, printed next to the paper's rows.
"""

from __future__ import annotations

import pytest

from repro.mapreduce import (
    GCDClusterModel,
    mapreduce_scaling_sweep,
    paper_table2,
    run_mapreduce_autolabel,
)

from conftest import print_paper_vs_measured, print_rows


@pytest.mark.benchmark(group="table2")
def test_table2_local_mapreduce_job(benchmark, bench_dataset):
    """Real sparklite execution of the auto-label job (serial executor baseline)."""
    tiles = bench_dataset.images[: min(32, len(bench_dataset))]

    def run_job():
        return run_mapreduce_autolabel(tiles, executor="serial", parallelism=1)

    result = benchmark.pedantic(run_job, rounds=1, iterations=1)
    assert result.labels.shape == tiles.shape[:3]
    print_rows(
        "Table II baseline: sparklite serial execution of the auto-label UDF",
        [
            {
                "tiles": tiles.shape[0],
                **result.timings.as_row(),
                "partitions": result.num_partitions,
            }
        ],
    )


@pytest.mark.benchmark(group="table2")
def test_table2_local_process_executor_speedup(benchmark, bench_dataset):
    """The same job on the multi-process executor must produce identical labels faster."""
    tiles = bench_dataset.images[: min(32, len(bench_dataset))]
    serial = run_mapreduce_autolabel(tiles, executor="serial", parallelism=1)

    def run_parallel():
        return run_mapreduce_autolabel(tiles, executor="processes", parallelism=4)

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    assert (parallel.labels == serial.labels).all()
    rows = [
        {"executor": "serial", **serial.timings.as_row()},
        {"executor": "processes(4)", **parallel.timings.as_row()},
    ]
    print_rows("Table II: sparklite executor comparison (identical labels)", rows)


@pytest.mark.benchmark(group="table2")
def test_table2_cluster_sweep(benchmark, bench_dataset):
    """Regenerate the full executor×core sweep of Table II with the calibrated cluster model."""

    def sweep():
        return mapreduce_scaling_sweep(tiles=bench_dataset.images[: min(48, len(bench_dataset))])

    measured_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_paper_vs_measured("Table II: map-reduce auto-labeling scalability", paper_table2(), measured_rows)

    # Shape assertions: strong scaling in both load and reduce, with the reduce
    # phase close to linear (the paper's 16.25x at 16 slots).
    by_shape = {(r["executors"], r["cores"]): r for r in measured_rows}
    assert by_shape[(4, 4)]["speedup_reduce"] > by_shape[(2, 2)]["speedup_reduce"] > 1.0
    assert by_shape[(4, 4)]["speedup_load"] > 1.0
    assert by_shape[(4, 4)]["speedup_reduce"] > 8.0

    paper_calibrated = GCDClusterModel()
    error = paper_calibrated.relative_error_vs_paper()
    print(f"  paper-calibrated cost-model mean relative error vs Table II: {error:.1%}")
    assert error < 0.15
