"""Tests for repro.classes (class definitions, HSV ranges, label colours)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classes import (
    CLASS_NAMES,
    HSV_RANGES,
    LABEL_COLORS,
    NUM_CLASSES,
    HSVRange,
    SeaIceClass,
    class_map_to_color,
    color_to_class_map,
)


class TestClassDefinitions:
    def test_three_classes(self):
        assert NUM_CLASSES == 3
        assert len(SeaIceClass) == 3
        assert set(CLASS_NAMES) == set(SeaIceClass)
        assert set(LABEL_COLORS) == set(SeaIceClass)

    def test_paper_label_colors(self):
        assert LABEL_COLORS[SeaIceClass.THICK_ICE] == (255, 0, 0)  # red
        assert LABEL_COLORS[SeaIceClass.THIN_ICE] == (0, 0, 255)  # blue
        assert LABEL_COLORS[SeaIceClass.OPEN_WATER] == (0, 255, 0)  # green

    def test_paper_hsv_thresholds(self):
        assert HSV_RANGES[SeaIceClass.THICK_ICE].lower == (0, 0, 205)
        assert HSV_RANGES[SeaIceClass.THICK_ICE].upper == (185, 255, 255)
        assert HSV_RANGES[SeaIceClass.THIN_ICE].lower == (0, 0, 31)
        assert HSV_RANGES[SeaIceClass.THIN_ICE].upper == (185, 255, 204)
        assert HSV_RANGES[SeaIceClass.OPEN_WATER].upper == (185, 255, 30)

    def test_value_bands_are_disjoint_and_cover_uint8(self):
        """The paper's three V bands are non-intersecting and exhaustive."""
        bands = sorted((r.lower[2], r.upper[2]) for r in HSV_RANGES.values())
        assert bands[0][0] == 0
        assert bands[-1][1] == 255
        for (lo1, hi1), (lo2, _hi2) in zip(bands, bands[1:]):
            assert hi1 + 1 == lo2


class TestHSVRange:
    def test_contains_masks(self):
        hsv = np.zeros((2, 2, 3), dtype=np.uint8)
        hsv[0, 0] = (10, 50, 250)  # thick ice band
        hsv[0, 1] = (10, 50, 100)  # thin ice band
        hsv[1, 0] = (10, 50, 10)  # open water band
        assert HSV_RANGES[SeaIceClass.THICK_ICE].contains(hsv)[0, 0]
        assert HSV_RANGES[SeaIceClass.THIN_ICE].contains(hsv)[0, 1]
        assert HSV_RANGES[SeaIceClass.OPEN_WATER].contains(hsv)[1, 0]

    def test_contains_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            HSVRange((0, 0, 0), (1, 1, 1)).contains(np.zeros((4, 4)))

    def test_boundaries_inclusive(self):
        rng = HSVRange((0, 0, 31), (185, 255, 204))
        hsv = np.array([[[0, 0, 31]], [[185, 255, 204]]], dtype=np.uint8)
        assert rng.contains(hsv).all()


class TestColorMaps:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        cmap = rng.integers(0, NUM_CLASSES, size=(17, 23)).astype(np.uint8)
        rgb = class_map_to_color(cmap)
        np.testing.assert_array_equal(color_to_class_map(rgb), cmap)

    def test_color_image_values(self):
        cmap = np.array([[0, 1, 2]], dtype=np.uint8)
        rgb = class_map_to_color(cmap)
        assert tuple(rgb[0, 0]) == (255, 0, 0)
        assert tuple(rgb[0, 1]) == (0, 0, 255)
        assert tuple(rgb[0, 2]) == (0, 255, 0)

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            class_map_to_color(np.array([[7]], dtype=np.uint8))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            class_map_to_color(np.zeros((2, 2, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            color_to_class_map(np.zeros((4, 4), dtype=np.uint8))

    def test_nearest_color_assignment(self):
        noisy = np.array([[[250, 10, 5]]], dtype=np.uint8)  # near red
        assert color_to_class_map(noisy)[0, 0] == int(SeaIceClass.THICK_ICE)
