"""Thresholding operators used by the thin-cloud and shadow filter.

Reproduces the OpenCV thresholding modes the paper lists in §III-A:
binary, binary-inverted, truncated, to-zero and Otsu's automatic
threshold selection.  All operators follow the OpenCV semantics of
``cv2.threshold`` so that the filter pipeline reads like the original.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

__all__ = [
    "ThresholdType",
    "threshold",
    "threshold_binary",
    "threshold_binary_inv",
    "threshold_truncate",
    "threshold_tozero",
    "threshold_tozero_inv",
    "otsu_threshold",
    "adaptive_mean_threshold",
]


class ThresholdType(Enum):
    """Thresholding modes mirroring OpenCV's ``THRESH_*`` constants."""

    BINARY = "binary"
    BINARY_INV = "binary_inv"
    TRUNC = "trunc"
    TOZERO = "tozero"
    TOZERO_INV = "tozero_inv"


def _check_gray(image: np.ndarray) -> np.ndarray:
    img = np.asarray(image)
    if img.ndim != 2:
        raise ValueError(f"thresholding expects a single-channel image, got shape {img.shape}")
    return img


def threshold(
    image: np.ndarray,
    thresh: float,
    maxval: float = 255,
    kind: ThresholdType = ThresholdType.BINARY,
) -> tuple[float, np.ndarray]:
    """Apply a fixed-level threshold, OpenCV style.

    Returns ``(threshold_used, output_image)`` like ``cv2.threshold``.
    """
    img = _check_gray(image)
    kind = ThresholdType(kind)
    if kind is ThresholdType.BINARY:
        out = np.where(img > thresh, maxval, 0)
    elif kind is ThresholdType.BINARY_INV:
        out = np.where(img > thresh, 0, maxval)
    elif kind is ThresholdType.TRUNC:
        out = np.minimum(img, thresh)
    elif kind is ThresholdType.TOZERO:
        out = np.where(img > thresh, img, 0)
    elif kind is ThresholdType.TOZERO_INV:
        out = np.where(img > thresh, 0, img)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown threshold type {kind}")
    return float(thresh), out.astype(img.dtype, copy=False)


def threshold_binary(image: np.ndarray, thresh: float, maxval: float = 255) -> np.ndarray:
    """Pixels above ``thresh`` become ``maxval``, everything else 0."""
    return threshold(image, thresh, maxval, ThresholdType.BINARY)[1]


def threshold_binary_inv(image: np.ndarray, thresh: float, maxval: float = 255) -> np.ndarray:
    """Pixels above ``thresh`` become 0, everything else ``maxval``."""
    return threshold(image, thresh, maxval, ThresholdType.BINARY_INV)[1]


def threshold_truncate(image: np.ndarray, thresh: float) -> np.ndarray:
    """Clamp pixels above ``thresh`` down to ``thresh`` (OpenCV THRESH_TRUNC)."""
    return threshold(image, thresh, kind=ThresholdType.TRUNC)[1]


def threshold_tozero(image: np.ndarray, thresh: float) -> np.ndarray:
    """Zero out pixels at or below ``thresh``; keep brighter pixels unchanged."""
    return threshold(image, thresh, kind=ThresholdType.TOZERO)[1]


def threshold_tozero_inv(image: np.ndarray, thresh: float) -> np.ndarray:
    """Keep pixels at or below ``thresh``; zero out brighter pixels."""
    return threshold(image, thresh, kind=ThresholdType.TOZERO_INV)[1]


def otsu_threshold(
    image: np.ndarray,
    maxval: float = 255,
    kind: ThresholdType = ThresholdType.BINARY,
    nbins: int = 256,
) -> tuple[float, np.ndarray]:
    """Otsu's automatic threshold selection followed by thresholding.

    Picks the threshold that maximises between-class variance of the
    grayscale histogram, as in ``cv2.threshold(..., THRESH_OTSU)``.

    Returns ``(otsu_threshold, output_image)``.
    """
    img = _check_gray(image)
    if img.size == 0:
        raise ValueError("cannot compute Otsu threshold of an empty image")
    data = img.astype(np.float64).ravel()
    lo, hi = float(data.min()), float(data.max())
    if lo == hi:
        # Degenerate constant image: any threshold separates nothing.
        return lo, threshold(img, lo, maxval, kind)[1]

    hist, bin_edges = np.histogram(data, bins=nbins, range=(lo, hi))
    bin_centers = (bin_edges[:-1] + bin_edges[1:]) / 2.0

    weight1 = np.cumsum(hist)
    weight2 = np.cumsum(hist[::-1])[::-1]
    # Class means; guard divisions for empty classes.
    mean1 = np.cumsum(hist * bin_centers) / np.maximum(weight1, 1)
    mean2 = (np.cumsum((hist * bin_centers)[::-1]) / np.maximum(weight2[::-1], 1))[::-1]

    # Between-class variance evaluated at each split point.  For well-separated
    # modes the variance has a plateau of equally optimal splits across the
    # empty histogram gap; take the middle of that plateau for a stable level.
    variance = weight1[:-1] * weight2[1:] * (mean1[:-1] - mean2[1:]) ** 2
    best = variance.max()
    candidates = np.flatnonzero(variance >= best * (1.0 - 1e-12))
    idx = int(candidates[len(candidates) // 2])
    thresh = float(bin_centers[idx])
    return thresh, threshold(img, thresh, maxval, kind)[1]


def adaptive_mean_threshold(
    image: np.ndarray,
    block_size: int = 11,
    offset: float = 2.0,
    maxval: float = 255,
) -> np.ndarray:
    """Adaptive thresholding against the local block mean.

    Each pixel is compared to the mean of its ``block_size``×``block_size``
    neighbourhood minus ``offset`` (OpenCV ``ADAPTIVE_THRESH_MEAN_C``).
    """
    if block_size < 3 or block_size % 2 == 0:
        raise ValueError("block_size must be an odd integer >= 3")
    img = _check_gray(image).astype(np.float64)
    from .filters import box_filter  # local import avoids a cycle at import time

    local_mean = box_filter(img, block_size)
    out = np.where(img > local_mean - offset, maxval, 0)
    return out.astype(np.asarray(image).dtype, copy=False)
