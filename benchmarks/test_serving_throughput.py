"""Serving subsystem throughput — micro-batching gain and streaming memory bound.

Three production questions, answered at benchmark scale and recorded in
``BENCH_serving_throughput.json``:

1. **Micro-batching**: when many concurrent clients each request one tile,
   how much throughput does coalescing them into batched forward passes buy
   over dispatching every request individually?  The per-request baseline
   runs the same queue/worker machinery with ``max_batch=1`` so the only
   difference is the coalescing itself; the gate (full scale only) is the
   acceptance criterion's ≥ 1.5x requests/sec.
2. **Metrics overhead**: the telemetry layer (counters + histograms on the
   batcher/request hot path) must cost ≤ 3% requests/sec against the same
   run with the registry's kill switch thrown (``set_metrics_enabled(False)``).
   Per-request p50/p95/p99 latency lands in the JSON next to req/s.
3. **Streaming**: a row-band streamed classification must produce the
   *identical* argmax map as the whole-scene engine while its peak working
   buffer stays ≥ 4x smaller than the scene it classifies (the scene is
   fetched through a ``np.memmap``, so neither input nor working state ever
   holds the whole scene in RAM).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.obs import latency_percentiles, set_metrics_enabled
from repro.serving import MicroBatcher, StreamingSceneClassifier
from repro.unet import (
    InferenceConfig,
    SceneClassifier,
    UNet,
    UNetConfig,
    predict_batch_probabilities,
)

from conftest import BENCH_SMOKE, print_rows, write_bench_json

TILE = 32
NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 4 if BENCH_SMOKE else 12
TRIALS = 2 if BENCH_SMOKE else 3  # best-of-N, since thread scheduling is noisy
STREAM_SCENE = (640, 128) if BENCH_SMOKE else (2560, 128)


@pytest.fixture(scope="module")
def model():
    return UNet(UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=77))


@pytest.fixture(scope="module")
def tiles(bench_rng):
    count = NUM_CLIENTS * REQUESTS_PER_CLIENT
    return bench_rng.integers(0, 255, size=(count, TILE, TILE, 3), dtype=np.uint8)


def _drive_clients(batcher: MicroBatcher, tiles: np.ndarray) -> tuple[float, list[float]]:
    """All clients hammer the batcher concurrently.

    Returns ``(elapsed_s, per_request_latencies_ms)``.
    """
    errors: list[BaseException] = []
    latencies: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]
    barrier = threading.Barrier(NUM_CLIENTS + 1)

    def client(worker: int) -> None:
        barrier.wait()
        try:
            for i in range(REQUESTS_PER_CLIENT):
                tile = tiles[worker * REQUESTS_PER_CLIENT + i]
                t0 = time.perf_counter()
                batcher.predict(tile, timeout=120.0)
                latencies[worker].append((time.perf_counter() - t0) * 1e3)
        except BaseException as exc:  # noqa: BLE001 - surfaced in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(w,)) for w in range(NUM_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, [sample for worker in latencies for sample in worker]


@pytest.mark.benchmark(group="serving")
def test_microbatch_throughput_vs_per_request(model, tiles):
    """Coalesced serving must reach ≥ 1.5x the per-request dispatch rate."""
    predict_fn = lambda stack: predict_batch_probabilities(stack, model)  # noqa: E731
    predict_fn(tiles[:2])  # warmup
    total = len(tiles)

    arm_specs = [
        ("per-request (max_batch=1)", 1, 0.0),
        ("micro-batch (window 2 ms)", 16, 2.0),
        ("micro-batch (window 10 ms)", 16, 10.0),
    ]
    # Interleave the arms (a, b, c, a, b, c, ...) so load drift on a shared
    # runner lands on every arm equally rather than biasing whole arms, and
    # score each arm by its best trial.
    best_trial: dict[str, tuple | None] = {label: None for label, _, _ in arm_specs}
    for _ in range(TRIALS):
        for label, max_batch, window_ms in arm_specs:
            with MicroBatcher(predict_fn, max_batch=max_batch, max_delay_s=window_ms / 1e3) as batcher:
                elapsed, latencies = _drive_clients(batcher, tiles)
                stats = batcher.stats()
            if best_trial[label] is None or elapsed < best_trial[label][0]:
                best_trial[label] = (elapsed, stats, latencies)
    rows = []
    rates = {}
    for label, _, _ in arm_specs:
        best_elapsed, best_stats, best_latencies = best_trial[label]
        rates[label] = total / best_elapsed
        rows.append({
            "path": label,
            "time_s": round(best_elapsed, 3),
            "requests_per_s": round(total / best_elapsed, 2),
            "mean_batch": round(best_stats.mean_batch_size, 2),
            "max_batch": best_stats.max_batch_size,
            **latency_percentiles(best_latencies),
        })
    baseline = rates["per-request (max_batch=1)"]
    best = max(rate for label, rate in rates.items() if label != "per-request (max_batch=1)")
    for row in rows:
        row["speedup"] = round(row["requests_per_s"] / baseline, 2)

    print_rows(
        f"Serving micro-batch throughput ({NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} "
        f"single-tile requests of {TILE}x{TILE})", rows)

    # Correctness: the batched path returns exactly the per-tile maps.
    with MicroBatcher(predict_fn, max_batch=16, max_delay_s=0.002) as batcher:
        pending = [batcher.submit(tile) for tile in tiles[:12]]
        coalesced = np.stack([p.result(120.0) for p in pending])
    np.testing.assert_array_equal(coalesced, predict_fn(tiles[:12]))

    # Metrics overhead: the identical micro-batch run with the telemetry
    # registry enabled vs the kill switch thrown.  The arms are interleaved
    # (on, off, on, off, ...) and compared best-of-N so thread-scheduling
    # noise and cache/frequency drift do not masquerade as instrumentation
    # cost.
    overhead_trials = TRIALS if BENCH_SMOKE else 2 * TRIALS
    best_arm: dict[str, tuple[float, list[float]] | None] = {"metrics on": None, "metrics off": None}
    try:
        for _ in range(overhead_trials):
            for label, enabled in [("metrics on", True), ("metrics off", False)]:
                set_metrics_enabled(enabled)
                with MicroBatcher(predict_fn, max_batch=16, max_delay_s=0.002) as batcher:
                    elapsed, latencies = _drive_clients(batcher, tiles)
                if best_arm[label] is None or elapsed < best_arm[label][0]:
                    best_arm[label] = (elapsed, latencies)
    finally:
        set_metrics_enabled(True)
    overhead_rates = {label: total / best[0] for label, best in best_arm.items()}
    overhead_rows = [
        {
            "path": label,
            "time_s": round(best[0], 3),
            "requests_per_s": round(total / best[0], 2),
            **latency_percentiles(best[1]),
        }
        for label, best in best_arm.items()
    ]
    overhead_pct = 100.0 * (1.0 - overhead_rates["metrics on"] / overhead_rates["metrics off"])
    for row in overhead_rows:
        row["overhead_pct"] = round(overhead_pct, 2)
    print_rows("Telemetry overhead (metrics registry on vs off, micro-batch window 2 ms)",
               overhead_rows)

    write_bench_json("serving_throughput", {
        "config": {
            "tile": TILE, "clients": NUM_CLIENTS, "requests_per_client": REQUESTS_PER_CLIENT,
            "smoke": BENCH_SMOKE,
        },
        "microbatch": rows,
        "metrics_overhead": overhead_rows,
    })

    # Shared CI runners are too noisy to gate on a timing ratio — the smoke
    # run records the numbers; the full-scale run enforces the 1.5x gate.
    if not BENCH_SMOKE:
        assert best >= 1.5 * baseline, (
            f"micro-batching reached {best:.1f} req/s vs per-request {baseline:.1f} req/s"
        )
        assert overhead_pct <= 3.0, (
            f"metrics registry costs {overhead_pct:.2f}% requests/sec (budget: 3%)"
        )


@pytest.mark.benchmark(group="serving")
def test_streaming_memory_vs_whole_scene(model, tmp_path, bench_rng):
    """Streamed classification: identical argmax map, ≥ 4x smaller peak buffer."""
    h, w = STREAM_SCENE
    scene = bench_rng.integers(0, 255, size=(h, w, 3), dtype=np.uint8)
    config = InferenceConfig(tile_size=TILE, overlap=8, apply_cloud_filter=False, batch_size=4)

    # The streamed side reads through a memmap: rows are fetched from disk
    # band by band, so peak_buffer_bytes really is the working set.
    source = np.memmap(tmp_path / "scene.dat", dtype=np.uint8, mode="w+", shape=scene.shape)
    source[:] = scene
    source.flush()

    streamer = StreamingSceneClassifier(model=model, config=config)
    start = time.perf_counter()
    streamed = streamer.classify_scene(source)
    t_stream = time.perf_counter() - start

    whole_engine = SceneClassifier(model=model, config=config)
    start = time.perf_counter()
    whole = whole_engine.classify_scene(scene)
    t_whole = time.perf_counter() - start

    np.testing.assert_array_equal(streamed, whole)

    # The whole-scene path materialises the full tile stack, every per-tile
    # probability map and a scene-sized float64 blend accumulator at once.
    stride = TILE - config.overlap
    rows_n = int(np.ceil((h - TILE) / stride)) + 1
    cols_n = int(np.ceil((w - TILE) / stride)) + 1
    num_classes = model.config.num_classes
    whole_working_set = (
        scene.nbytes
        + rows_n * cols_n * TILE * TILE * (3 + num_classes * 4)  # tile stack + prob maps
        + h * w * (num_classes + 1) * 8                          # blend accumulator + weights
    )
    ratio_scene = scene.nbytes / streamer.peak_buffer_bytes
    rows = [{
        "scene": f"{h}x{w}",
        "tile": TILE,
        "overlap": config.overlap,
        "stream_time_s": round(t_stream, 3),
        "whole_time_s": round(t_whole, 3),
        "peak_band_buffer_bytes": streamer.peak_buffer_bytes,
        "scene_bytes": scene.nbytes,
        "scene_to_buffer_ratio": round(ratio_scene, 2),
        "whole_working_set_bytes": whole_working_set,
        "working_set_ratio": round(whole_working_set / streamer.peak_buffer_bytes, 2),
        "identical_argmax": bool(np.array_equal(streamed, whole)),
    }]
    print_rows("Streaming scene classification vs whole-scene engine", rows)

    import json
    import os

    # Merge into the JSON the micro-batch test already wrote (module order).
    directory = os.environ.get("BENCH_JSON_DIR", ".")
    path = os.path.join(directory, "BENCH_serving_throughput.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as fh:
            payload = json.load(fh)
    payload["streaming"] = rows
    write_bench_json("serving_throughput", payload)

    if not BENCH_SMOKE:
        assert ratio_scene >= 4.0, (
            f"scene is only {ratio_scene:.2f}x the streaming band buffer"
        )
