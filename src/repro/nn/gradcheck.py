"""Numerical gradient checking for layers and losses.

Used by the test suite to certify that every layer's analytic backward pass
matches central finite differences — the correctness foundation the whole
U-Net training stack rests on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module

__all__ = ["numerical_gradient", "check_layer_gradients", "relative_error"]


def relative_error(a: np.ndarray, b: np.ndarray, eps: float = 1e-8) -> float:
    """Max elementwise relative error, robust near zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), eps)
    return float(np.max(np.abs(a - b) / denom))


def numerical_gradient(func: Callable[[np.ndarray], float], x: np.ndarray, h: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + h
        f_plus = func(x)
        x[idx] = original - h
        f_minus = func(x)
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * h)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Module,
    input_shape: tuple[int, ...],
    seed: int = 0,
    h: float = 1e-3,
    tolerance: float = 2e-2,
) -> dict[str, float]:
    """Compare analytic and numerical gradients of a layer.

    A random input and a random upstream gradient are drawn; the scalar test
    function is ``sum(forward(x) * upstream)``, whose input gradient is the
    layer's ``backward(upstream)`` and whose parameter gradients are the
    accumulated ``param.grad`` values.

    Returns a mapping of ``"input"`` and each parameter name to its relative
    error; raises ``AssertionError`` when any error exceeds ``tolerance``.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, size=input_shape).astype(np.float64)
    out = layer.forward(x.astype(np.float32))
    upstream = rng.normal(0.0, 1.0, size=out.shape).astype(np.float64)

    layer.zero_grad()
    layer.forward(x.astype(np.float32))
    analytic_input = np.asarray(layer.backward(upstream.astype(np.float32)), dtype=np.float64)

    errors: dict[str, float] = {}

    def loss_of_input(values: np.ndarray) -> float:
        return float(np.sum(layer.forward(values.astype(np.float32)).astype(np.float64) * upstream))

    numeric_input = numerical_gradient(loss_of_input, x.copy(), h=h)
    errors["input"] = relative_error(analytic_input, numeric_input)

    for name, param in layer.named_parameters().items():
        layer.zero_grad()
        layer.forward(x.astype(np.float32))
        layer.backward(upstream.astype(np.float32))
        analytic = param.grad.astype(np.float64).copy()

        original = param.value.copy()

        def loss_of_param(values: np.ndarray, _param=param) -> float:
            _param.value = values.astype(np.float32)
            result = float(np.sum(layer.forward(x.astype(np.float32)).astype(np.float64) * upstream))
            return result

        numeric = numerical_gradient(loss_of_param, original.astype(np.float64).copy(), h=h)
        param.value = original
        errors[name] = relative_error(analytic, numeric)

    failures = {k: v for k, v in errors.items() if v > tolerance}
    if failures:
        raise AssertionError(f"gradient check failed: {failures}")
    return errors
