"""The execution-backend seam: one abstraction every fan-out layer dispatches through.

Four subsystems used to hand-roll their own parallelism — the auto-label
fork pool (``parallel/pool.py``), the map-reduce executors
(``mapreduce/executors.py``), the scene-inference fan-out
(``unet/inference.py``) and the serving micro-batchers
(``serving/batching.py`` / ``serving/service.py``).  Each re-pickled model
weights and re-compiled inference plans per task, which made multi-process
inference *slower* than a single process.

A :class:`Backend` (in the shape of Ludwig's ``Backend`` abstraction) owns:

* **worker lifecycle** — ``start`` / ``close``, crash detection and respawn;
* **generic task dispatch** — :meth:`Backend.map`, the ordered chunked map
  that the auto-label pool and map-reduce executors adapt onto;
* **a model store** — :meth:`Backend.publish_model` installs a model (and
  its compiled-plan engine) once per backend, after which
  :meth:`Backend.predict` / :meth:`Backend.predict_stack` run batches
  against the warm copy.  The fork backend's store lives in
  ``multiprocessing.shared_memory`` (see :mod:`repro.backend.store`), so N
  worker processes attach to one physical copy of the weights and pre-packed
  plan GEMM operands instead of each re-pickling and re-packing them.

Backends are *behaviour-preserving*: a batch predicted under ``serial``,
``thread`` and ``fork`` produces bit-identical probability maps, because
every backend ultimately executes the same
:func:`repro.unet.inference.predict_batch_probabilities` seam.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..obs.metrics import Histogram, get_registry
from ..obs.trace import record as _trace_record
from ..reliability import Deadline

__all__ = [
    "Backend",
    "BackendError",
    "ModelHandle",
    "available_backends",
    "record_compute",
    "resolve_backend_name",
    "make_backend",
]

#: Environment variable overriding how ``"auto"`` resolves (CI matrixes the
#: tier-1 suite over it: ``REPRO_BACKEND=serial|thread|fork``).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendError(RuntimeError):
    """A backend worker failed (crashed, closed, or rejected a task)."""


_compute_hist: Histogram | None = None


def record_compute(backend_name: str, compute_ms: float) -> None:
    """Report one predict's model-execution time.

    Feeds both sinks at once: the thread-local trace collector (so a traced
    request's span breakdown separates compute from dispatch overhead) and
    the per-backend compute histogram.  Each backend calls this with the
    time measured *where the model actually ran* — inline (serial), in the
    pool thread (thread), or inside the worker process (fork, echoed back in
    reply metadata).
    """
    global _compute_hist
    _trace_record("compute_ms", compute_ms)
    if _compute_hist is None:
        _compute_hist = get_registry().histogram(
            "repro_backend_compute_ms",
            "Model compute time per predict dispatch",
            ("backend",),
        )
    _compute_hist.observe(compute_ms, backend=backend_name)


@dataclass(frozen=True)
class ModelHandle:
    """Parent-side description of one published model."""

    key: object
    num_classes: int
    in_channels: int


def _default_chunk_size(num_items: int, num_workers: int, chunks_per_worker: int = 4) -> int:
    """Chunk size giving each worker a few sizable chunks (load balance vs overhead)."""
    if num_items <= 0:
        return 1
    return max(1, -(-num_items // (num_workers * chunks_per_worker)))


def _available_cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class Backend(ABC):
    """Common lifecycle + dispatch + model-store interface of all backends."""

    #: registry name ("serial" / "thread" / "fork")
    name: str = "?"

    def __init__(self, num_workers: int = 1) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self._started = False
        self._closed = False
        self._tasks_dispatched = 0
        self._lock = threading.Lock()
        self._m_tasks = get_registry().counter(
            "repro_backend_tasks_total",
            "Tasks dispatched through the execution-backend seam",
            ("backend",),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "Backend":
        """Bring workers up (idempotent; every dispatch path calls it lazily)."""
        with self._lock:
            if self._closed:
                raise BackendError(f"{self.name} backend is closed")
            if not self._started:
                self._start()
                self._started = True
        return self

    def close(self) -> None:
        """Tear workers down and release every published model (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            self._close()

    def _start(self) -> None:  # pragma: no cover - trivial default
        """Backend-specific startup (workers, pools); called once under lock."""

    def _close(self) -> None:  # pragma: no cover - trivial default
        """Backend-specific teardown; called at most once."""

    @property
    def running(self) -> bool:
        return self._started and not self._closed

    def __enter__(self) -> "Backend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError(f"{self.name} backend is closed")
        self.start()

    def _count_task(self, n: int = 1) -> None:
        with self._lock:
            self._tasks_dispatched += n
        self._m_tasks.inc(n, backend=self.name)

    # ------------------------------------------------------------------ #
    # Generic dispatch
    # ------------------------------------------------------------------ #
    @abstractmethod
    def map(self, fn: Callable, items: Sequence, chunk_size: int | None = None) -> list:
        """Apply ``fn`` to every item, preserving order.

        ``chunk_size`` groups items per task message (default: a few chunks
        per worker).  ``fn`` must be picklable for process backends.
        """

    # ------------------------------------------------------------------ #
    # Model store
    # ------------------------------------------------------------------ #
    @abstractmethod
    def publish_model(
        self,
        key,
        model,
        cloud_filter=None,
        *,
        engine=None,
        compile_plans: bool = True,
        plan_cache_size: int = 8,
        warm_shapes: Sequence[tuple[int, ...]] = (),
    ) -> ModelHandle:
        """Install ``model`` under ``key`` so workers can serve predictions.

        ``cloud_filter`` is applied to every batch before prediction (pass
        ``None`` to skip filtering).  ``engine`` lets in-process backends
        reuse an already-compiled :class:`~repro.unet.compiled.CompiledUNet`
        instead of building a duplicate plan cache; process backends ignore
        it (their workers bind shared pre-packed weights instead).
        ``warm_shapes`` pre-compiles plans for the given input shapes so the
        first prediction does not pay compilation.
        """

    @abstractmethod
    def release_model(self, key) -> None:
        """Forget ``key`` and free its store resources (no-op when absent)."""

    @abstractmethod
    def has_model(self, key) -> bool:
        """Whether ``key`` is currently published."""

    @abstractmethod
    def predict(self, key, batch: np.ndarray, deadline: Deadline | None = None) -> np.ndarray:
        """Probability maps ``(N, K, H, W)`` for one ``(N, H, W, 3)`` batch.

        ``deadline`` bounds the wait: every backend checks it *before*
        computing (expired work raises
        :class:`~repro.reliability.DeadlineExceeded` instead of burning a
        worker on a result nobody is waiting for).
        """

    def predict_stack(
        self, key, stack: np.ndarray, batch_size: int, copy: bool = True,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Predict a whole ``(N, H, W, 3)`` stack in ``batch_size`` batches.

        Returns the concatenated ``(N, K, H, W)`` probability maps.  With
        ``copy=False`` a backend may return a reusable internal buffer that
        is only valid until the next ``predict_stack`` call for the same key
        and shape — callers must consume (or copy) it before dispatching
        again.  ``deadline`` is re-checked before every batch, so an expired
        request stops dispatching mid-stack.
        """
        self._ensure_open()
        outputs = []
        for start in range(0, stack.shape[0], batch_size):
            if deadline is not None:
                deadline.check("backend predict_stack")
            outputs.append(self.predict(key, stack[start : start + batch_size]))
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def occupancy(self) -> dict:
        """Live occupancy counters for ``/stats`` (workers, models, tasks)."""
        return {
            "backend": self.name,
            "workers": self.num_workers,
            "busy_workers": self._busy_workers(),
            "running": self.running,
            "models": [str(key) for key in self._model_keys()],
            "tasks_dispatched": self._tasks_dispatched,
        }

    def _busy_workers(self) -> int:
        return 0

    def _model_keys(self) -> list:
        return []


# ---------------------------------------------------------------------- #
# In-process model entries (shared by the serial and thread backends)
# ---------------------------------------------------------------------- #
#: The generic (uncompiled) forward pass runs its conv GEMMs through the
#: process-wide scratch workspace in ``repro.nn.im2col``, which assumes one
#: engine call at a time per process.  Compiled plans carry their own
#: in-arena scratch (and a per-plan lock), so only uncompiled predictions
#: must be serialised when the thread backend fans them out.
_UNCOMPILED_PREDICT_LOCK = threading.Lock()


class LocalModelEntry:
    """One published model held in-process: model + filter + compiled engine."""

    __slots__ = ("model", "cloud_filter", "engine", "handle")

    def __init__(self, key, model, cloud_filter, engine, compile_plans, plan_cache_size,
                 warm_shapes):
        from ..unet.compiled import CompiledUNet
        from ..unet.model import UNet

        self.model = model
        self.cloud_filter = cloud_filter
        if engine is None and compile_plans and isinstance(model, UNet):
            engine = CompiledUNet(model, max_plans=plan_cache_size)
        self.engine = engine
        if self.engine is not None:
            for shape in warm_shapes:
                self.engine.warm(tuple(int(d) for d in shape))
        config = getattr(model, "config", None)
        self.handle = ModelHandle(
            key=key,
            num_classes=int(getattr(config, "num_classes", 0) or 0),
            in_channels=int(getattr(config, "in_channels", 3) or 3),
        )

    def predict(self, batch: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        from ..unet.inference import predict_batch_probabilities

        if self.engine is None:
            with _UNCOMPILED_PREDICT_LOCK:
                return predict_batch_probabilities(
                    batch, self.model, self.cloud_filter, engine=None, out=out
                )
        return predict_batch_probabilities(
            batch, self.model, self.cloud_filter, engine=self.engine, out=out
        )


# ---------------------------------------------------------------------- #
# Registry / resolution
# ---------------------------------------------------------------------- #
def _fork_available() -> bool:
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


def available_backends() -> tuple[str, ...]:
    """Backend names usable on this platform."""
    names = ["serial", "thread"]
    if _fork_available():
        names.append("fork")
    return tuple(names)


def resolve_backend_name(name: str | None, num_workers: int = 1) -> str:
    """Resolve a backend spec (possibly ``"auto"``/``None``) to a concrete name.

    ``auto`` honours the ``REPRO_BACKEND`` environment variable first (the CI
    matrix knob), then picks ``fork`` when more than one worker was requested
    and the platform supports it, and falls back to ``serial`` otherwise.
    An explicit name is validated against the platform (``fork`` on a
    fork-less platform fails here, at config time, not deep inside a worker).
    """
    if name in (None, "", "auto"):
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if env:
            name = env
        else:
            return "fork" if num_workers > 1 and _fork_available() else "serial"
    name = str(name).lower()
    valid = ("serial", "thread", "fork")
    if name not in valid:
        raise ValueError(f"unknown backend {name!r}; expected one of {valid} or 'auto'")
    if name == "fork" and not _fork_available():
        raise ValueError("backend 'fork' is not available on this platform "
                         "(no fork start method); use 'serial' or 'thread'")
    return name


def make_backend(name: str | None = "auto", num_workers: int | None = None, **kwargs) -> Backend:
    """Build a backend by name (``"auto"`` resolves via :func:`resolve_backend_name`)."""
    from .process import ProcessBackend
    from .serial import SerialBackend
    from .thread import ThreadBackend

    if num_workers is None:
        num_workers = _available_cpu_count()
    resolved = resolve_backend_name(name, num_workers)
    if resolved == "serial":
        return SerialBackend()
    if resolved == "thread":
        return ThreadBackend(num_workers=num_workers, **kwargs)
    return ProcessBackend(num_workers=num_workers, **kwargs)
