"""Image resizing, tiling and padding helpers.

The paper splits 2048×2048 Sentinel-2 scenes into 256×256 tiles before
auto-labeling and U-Net training, and the U-Net decoder up-samples feature
maps by a factor of two at every stage; this module provides both.

Tiling supports an optional ``overlap`` between neighbouring tiles: the scene
is cut with a stride of ``tile_size - overlap`` and reassembled with a
separable blend window so per-tile probability maps average smoothly across
tile borders instead of producing hard seams (the standard production pattern
for tiled segmentation inference).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "resize_nearest",
    "resize_bilinear",
    "pad_to_multiple",
    "TileGrid",
    "blend_window",
    "split_into_tiles",
    "assemble_from_tiles",
]


def resize_nearest(image: np.ndarray, new_shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour resize to ``(new_h, new_w)``; preserves dtype and labels."""
    img = np.asarray(image)
    new_h, new_w = int(new_shape[0]), int(new_shape[1])
    if new_h <= 0 or new_w <= 0:
        raise ValueError("target shape must be positive")
    h, w = img.shape[:2]
    rows = np.minimum((np.arange(new_h) + 0.5) * h / new_h, h - 1).astype(np.intp)
    cols = np.minimum((np.arange(new_w) + 0.5) * w / new_w, w - 1).astype(np.intp)
    return img[rows][:, cols]


def resize_bilinear(image: np.ndarray, new_shape: tuple[int, int]) -> np.ndarray:
    """Bilinear resize to ``(new_h, new_w)`` with half-pixel centres.

    Integer inputs are rounded, clipped to the dtype's range and cast back to
    the input dtype; float inputs stay float.
    """
    img = np.asarray(image)
    new_h, new_w = int(new_shape[0]), int(new_shape[1])
    if new_h <= 0 or new_w <= 0:
        raise ValueError("target shape must be positive")
    h, w = img.shape[:2]
    data = img.astype(np.float64)

    ys = (np.arange(new_h) + 0.5) * h / new_h - 0.5
    xs = (np.arange(new_w) + 0.5) * w / new_w - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).reshape(-1, 1)
    wx = (xs - x0).reshape(1, -1)
    if img.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]

    top = data[y0][:, x0] * (1 - wx) + data[y0][:, x1] * wx
    bot = data[y1][:, x0] * (1 - wx) + data[y1][:, x1] * wx
    out = top * (1 - wy) + bot * wy
    if np.issubdtype(img.dtype, np.integer):
        info = np.iinfo(img.dtype)
        return np.clip(np.round(out), info.min, info.max).astype(img.dtype)
    return out.astype(img.dtype, copy=False) if np.issubdtype(img.dtype, np.floating) else out


def _pad_bottom_right(image: np.ndarray, pad_h: int, pad_w: int, mode: str) -> np.ndarray:
    """Pad the bottom/right edges, falling back to edge padding per axis when
    reflect padding is impossible (``np.pad`` reflect cannot pad wider than
    ``dim - 1``, which breaks on degenerate 1-pixel-wide inputs)."""
    if pad_h == 0 and pad_w == 0:
        return image
    h, w = image.shape[:2]
    if mode == "reflect" and ((pad_h > max(h - 1, 0)) or (pad_w > max(w - 1, 0))):
        out = image
        if pad_h:
            spec = [(0, pad_h)] + [(0, 0)] * (out.ndim - 1)
            out = np.pad(out, spec, mode="reflect" if pad_h <= h - 1 else "edge")
        if pad_w:
            spec = [(0, 0), (0, pad_w)] + [(0, 0)] * (out.ndim - 2)
            out = np.pad(out, spec, mode="reflect" if pad_w <= w - 1 else "edge")
        return out
    spec = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (image.ndim - 2)
    return np.pad(image, spec, mode=mode)


def pad_to_multiple(image: np.ndarray, multiple: int, mode: str = "reflect") -> np.ndarray:
    """Pad the bottom/right edges so height and width are multiples of ``multiple``."""
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    img = np.asarray(image)
    h, w = img.shape[:2]
    return _pad_bottom_right(img, (-h) % multiple, (-w) % multiple, mode)


class TileGrid(tuple):
    """Geometry of one tiling produced by :func:`split_into_tiles`.

    Behaves exactly like the legacy ``(rows, cols)`` tuple (equality,
    unpacking, indexing), and additionally carries the tile size, overlap,
    and the original/padded scene shapes that overlap-aware reassembly needs.
    """

    tile_size: int
    overlap: int
    image_shape: tuple[int, int]
    padded_shape: tuple[int, int]

    def __new__(
        cls,
        rows: int,
        cols: int,
        tile_size: int,
        overlap: int = 0,
        image_shape: tuple[int, int] | None = None,
        padded_shape: tuple[int, int] | None = None,
    ) -> "TileGrid":
        self = super().__new__(cls, (int(rows), int(cols)))
        self.tile_size = int(tile_size)
        self.overlap = int(overlap)
        stride = self.tile_size - self.overlap
        if padded_shape is None:
            padded_shape = ((int(rows) - 1) * stride + self.tile_size,
                            (int(cols) - 1) * stride + self.tile_size)
        self.padded_shape = (int(padded_shape[0]), int(padded_shape[1]))
        self.image_shape = self.padded_shape if image_shape is None else (int(image_shape[0]), int(image_shape[1]))
        return self

    @property
    def rows(self) -> int:
        return self[0]

    @property
    def cols(self) -> int:
        return self[1]

    @property
    def stride(self) -> int:
        return self.tile_size - self.overlap

    @property
    def num_tiles(self) -> int:
        return self[0] * self[1]

    def __reduce__(self):
        return (TileGrid, (self[0], self[1], self.tile_size, self.overlap, self.image_shape, self.padded_shape))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TileGrid(rows={self[0]}, cols={self[1]}, tile_size={self.tile_size}, "
                f"overlap={self.overlap}, image_shape={self.image_shape})")


def blend_window(tile_size: int, overlap: int) -> np.ndarray:
    """Separable 2-D blend weights for overlapped reassembly.

    The window is 1 over the tile interior and tapers linearly across the
    overlapped margin, so two neighbouring tiles cross-fade instead of
    switching abruptly at the seam.  Weights are strictly positive;
    :func:`assemble_from_tiles` normalises by the accumulated weight sum, so
    border tiles (whose margins overlap nothing) are handled automatically.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    if not 0 <= overlap < tile_size:
        raise ValueError("overlap must satisfy 0 <= overlap < tile_size")
    w1 = np.ones(tile_size, dtype=np.float64)
    taper = min(overlap, tile_size // 2)
    if taper > 0:
        ramp = np.arange(1, taper + 1, dtype=np.float64) / (taper + 1)
        w1[:taper] = ramp
        w1[-taper:] = ramp[::-1]
    return np.outer(w1, w1)


def split_into_tiles(
    image: np.ndarray, tile_size: int = 256, overlap: int = 0
) -> tuple[np.ndarray, TileGrid]:
    """Split a scene into ``tile_size``×``tile_size`` tiles.

    With ``overlap == 0`` (the default) the scene is cut into disjoint tiles
    after reflect-padding up to a tile-size multiple, matching how the paper
    cuts 66 big scenes into 4224 tiles.  With ``overlap > 0`` neighbouring
    tiles share ``overlap`` pixels (stride ``tile_size - overlap``), which is
    what seam-free blended inference consumes.

    Returns ``(tiles, grid)`` where ``tiles`` has shape
    ``(n_tiles, tile_size, tile_size[, C])`` and ``grid`` is a
    :class:`TileGrid` (usable as a plain ``(rows, cols)`` tuple).
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    if not 0 <= overlap < tile_size:
        raise ValueError("overlap must satisfy 0 <= overlap < tile_size")
    img = np.asarray(image)
    h, w = img.shape[:2]
    stride = tile_size - overlap
    rows = 1 if h <= tile_size else int(np.ceil((h - tile_size) / stride)) + 1
    cols = 1 if w <= tile_size else int(np.ceil((w - tile_size) / stride)) + 1
    padded_h = (rows - 1) * stride + tile_size
    padded_w = (cols - 1) * stride + tile_size
    img = _pad_bottom_right(img, padded_h - h, padded_w - w, "reflect")
    grid = TileGrid(rows, cols, tile_size, overlap, image_shape=(h, w), padded_shape=(padded_h, padded_w))

    if overlap == 0:
        if img.ndim == 2:
            tiles = img.reshape(rows, tile_size, cols, tile_size).swapaxes(1, 2)
            tiles = tiles.reshape(rows * cols, tile_size, tile_size)
        else:
            c = img.shape[2]
            tiles = img.reshape(rows, tile_size, cols, tile_size, c).swapaxes(1, 2)
            tiles = tiles.reshape(rows * cols, tile_size, tile_size, c)
        return np.ascontiguousarray(tiles), grid

    windows = np.lib.stride_tricks.sliding_window_view(img, (tile_size, tile_size), axis=(0, 1))
    windows = windows[::stride, ::stride]  # (rows, cols[, C], tile, tile)
    if img.ndim == 2:
        tiles = windows.reshape(rows * cols, tile_size, tile_size)
    else:
        tiles = windows.transpose(0, 1, 3, 4, 2).reshape(rows * cols, tile_size, tile_size, img.shape[2])
    return np.ascontiguousarray(tiles), grid


def _assemble_disjoint(tiles: np.ndarray, rows: int, cols: int) -> np.ndarray:
    t = tiles.shape[1]
    if tiles.ndim == 3:
        out = tiles.reshape(rows, cols, t, t).swapaxes(1, 2).reshape(rows * t, cols * t)
    else:
        c = tiles.shape[-1]
        out = tiles.reshape(rows, cols, t, t, c).swapaxes(1, 2).reshape(rows * t, cols * t, c)
    return np.ascontiguousarray(out)


def _assemble_blended(tiles: np.ndarray, grid: TileGrid) -> np.ndarray:
    rows, cols = grid
    t, stride = grid.tile_size, grid.stride
    ph, pw = grid.padded_shape
    has_channels = tiles.ndim == 4
    c = tiles.shape[-1] if has_channels else 1
    window = blend_window(t, grid.overlap)[..., None]
    acc = np.zeros((ph, pw, c), dtype=np.float64)
    weights = np.zeros((ph, pw, 1), dtype=np.float64)
    for r in range(rows):
        for q in range(cols):
            y, x = r * stride, q * stride
            tile = tiles[r * cols + q].reshape(t, t, c)
            acc[y : y + t, x : x + t] += window * tile
            weights[y : y + t, x : x + t] += window
    out = acc / weights
    return out[..., 0] if not has_channels else out


def assemble_from_tiles(tiles: np.ndarray, grid: "TileGrid | tuple[int, int]") -> np.ndarray:
    """Inverse of :func:`split_into_tiles`: stitch tiles back into a scene.

    With a :class:`TileGrid` the output is cropped back to the original
    (pre-padding) scene shape; overlapped grids are reassembled by weighted
    blending (see :func:`blend_window`) and therefore return a floating-point
    scene — blend probability maps, not argmax label maps.  A plain
    ``(rows, cols)`` tuple selects the legacy disjoint, uncropped stitch.
    """
    tiles = np.asarray(tiles)
    rows, cols = grid
    if tiles.shape[0] != rows * cols:
        raise ValueError(f"expected {rows * cols} tiles, got {tiles.shape[0]}")
    if isinstance(grid, TileGrid):
        if tiles.shape[1] != grid.tile_size or tiles.shape[2] != grid.tile_size:
            raise ValueError(
                f"tiles of shape {tiles.shape[1:3]} do not match grid tile_size {grid.tile_size}"
            )
        h, w = grid.image_shape
        if grid.overlap == 0:
            return _assemble_disjoint(tiles, rows, cols)[:h, :w]
        return _assemble_blended(tiles, grid)[:h, :w]
    return _assemble_disjoint(tiles, rows, cols)
