"""Tests for repro.metrics.ssim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import mean_ssim_over_pairs, ssim


class TestSSIM:
    def test_identical_images_score_one(self, gray_image):
        assert ssim(gray_image, gray_image) == pytest.approx(1.0, abs=1e-6)

    def test_identical_rgb_score_one(self, rgb_image):
        assert ssim(rgb_image, rgb_image) == pytest.approx(1.0, abs=1e-6)

    def test_noise_reduces_score(self, gray_image):
        rng = np.random.default_rng(0)
        noisy = np.clip(gray_image.astype(int) + rng.normal(0, 40, gray_image.shape), 0, 255).astype(np.uint8)
        assert ssim(gray_image, noisy) < 0.9

    def test_more_noise_scores_lower(self, gray_image):
        rng = np.random.default_rng(1)
        light = np.clip(gray_image + rng.normal(0, 10, gray_image.shape), 0, 255).astype(np.uint8)
        heavy = np.clip(gray_image + rng.normal(0, 60, gray_image.shape), 0, 255).astype(np.uint8)
        assert ssim(gray_image, light) > ssim(gray_image, heavy)

    def test_symmetry(self, gray_image):
        rng = np.random.default_rng(2)
        other = rng.integers(0, 255, gray_image.shape, dtype=np.uint8)
        assert ssim(gray_image, other) == pytest.approx(ssim(other, gray_image), abs=1e-9)

    def test_bounded(self, gray_image):
        inverted = 255 - gray_image
        value = ssim(gray_image, inverted)
        assert -1.0 <= value <= 1.0

    def test_return_map_shape(self, gray_image):
        value, smap = ssim(gray_image, gray_image, return_map=True)
        assert smap.shape == gray_image.shape
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_shape_mismatch_raises(self, gray_image):
        with pytest.raises(ValueError):
            ssim(gray_image, gray_image[:10, :10])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(10), np.zeros(10))

    def test_constant_images_identical(self):
        a = np.full((32, 32), 100, dtype=np.uint8)
        assert ssim(a, a) == pytest.approx(1.0, abs=1e-6)


class TestBatchSSIM:
    def test_mean_over_pairs(self, gray_image):
        batch = np.stack([gray_image, gray_image])
        assert mean_ssim_over_pairs(batch, batch) == pytest.approx(1.0, abs=1e-6)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            mean_ssim_over_pairs(np.zeros((0, 8, 8)), np.zeros((0, 8, 8)))

    def test_batch_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_ssim_over_pairs(np.zeros((2, 8, 8)), np.zeros((3, 8, 8)))

    def test_label_maps_ssim_tracks_agreement(self):
        """Auto-label SSIM (the paper's Fig 11 metric) increases with label agreement."""
        from repro.classes import class_map_to_color

        rng = np.random.default_rng(0)
        truth = rng.integers(0, 3, size=(64, 64)).astype(np.uint8)
        slightly_wrong = truth.copy()
        idx = rng.integers(0, 64, size=(50, 2))
        slightly_wrong[idx[:, 0], idx[:, 1]] = (slightly_wrong[idx[:, 0], idx[:, 1]] + 1) % 3
        very_wrong = (truth + 1) % 3
        s_good = ssim(class_map_to_color(truth), class_map_to_color(slightly_wrong))
        s_bad = ssim(class_map_to_color(truth), class_map_to_color(very_wrong))
        assert s_good > s_bad
