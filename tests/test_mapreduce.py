"""Tests for repro.mapreduce (sparklite engine, executors, cluster model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce import (
    PAPER_TABLE2_ROWS,
    ClusterShape,
    GCDClusterModel,
    SparkLiteContext,
    make_executor,
    mapreduce_scaling_sweep,
    paper_table2,
    partition_items,
    run_mapreduce_autolabel,
    udf,
)


def add_one(x):
    return x + 1


def is_even(x):
    return x % 2 == 0


class TestPartitioning:
    def test_balanced_partitions(self):
        parts = partition_items(list(range(10)), 3)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_preserves_order(self):
        parts = partition_items(list(range(7)), 2)
        flattened = [x for p in parts for x in p.items]
        assert flattened == list(range(7))

    def test_more_partitions_than_items(self):
        parts = partition_items([1, 2], 5)
        assert sum(len(p) for p in parts) == 2

    def test_empty_items(self):
        parts = partition_items([], 3)
        assert len(parts) == 1 and len(parts[0]) == 0

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            partition_items([1], 0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
    def test_partition_concat_identity(self, items, k):
        parts = partition_items(items, k)
        assert [x for p in parts for x in p.items] == items


class TestExecutors:
    @pytest.mark.parametrize("kind", ["serial", "threads", "processes"])
    def test_all_backends_agree(self, kind):
        context = SparkLiteContext(executor=kind, parallelism=2)
        data = context.parallelize(list(range(30)), num_partitions=4)
        result = data.map(add_one).filter(is_even).collect()
        expected = [x + 1 for x in range(30) if (x + 1) % 2 == 0]
        assert result == expected

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_executor_parallelism_bounds(self):
        with pytest.raises(ValueError):
            make_executor("threads", 0)


class TestDatasetSemantics:
    def test_map_is_lazy(self):
        calls = []

        def tracer(x):
            calls.append(x)
            return x

        context = SparkLiteContext()
        data = context.parallelize([1, 2, 3]).map(tracer)
        assert calls == []  # nothing ran yet
        data.collect()
        assert sorted(calls) == [1, 2, 3]

    def test_collect_equals_serial_map(self):
        context = SparkLiteContext(executor="threads", parallelism=3)
        items = list(range(25))
        assert context.parallelize(items).map(add_one).collect() == [add_one(x) for x in items]

    def test_count_and_take(self):
        context = SparkLiteContext()
        data = context.parallelize(list(range(12)), num_partitions=3)
        assert data.count() == 12
        assert data.take(4) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            data.take(-1)

    def test_reduce(self):
        context = SparkLiteContext()
        data = context.parallelize(list(range(1, 11)), num_partitions=4)
        assert data.reduce(lambda a, b: a + b) == 55

    def test_reduce_empty_raises(self):
        context = SparkLiteContext()
        data = context.parallelize([]).filter(lambda x: False)
        with pytest.raises(ValueError):
            data.reduce(lambda a, b: a + b)

    def test_map_partitions(self):
        context = SparkLiteContext()
        data = context.parallelize(list(range(10)), num_partitions=2)
        out = data.map_partitions(lambda items: [sum(items)]).collect()
        assert sum(out) == sum(range(10))
        assert len(out) == 2

    def test_timings_recorded(self):
        context = SparkLiteContext()
        data = context.parallelize(list(range(100)))
        data.map(add_one).collect()
        timings = context.last_timings
        assert timings.load_time >= 0 and timings.reduce_time > 0
        assert set(timings.as_row()) == {"load_time_s", "map_time_s", "reduce_time_s"}

    def test_udf_decorator_marks_function(self):
        @udf
        def my_udf(x):
            return x

        assert getattr(my_udf, "__sparklite_udf__", False)

    def test_transformations_do_not_mutate_parent(self):
        context = SparkLiteContext()
        base = context.parallelize([1, 2, 3, 4])
        mapped = base.map(add_one)
        assert base.collect() == [1, 2, 3, 4]
        assert mapped.collect() == [2, 3, 4, 5]


class TestAutoLabelJob:
    def test_mapreduce_labels_match_serial(self, tiny_dataset):
        from repro.labeling import autolabel_batch

        tiles = tiny_dataset.images[:4]
        result = run_mapreduce_autolabel(tiles, executor="serial", parallelism=1)
        np.testing.assert_array_equal(result.labels, autolabel_batch(tiles, apply_cloud_filter=True))

    def test_process_backend_matches_serial(self, tiny_dataset):
        tiles = tiny_dataset.images[:4]
        serial = run_mapreduce_autolabel(tiles, executor="serial")
        procs = run_mapreduce_autolabel(tiles, executor="processes", parallelism=2)
        np.testing.assert_array_equal(serial.labels, procs.labels)

    def test_rejects_bad_stack(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_mapreduce_autolabel(tiny_dataset.labels)


class TestClusterModel:
    def test_paper_table_has_nine_rows(self):
        assert len(PAPER_TABLE2_ROWS) == 9
        derived = paper_table2()
        assert derived[-1]["speedup_reduce"] == pytest.approx(16.25, abs=0.01)
        assert derived[-1]["speedup_load"] == pytest.approx(9.0, abs=0.01)

    def test_model_matches_paper_shape(self):
        model = GCDClusterModel()
        assert model.relative_error_vs_paper() < 0.15

    def test_times_decrease_with_slots(self):
        model = GCDClusterModel()
        t1 = model.reduce_time(ClusterShape(1, 1))
        t4 = model.reduce_time(ClusterShape(2, 2))
        t16 = model.reduce_time(ClusterShape(4, 4))
        assert t1 > t4 > t16

    def test_speedups_relative_to_baseline(self):
        rows = GCDClusterModel().sweep()
        base = rows[0]
        assert base["speedup_load"] == 1.0 and base["speedup_reduce"] == 1.0
        assert rows[-1]["speedup_reduce"] > 10

    def test_map_time_constant_and_small(self):
        model = GCDClusterModel()
        times = {model.map_time(ClusterShape(e, c)) for e in (1, 2, 4) for c in (1, 2, 4)}
        assert len(times) == 1
        assert times.pop() < 1.0

    def test_calibration_from_measurement(self):
        model = GCDClusterModel.calibrated_from_measurement(100, measured_load_time=10.0, measured_reduce_time=50.0)
        row = model.predict_row(ClusterShape(1, 1))
        assert row["load_time_s"] == pytest.approx(10.0, rel=0.1)
        assert row["reduce_time_s"] == pytest.approx(50.0, rel=0.1)

    def test_calibration_rejects_bad_times(self):
        with pytest.raises(ValueError):
            GCDClusterModel.calibrated_from_measurement(10, measured_load_time=0.0, measured_reduce_time=1.0)

    def test_cluster_shape_validation(self):
        with pytest.raises(ValueError):
            ClusterShape(0, 1)
        assert ClusterShape(4, 4).slots == 16

    def test_sweep_with_real_measurement(self, tiny_dataset):
        rows = mapreduce_scaling_sweep(tiles=tiny_dataset.images[:2])
        assert len(rows) == 9
        assert rows[-1]["reduce_time_s"] < rows[0]["reduce_time_s"]
