"""Graceful-shutdown test: SIGTERM to a live ``repro.cli serve`` subprocess
must drain in-flight requests, release every shared-memory segment and worker
process, and exit 0 — no orphans, no leaks, no truncated responses."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.backend import available_backends
from repro.backend.store import SEGMENT_PREFIX
from repro.serving import ModelRegistry
from repro.unet import InferenceConfig, UNet, UNetConfig

fork_only = pytest.mark.skipif(
    "fork" not in available_backends(), reason="fork start method unavailable"
)


def _segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir("/dev/shm") if name.startswith(SEGMENT_PREFIX)}


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _spawn_server(registry_dir: str, extra_env: dict[str, str]):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--registry", registry_dir, "--port", "0", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    # The first stdout line is the machine-readable ready announcement.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise AssertionError(
                    f"server exited early ({proc.returncode}): {proc.stderr.read()}")
            continue
        try:
            ready = json.loads(line)
        except json.JSONDecodeError:
            continue
        if ready.get("serving"):
            return proc, ready["port"]
    proc.kill()
    raise AssertionError("server never announced readiness")


@pytest.fixture()
def registry_dir(tmp_path):
    registry = ModelRegistry(str(tmp_path))
    registry.publish(
        "seaice", 1, UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=5)),
        inference=InferenceConfig(tile_size=16, apply_cloud_filter=False),
    )
    registry.close()
    return str(tmp_path)


_TILE = np.zeros((16, 16, 3), dtype=np.uint8).tolist()


def _drain_and_wait(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - the failure mode under test
        proc.kill()
        raise AssertionError("server did not exit within 30s of SIGTERM")


class TestSigtermDrain:
    def test_serial_backend_drains_and_exits_zero(self, registry_dir):
        proc, port = _spawn_server(registry_dir, {"REPRO_BACKEND": "serial"})
        try:
            status, _ = _request(port, "POST", "/predict", {"tile": _TILE})
            assert status == 200
            assert _drain_and_wait(proc) == 0
            # The listener is really gone.
            with pytest.raises(OSError):
                _request(port, "GET", "/healthz", timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()

    @fork_only
    def test_fork_backend_releases_workers_and_shm(self, registry_dir):
        before = _segments()
        proc, port = _spawn_server(registry_dir, {
            "REPRO_BACKEND": "fork",
            # Every predict sleeps 300 ms so a request is reliably in flight
            # when SIGTERM lands — the drain must still answer it with 200.
            "REPRO_FAULTS": "slow_predict:-1:0.3",
        })
        worker_pids: list[int] = []
        try:
            status, _ = _request(port, "POST", "/predict", {"tile": _TILE})
            assert status == 200
            status, stats = _request(port, "GET", "/stats")
            assert status == 200
            for occupancy in stats["backends"].values():
                worker_pids.extend(occupancy.get("worker_pids", []))
            assert worker_pids, "fork backend reported no workers"
            assert _segments() > before  # model store + arenas live in shm

            inflight: dict[str, object] = {}

            def client() -> None:
                try:
                    inflight["status"], _ = _request(port, "POST", "/predict",
                                                     {"tile": _TILE})
                except Exception as exc:  # pragma: no cover - drain failure mode
                    inflight["error"] = exc

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.1)  # request is now inside the slow predict
            assert _drain_and_wait(proc) == 0
            thread.join(10.0)
            assert inflight.get("status") == 200, f"in-flight request lost: {inflight}"
        finally:
            if proc.poll() is None:
                proc.kill()
        # No orphaned workers, no leaked shared memory.
        assert not any(_alive(pid) for pid in worker_pids)
        assert _segments() == before
