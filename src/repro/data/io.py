"""Dataset persistence: save and load tile archives as compressed ``.npz`` files.

Generating (or, in a real deployment, downloading and tiling) a scene archive
is by far the slowest part of the workflow, so the catalog can be written to
disk once and re-loaded by every subsequent experiment.  The format is a
single compressed ``.npz`` holding the observed tiles, the clean tiles, the
ground-truth labels and the per-tile metadata columns.
"""

from __future__ import annotations

import os

import numpy as np

from .catalog import TileDataset, TileRecord

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: TileDataset, path: "str | os.PathLike") -> str:
    """Write a :class:`TileDataset` to ``path`` (``.npz`` appended if missing).

    Returns the path actually written.
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        images=dataset.images,
        clean_images=dataset.clean_images,
        labels=dataset.labels,
        scene_index=np.array([r.scene_index for r in dataset.records], dtype=np.int64),
        tile_index=np.array([r.tile_index for r in dataset.records], dtype=np.int64),
        cloud_shadow_fraction=np.array([r.cloud_shadow_fraction for r in dataset.records], dtype=np.float64),
    )
    return path


def load_dataset(path: "str | os.PathLike") -> TileDataset:
    """Load a :class:`TileDataset` previously written by :func:`save_dataset`."""
    path = str(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        required = {"images", "clean_images", "labels", "scene_index", "tile_index", "cloud_shadow_fraction"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path} is not a tile-dataset archive (missing {sorted(missing)})")
        version = int(archive["format_version"]) if "format_version" in archive.files else 0
        if version > _FORMAT_VERSION:
            raise ValueError(f"archive format version {version} is newer than supported ({_FORMAT_VERSION})")
        records = [
            TileRecord(scene_index=int(s), tile_index=int(t), cloud_shadow_fraction=float(f))
            for s, t, f in zip(archive["scene_index"], archive["tile_index"], archive["cloud_shadow_fraction"])
        ]
        return TileDataset(
            images=archive["images"],
            clean_images=archive["clean_images"],
            labels=archive["labels"],
            records=records,
        )
