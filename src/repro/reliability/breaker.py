"""Per-model circuit breaker: fail fast instead of hammering a broken model.

When a model keeps failing (corrupt weights after a bad publish, a backend
whose workers die on every attach), every further request pays the full
failure latency — worker respawns, retry backoff, dispatch timeouts — and
occupies a concurrency slot that healthy models could use.  The breaker
watches consecutive failures and, past ``failure_threshold``, *opens*:
requests fail immediately with :class:`CircuitOpenError` (the serving layer
maps it to 503 + ``Retry-After``).  After ``reset_timeout_s`` it goes
*half-open* and lets a limited number of probe requests through; one
success closes it again, one failure re-opens it for another full window.
"""

from __future__ import annotations

import threading
import time

from ..obs.metrics import get_registry

__all__ = ["CircuitBreaker", "CircuitOpenError"]


def _transitions_counter():
    return get_registry().counter(
        "repro_breaker_transitions_total",
        "Circuit-breaker state transitions, by destination state",
        ("to",),
    )


class CircuitOpenError(RuntimeError):
    """The breaker is open: the target failed repeatedly and is quarantined."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure quarantine.

    Thread-safe; the clock is injectable for tests.  ``half_open_probes``
    bounds how many concurrent requests may probe a half-open breaker —
    the rest fail fast until a probe reports back.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._total_failures = 0
        self._times_opened = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._resolve_state()

    def _resolve_state(self) -> str:
        """Current state, promoting open → half-open once the window passed.

        Must hold ``_lock``.
        """
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = "half_open"
            self._probes_in_flight = 0
            _transitions_counter().inc(to="half_open")
        return self._state

    def check(self) -> None:
        """Admit one request or raise :class:`CircuitOpenError`.

        In the half-open state this *claims a probe slot*: the caller must
        report back with :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._resolve_state()
            if state == "closed":
                return
            if state == "half_open":
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return
                raise CircuitOpenError(
                    "circuit half-open: probe already in flight",
                    retry_after_s=self.reset_timeout_s,
                )
            retry_after = max(
                0.0, self.reset_timeout_s - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"circuit open after {self._consecutive_failures} consecutive failures",
                retry_after_s=retry_after,
            )

    def record_cancelled(self) -> None:
        """The admitted request ended with no verdict (caller timed out, was
        shed downstream): release its half-open probe slot without moving the
        breaker either way — a client giving up says nothing about model
        health."""
        with self._lock:
            if self._resolve_state() == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_success(self) -> None:
        with self._lock:
            state = self._resolve_state()
            if state == "half_open":
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if self._state != "closed":
                _transitions_counter().inc(to="closed")
            self._state = "closed"
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._resolve_state()
            self._consecutive_failures += 1
            self._total_failures += 1
            if state == "half_open" or self._consecutive_failures >= self.failure_threshold:
                if self._state != "open":
                    self._times_opened += 1
                    _transitions_counter().inc(to="open")
                self._state = "open"
                self._opened_at = self._clock()
                self._probes_in_flight = 0

    def to_dict(self) -> dict:
        """Observability snapshot for ``/stats``."""
        with self._lock:
            state = self._resolve_state()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "total_failures": self._total_failures,
                "times_opened": self._times_opened,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
            }
