"""Tests for repro.imops.arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imops import (
    absdiff,
    apply_mask,
    bitwise_and,
    bitwise_not,
    bitwise_or,
    min_max_normalize,
    saturating_add,
    saturating_subtract,
    scale_to_uint8,
)

uint8_images = hnp.arrays(dtype=np.uint8, shape=st.tuples(st.integers(1, 10), st.integers(1, 10)))


class TestSaturatingArithmetic:
    def test_add_saturates_at_255(self):
        a = np.array([[250]], dtype=np.uint8)
        b = np.array([[20]], dtype=np.uint8)
        assert saturating_add(a, b)[0, 0] == 255

    def test_subtract_saturates_at_zero(self):
        a = np.array([[10]], dtype=np.uint8)
        b = np.array([[30]], dtype=np.uint8)
        assert saturating_subtract(a, b)[0, 0] == 0

    @settings(max_examples=25, deadline=None)
    @given(uint8_images, uint8_images)
    def test_absdiff_symmetric(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        np.testing.assert_array_equal(absdiff(a, b), absdiff(b, a))

    def test_absdiff_zero_for_identical(self, gray_image):
        assert np.all(absdiff(gray_image, gray_image) == 0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            saturating_add(np.zeros((2, 2), dtype=np.uint8), np.zeros((3, 3), dtype=np.uint8))


class TestBitwise:
    def test_not_involution(self, gray_image):
        np.testing.assert_array_equal(bitwise_not(bitwise_not(gray_image)), gray_image)

    def test_and_with_self_is_identity(self, gray_image):
        np.testing.assert_array_equal(bitwise_and(gray_image, gray_image), gray_image)

    def test_or_with_zero_is_identity(self, gray_image):
        np.testing.assert_array_equal(bitwise_or(gray_image, np.zeros_like(gray_image)), gray_image)

    def test_mask_zeroes_outside(self, gray_image):
        mask = np.zeros_like(gray_image, dtype=bool)
        mask[:5, :5] = True
        out = bitwise_and(gray_image, gray_image, mask=mask)
        assert np.all(out[5:, 5:] == 0)
        np.testing.assert_array_equal(out[:5, :5], gray_image[:5, :5])

    def test_apply_mask_on_rgb(self, rgb_image):
        mask = np.zeros(rgb_image.shape[:2], dtype=bool)
        mask[0, 0] = True
        out = apply_mask(rgb_image, mask)
        np.testing.assert_array_equal(out[0, 0], rgb_image[0, 0])
        assert np.all(out[1:] == 0)

    def test_apply_mask_bad_shape(self, rgb_image):
        with pytest.raises(ValueError):
            apply_mask(rgb_image, np.zeros((3, 3), dtype=bool))


class TestNormalization:
    def test_minmax_hits_bounds(self, gray_image):
        out = min_max_normalize(gray_image, 0, 255)
        assert np.isclose(out.min(), 0.0)
        assert np.isclose(out.max(), 255.0)

    def test_minmax_constant_image(self):
        img = np.full((5, 5), 9.0)
        out = min_max_normalize(img, 10, 20)
        assert np.all(out == 10)

    def test_minmax_custom_range(self, gray_image):
        out = min_max_normalize(gray_image, -1.0, 1.0)
        assert out.min() >= -1.0 - 1e-9 and out.max() <= 1.0 + 1e-9

    def test_minmax_monotonic(self, gray_image):
        out = min_max_normalize(gray_image)
        flat_in = gray_image.ravel().astype(float)
        flat_out = out.ravel()
        order = np.argsort(flat_in)
        assert np.all(np.diff(flat_out[order]) >= -1e-9)

    def test_scale_to_uint8(self):
        out = scale_to_uint8(np.array([-5.0, 12.4, 300.0]))
        np.testing.assert_array_equal(out, np.array([0, 12, 255], dtype=np.uint8))
        assert out.dtype == np.uint8
