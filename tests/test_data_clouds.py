"""Tests for repro.data.clouds (cloud / shadow opacity fields)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_cloud_field, generate_cloud_shadow_pair


class TestCloudField:
    def test_range_and_shape(self):
        field = generate_cloud_field((64, 64), coverage=0.3, max_opacity=0.5, rng=np.random.default_rng(0))
        assert field.shape == (64, 64)
        assert field.min() >= 0.0 and field.max() <= 0.5 + 1e-12

    def test_zero_coverage_is_empty(self):
        field = generate_cloud_field((32, 32), coverage=0.0)
        assert not field.any()

    def test_coverage_roughly_matches(self):
        field = generate_cloud_field((128, 128), coverage=0.4, rng=np.random.default_rng(1))
        assert abs((field > 0).mean() - 0.4) < 0.08

    def test_field_is_smooth(self):
        field = generate_cloud_field((64, 64), coverage=0.5, max_opacity=0.5, rng=np.random.default_rng(2))
        gradient = np.abs(np.diff(field, axis=0)).max()
        # No hard edges in a thin-cloud veil: a step of the full opacity in one
        # pixel would be 0.5; real ramps stay well below that.
        assert gradient < 0.35

    def test_rejects_bad_coverage(self):
        with pytest.raises(ValueError):
            generate_cloud_field((8, 8), coverage=1.2)

    def test_rejects_bad_opacity(self):
        with pytest.raises(ValueError):
            generate_cloud_field((8, 8), coverage=0.3, max_opacity=0.99)


class TestCloudShadowPair:
    def test_shapes_and_masks(self):
        veil = generate_cloud_shadow_pair((64, 64), cloud_coverage=0.3, rng=np.random.default_rng(0))
        assert veil.cloud_alpha.shape == (64, 64)
        assert veil.shadow_alpha.shape == (64, 64)
        assert veil.cloud_mask.dtype == bool
        assert 0.0 <= veil.affected_fraction <= 1.0

    def test_cloud_free_scene(self):
        veil = generate_cloud_shadow_pair((32, 32), cloud_coverage=0.0, rng=np.random.default_rng(0))
        assert veil.affected_fraction == 0.0

    def test_shadow_is_offset_copy_of_cloud(self):
        rng = np.random.default_rng(3)
        veil = generate_cloud_shadow_pair((96, 96), cloud_coverage=0.25, shadow_offset=(20, 20), rng=rng)
        # The shadow bank exists and is not identical in place to the cloud bank.
        assert veil.shadow_mask.any()
        overlap = (veil.cloud_mask & veil.shadow_mask).sum()
        assert overlap < veil.cloud_mask.sum()

    def test_independent_shadow_coverage(self):
        veil = generate_cloud_shadow_pair(
            (64, 64), cloud_coverage=0.0, shadow_coverage=0.3, rng=np.random.default_rng(4)
        )
        assert not veil.cloud_mask.any()
        assert veil.shadow_mask.any()

    def test_shadow_attenuated_under_cloud(self):
        # With a zero offset the shadow coincides with its cloud, so every
        # shadow pixel sits under the cloud and must be attenuated to at most
        # 30% of the requested peak opacity (plus smoothing slack).
        rng = np.random.default_rng(5)
        veil = generate_cloud_shadow_pair(
            (96, 96), cloud_coverage=0.4, shadow_max_opacity=0.5, shadow_offset=(0, 0), rng=rng
        )
        under_cloud = veil.shadow_alpha[veil.cloud_alpha > 0.05]
        if under_cloud.size:
            assert under_cloud.max() <= 0.3 * 0.5 + 0.05

    def test_affected_fraction_grows_with_coverage(self):
        small = generate_cloud_shadow_pair((64, 64), cloud_coverage=0.1, rng=np.random.default_rng(6))
        large = generate_cloud_shadow_pair((64, 64), cloud_coverage=0.5, rng=np.random.default_rng(6))
        assert large.affected_fraction > small.affected_fraction
