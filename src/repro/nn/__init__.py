"""A compact NumPy deep-learning framework (the TensorFlow/Keras substitute).

Layer-wise reverse-mode differentiation with the building blocks the paper's
U-Net needs: im2col convolutions, ReLU, max pooling, up-convolution, dropout,
batch norm, channel concatenation, softmax cross-entropy, SGD/Adam, weight
checkpointing and numerical gradient checking.
"""

from .conv import Conv2D
from .gradcheck import check_layer_gradients, numerical_gradient, relative_error
from .im2col import (
    col2im,
    conv_backward_offset,
    conv_forward_offset,
    conv_output_size,
    im2col,
    pad_input,
    release_workspace,
    workspace_nbytes,
)
from .initializers import get_initializer, glorot_uniform, he_normal, zeros
from .layers import BatchNorm2D, Concat, Dropout, MaxPool2D, ReLU, UpConv2D, UpSample2D
from .losses import CategoricalCrossEntropy, softmax
from .module import Module, Parameter, Sequential
from .optimizers import SGD, Adam, Optimizer
from .plan import CompiledPlan, PlanBuilder, PlanCache
from .serialization import (
    CheckpointError,
    load_checkpoint,
    load_model_state,
    load_weights,
    read_metadata,
    save_checkpoint,
    save_weights,
)

__all__ = [
    "Conv2D",
    "check_layer_gradients",
    "numerical_gradient",
    "relative_error",
    "col2im",
    "conv_backward_offset",
    "conv_forward_offset",
    "conv_output_size",
    "im2col",
    "pad_input",
    "release_workspace",
    "workspace_nbytes",
    "get_initializer",
    "glorot_uniform",
    "he_normal",
    "zeros",
    "BatchNorm2D",
    "Concat",
    "Dropout",
    "MaxPool2D",
    "ReLU",
    "UpConv2D",
    "UpSample2D",
    "CategoricalCrossEntropy",
    "softmax",
    "Module",
    "Parameter",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "CompiledPlan",
    "PlanBuilder",
    "PlanCache",
    "CheckpointError",
    "load_checkpoint",
    "load_model_state",
    "load_weights",
    "read_metadata",
    "save_checkpoint",
    "save_weights",
]
