"""Fault injection: named failure points compiled out to no-ops when disarmed.

Production code cannot prove its recovery paths work unless the failures
can be produced on demand.  This module plants cheap named *fault points*
in the hot paths (``fault_point("worker_crash")`` is a single module-global
boolean check when nothing is armed) and lets the chaos test-suite — or the
CI chaos-smoke arm, via the ``REPRO_FAULTS`` environment variable — arm
them with a bounded fire count.

Known fault points and what firing does:

===================== =====================================================
``worker_crash``        the process calls ``os._exit(170)`` (SIGKILL-like
                        death of a fork worker mid-task)
``worker_hang``         the process sleeps ``param`` seconds (default 600 —
                        a worker stuck in compute, caught by the watchdog)
``slow_predict``        sleeps ``param`` seconds (default 0.05) inside the
                        shared prediction seam
``shm_attach_fail``     raises :class:`FaultInjected` from
                        ``attach_segment`` (a worker that cannot map a
                        published shared-memory segment)
``corrupt_archive_read`` raises :class:`FaultInjected` while opening a
                        checkpoint archive (surfaces as ``CheckpointError``)
``trainer_worker_crash`` an elastic-training worker calls ``os._exit(170)``
                        mid-step (the parent must rebuild the ring and
                        finish the step on the survivors)
``allreduce_stall``     a ring/fold participant sleeps ``param`` seconds
                        (default 600 — tripping the per-hop reply deadline,
                        which surfaces as ``RingBroken``)
``ckpt_corrupt_write``  truncates the checkpoint temp file before it is
                        renamed into place (a torn write the resume path
                        must skip past)
===================== =====================================================

Arming uses ``configure_faults({"worker_crash": FaultSpec(times=1)})`` or
``REPRO_FAULTS="worker_crash,slow_predict:3:0.02"`` (``name[:times[:param]]``,
``times=-1`` means unlimited).  Fire counters live in
``multiprocessing.Value`` cells, so fork-backend workers inherit and *share*
them with the parent: a fault armed ``times=1`` fires exactly once across
the whole worker fleet — including workers respawned after the fault killed
their predecessor — instead of once per process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultSpec",
    "configure_faults",
    "fault_point",
    "fault_stats",
    "faults_enabled",
    "reset_faults",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: How each known fault point misbehaves when it fires.
_ACTIONS = {
    "worker_crash": "exit",
    "worker_hang": "sleep",
    "slow_predict": "sleep",
    "shm_attach_fail": "raise",
    "corrupt_archive_read": "raise",
    "trainer_worker_crash": "exit",
    "allreduce_stall": "sleep",
    "ckpt_corrupt_write": "raise",
}

_SLEEP_DEFAULTS = {"worker_hang": 600.0, "slow_predict": 0.05, "allreduce_stall": 600.0}


class FaultInjected(OSError):
    """An injected failure (never raised unless a fault point is armed)."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: how often it fires and its numeric parameter."""

    times: int = 1  # -1 = unlimited
    param: float | None = None

    def __post_init__(self) -> None:
        if self.times < -1:
            raise ValueError("times must be >= 0 (or -1 for unlimited)")


class _ArmedFault:
    """A spec plus its cross-process fire budget and counter."""

    def __init__(self, name: str, spec: FaultSpec) -> None:
        if name not in _ACTIONS:
            raise ValueError(f"unknown fault point {name!r}; known: {sorted(_ACTIONS)}")
        self.name = name
        self.spec = spec
        # Shared cells: forked workers inherit these, so a times=1 budget is
        # global across the fleet and survives worker respawns.
        self._budget = multiprocessing.Value("i", spec.times, lock=True)
        self._fired = multiprocessing.Value("i", 0, lock=True)

    def take(self) -> bool:
        with self._budget.get_lock():
            if self._budget.value == 0:
                return False
            if self._budget.value > 0:
                self._budget.value -= 1
            with self._fired.get_lock():
                self._fired.value += 1
            return True

    @property
    def fired(self) -> int:
        return int(self._fired.value)


#: Armed faults by name.  ``_ARMED`` is the single cheap gate every
#: fault_point call checks first; it is False in production.
_SPECS: dict[str, _ArmedFault] = {}
_ARMED = False


def _parse_env(value: str) -> dict[str, FaultSpec]:
    specs: dict[str, FaultSpec] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        name = fields[0].strip()
        times = int(fields[1]) if len(fields) > 1 and fields[1] else 1
        param = float(fields[2]) if len(fields) > 2 and fields[2] else None
        specs[name] = FaultSpec(times=times, param=param)
    return specs


def configure_faults(spec: dict[str, FaultSpec] | str | None) -> None:
    """Arm fault points (replacing any previous arming).

    ``spec`` is a ``{name: FaultSpec}`` dict, an env-style string
    (``"worker_crash,slow_predict:3:0.02"``), or ``None``/empty to disarm.
    Must be called in the parent *before* a fork backend starts so workers
    inherit the shared fire budgets.
    """
    global _ARMED
    if isinstance(spec, str):
        spec = _parse_env(spec)
    _SPECS.clear()
    for name, fault_spec in (spec or {}).items():
        _SPECS[name] = _ArmedFault(name, fault_spec)
    _ARMED = bool(_SPECS)


def reset_faults() -> None:
    """Disarm every fault point (tests call this in teardown)."""
    configure_faults(None)


def faults_enabled() -> bool:
    return _ARMED


def fault_stats() -> dict[str, dict]:
    """Armed fault points with remaining budget and fire counts."""
    return {
        name: {
            "times": armed.spec.times,
            "param": armed.spec.param,
            "fired": armed.fired,
        }
        for name, armed in _SPECS.items()
    }


def fault_point(name: str) -> None:
    """Maybe fire the named fault.  A no-op unless armed (one bool check)."""
    if not _ARMED:
        return
    armed = _SPECS.get(name)
    if armed is None or not armed.take():
        return
    action = _ACTIONS[name]
    if action == "exit":
        os._exit(170)
    elif action == "sleep":
        time.sleep(armed.spec.param if armed.spec.param is not None
                   else _SLEEP_DEFAULTS.get(name, 0.05))
    else:
        raise FaultInjected(f"injected fault {name!r}")


# Arm from the environment at import time.  The backend imports this module
# in the parent before forking, so env-armed budgets are shared with every
# worker exactly like programmatically-armed ones.
_env = os.environ.get(FAULTS_ENV_VAR, "").strip()
if _env:
    configure_faults(_env)
