"""Thin-cloud and cloud-shadow filtering (paper §III-A).

* :mod:`repro.cloudshadow.detection` — classical mask detection + coverage estimation
* :mod:`repro.cloudshadow.removal` — linear-mixing-model veil estimation and inversion
* :mod:`repro.cloudshadow.pipeline` — combined filter with batch helpers
"""

from .detection import CloudShadowMasks, detect_cloud_shadow, estimate_coverage
from .pipeline import CloudShadowFilter, FilterResult, filter_tiles
from .removal import ThinCloudShadowRemover, VeilEstimate

__all__ = [
    "CloudShadowMasks",
    "detect_cloud_shadow",
    "estimate_coverage",
    "CloudShadowFilter",
    "FilterResult",
    "filter_tiles",
    "ThinCloudShadowRemover",
    "VeilEstimate",
]
