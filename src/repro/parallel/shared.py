"""Shared-memory ndarray helpers for zero-copy inter-process data exchange.

The mpi4py guide's core idiom — communicate raw buffers, not pickled
objects — applies equally to multiprocessing: a 4224-tile uint8 stack is
~800 MB and must not be serialised to every worker.  These helpers place an
ndarray in :mod:`multiprocessing.shared_memory` so workers attach to the
same pages, and wrap the lifecycle management (create / attach / close /
unlink) that is easy to get wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArraySpec", "SharedNDArray", "share_array"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of a shared array (what workers receive)."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def open(self) -> "SharedNDArray":
        """Attach to the existing shared-memory block described by this spec."""
        return SharedNDArray.attach(self)


class SharedNDArray:
    """A NumPy array backed by a named shared-memory block.

    Use :func:`share_array` (or :meth:`from_array`) in the parent process,
    send the cheap :class:`SharedArraySpec` to workers, and have each worker
    call :meth:`SharedArraySpec.open`.  The parent should call
    :meth:`unlink` once all workers are done.
    """

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray, owner: bool) -> None:
        self._shm = shm
        self.array = array
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def from_array(cls, source: np.ndarray, name: str | None = None) -> "SharedNDArray":
        """Create a shared-memory copy of ``source`` (the owning handle)."""
        src = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(create=True, size=max(src.nbytes, 1), name=name)
        array = np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf)
        array[...] = src
        return cls(shm, array, owner=True)

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedNDArray":
        """Attach to an existing block (non-owning handle used by workers)."""
        shm = shared_memory.SharedMemory(name=spec.name)
        array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        return cls(shm, array, owner=False)

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> SharedArraySpec:
        return SharedArraySpec(name=self._shm.name, shape=tuple(self.array.shape), dtype=str(self.array.dtype))

    def close(self) -> None:
        """Detach this handle (safe to call multiple times)."""
        if not self._closed:
            # Drop the ndarray view before closing the buffer it points into.
            self.array = None  # type: ignore[assignment]
            self._shm.close()
            self._closed = True

    def unlink(self) -> None:
        """Free the underlying block (owner only; call after all workers closed)."""
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


def share_array(source: np.ndarray) -> SharedNDArray:
    """Create an owning shared-memory copy of ``source``."""
    return SharedNDArray.from_array(source)
