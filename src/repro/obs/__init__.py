"""Observability substrate: metrics registry, request tracing, profiling hooks.

* :mod:`repro.obs.metrics` — thread/fork-safe counters, gauges, and
  fixed-bucket latency histograms with Prometheus text rendering and a
  drain/merge protocol for fork-worker delta piggybacking.
* :mod:`repro.obs.trace` — per-request trace ids, sampled structured-JSON
  trace logs, and the thread-local stage-span collector stack.
* :mod:`repro.obs.profile` — opt-in per-step / per-layer timers and the
  runners behind ``repro-seaice profile``.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    METRICS_ENV_VAR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_metrics_enabled,
)
from .profile import (
    LayerTimer,
    latency_percentiles,
    profile_inference,
    profile_training,
)
from .trace import (
    TRACE_ENV_VAR,
    TRACE_LOG_ENV_VAR,
    TRACE_SAMPLE_ENV_VAR,
    active_collector,
    collector_context,
    configure_tracing,
    current_trace_id,
    emit_trace,
    new_trace_id,
    pop_collector,
    push_collector,
    record,
    should_sample,
    span,
    trace_mode,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "METRICS_ENV_VAR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "LayerTimer",
    "latency_percentiles",
    "profile_inference",
    "profile_training",
    "TRACE_ENV_VAR",
    "TRACE_LOG_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "active_collector",
    "collector_context",
    "configure_tracing",
    "current_trace_id",
    "emit_trace",
    "new_trace_id",
    "pop_collector",
    "push_collector",
    "record",
    "should_sample",
    "span",
    "trace_mode",
]
