"""Tests for repro.nn layers: gradient checks and behavioural properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2D,
    Concat,
    Conv2D,
    Dropout,
    MaxPool2D,
    ReLU,
    UpConv2D,
    UpSample2D,
    check_layer_gradients,
    im2col,
    col2im,
    conv_output_size,
)


class TestGradientChecks:
    """Analytic backward passes must match central finite differences."""

    def test_conv2d(self):
        check_layer_gradients(Conv2D(2, 3, kernel_size=3, seed=1), (2, 2, 6, 6))

    def test_conv2d_stride_and_no_bias(self):
        check_layer_gradients(Conv2D(1, 2, kernel_size=3, stride=2, padding=1, use_bias=False, seed=2), (1, 1, 7, 7))

    def test_conv2d_1x1(self):
        check_layer_gradients(Conv2D(3, 2, kernel_size=1, padding=0, seed=3), (2, 3, 4, 4))

    def test_relu(self):
        check_layer_gradients(ReLU(), (2, 3, 5, 5))

    def test_maxpool(self):
        check_layer_gradients(MaxPool2D(2), (2, 2, 6, 6))

    def test_upsample(self):
        check_layer_gradients(UpSample2D(2), (1, 2, 4, 4))

    def test_upconv(self):
        check_layer_gradients(UpConv2D(2, 1, seed=4), (1, 2, 4, 4))

    def test_batchnorm(self):
        check_layer_gradients(BatchNorm2D(3), (4, 3, 5, 5), tolerance=5e-2)


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 2, 2, 0) == 4
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 3, stride=1, pad=1)
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, stride=1, pad=1)).sum())
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_col2im_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            col2im(np.zeros((4, 4)), (1, 1, 5, 5), 3, 3)


class TestConvBehaviour:
    def test_same_padding_preserves_size(self):
        conv = Conv2D(3, 8, kernel_size=3, padding="same")
        out = conv(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 16, 16)

    def test_identity_kernel(self):
        conv = Conv2D(1, 1, kernel_size=1, padding=0, use_bias=False)
        conv.weight.value[...] = 1.0
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(conv(x), x, rtol=1e-6)

    def test_bias_adds_constant(self):
        conv = Conv2D(1, 1, kernel_size=1, padding=0)
        conv.weight.value[...] = 0.0
        conv.bias.value[...] = 2.5
        out = conv(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert np.all(out == 2.5)

    def test_rejects_wrong_channel_count(self):
        conv = Conv2D(3, 4)
        with pytest.raises(ValueError):
            conv(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_rejects_bad_padding_string(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, padding="valid-ish")

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Conv2D(1, 1).backward(np.zeros((1, 1, 3, 3), dtype=np.float32))


class TestSimpleLayers:
    def test_relu_clips_negative(self):
        out = ReLU()(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2D(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2)(np.zeros((1, 1, 5, 5), dtype=np.float32))

    def test_upsample_repeats(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = UpSample2D(2)(x)
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == 1.0 and out[0, 0, 0, 1] == 1.0

    def test_upconv_doubles_spatial_size(self):
        out = UpConv2D(4, 2)(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 2, 16, 16)

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.5, seed=0)
        layer.training = False
        x = np.ones((2, 3, 4, 4), dtype=np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_preserves_expectation_in_train(self):
        layer = Dropout(0.3, seed=1)
        x = np.ones((1, 1, 64, 64), dtype=np.float32)
        out = layer(x)
        assert abs(out.mean() - 1.0) < 0.1
        assert (out == 0).any()

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_concat_and_backward_split(self):
        concat = Concat()
        a = np.ones((1, 2, 4, 4), dtype=np.float32)
        b = np.zeros((1, 3, 4, 4), dtype=np.float32)
        merged = concat(a, b)
        assert merged.shape == (1, 5, 4, 4)
        ga, gb = concat.backward(np.ones_like(merged))
        assert ga.shape == a.shape and gb.shape == b.shape

    def test_concat_rejects_mismatched_spatial(self):
        with pytest.raises(ValueError):
            Concat()(np.zeros((1, 2, 4, 4)), np.zeros((1, 2, 8, 8)))

    def test_batchnorm_normalises(self):
        layer = BatchNorm2D(2)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(8, 2, 6, 6)).astype(np.float32)
        out = layer(x)
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1

    def test_batchnorm_eval_uses_running_stats(self):
        layer = BatchNorm2D(1)
        rng = np.random.default_rng(1)
        for _ in range(20):
            layer(rng.normal(2.0, 1.0, size=(4, 1, 4, 4)).astype(np.float32))
        layer.training = False
        out = layer(np.full((1, 1, 4, 4), 2.0, dtype=np.float32))
        assert abs(out.mean()) < 0.5
