"""Table I and Figure 10 — Python-multiprocessing auto-labeling speedup.

Paper result: auto-labeling 4224 tiles takes 17.40 s serially and 3.89 s with
8 processes on a 4-core (hyperthreaded) machine — a 4.5× speedup.  This
benchmark measures the identical workload (thin-cloud/shadow filtering +
HSV colour segmentation per tile) on a reduced synthetic archive, sweeps the
process count, and reports the speedup column next to the paper's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.labeling.autolabel import autolabel_tile
from repro.metrics import fit_amdahl_serial_fraction
from repro.parallel import autolabel_scaling_table, available_cpu_count

from conftest import print_paper_vs_measured

#: Table I of the paper (processes, parallel time, speedup).
PAPER_TABLE1 = [
    {"processes": 1, "time_s": 17.40, "speedup": 1.0},
    {"processes": 2, "time_s": 8.89, "speedup": 2.0},
    {"processes": 4, "time_s": 4.69, "speedup": 3.7},
    {"processes": 6, "time_s": 4.10, "speedup": 4.2},
    {"processes": 8, "time_s": 3.89, "speedup": 4.5},
]


def _worker_counts() -> tuple[int, ...]:
    cpus = available_cpu_count()
    counts = [c for c in (1, 2, 4, 6, 8) if c <= max(2 * cpus, 2)]
    return tuple(counts) or (1,)


@pytest.mark.benchmark(group="table1")
def test_table1_single_tile_autolabel_cost(benchmark, bench_dataset):
    """Per-tile cost of the auto-labeling UDF (the unit of work Table I parallelises)."""
    tile = bench_dataset.images[0]
    result = benchmark(autolabel_tile, tile, True)
    assert result.shape == tile.shape[:2]


@pytest.mark.benchmark(group="table1")
def test_table1_and_fig10_multiprocessing_speedup(benchmark, bench_dataset):
    """Regenerate the Table I sweep / Figure 10 speedup curve."""
    tiles = bench_dataset.images
    counts = _worker_counts()

    def run_sweep():
        return autolabel_scaling_table(tiles, worker_counts=counts)

    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = table.rows()
    print_paper_vs_measured(
        f"Table I / Fig 10: multiprocessing auto-label speedup ({tiles.shape[0]} tiles of "
        f"{tiles.shape[1]}x{tiles.shape[2]}, {available_cpu_count()} CPUs available)",
        PAPER_TABLE1,
        rows,
    )

    # Shape checks: monotone non-increasing time, speedup > 1 once more than
    # one worker is used (when the machine has more than one core).
    speedups = [row["speedup"] for row in rows]
    assert speedups[0] == 1.0
    if len(rows) > 1 and available_cpu_count() > 1:
        assert max(speedups) > 1.2, "parallel auto-labeling should beat the serial baseline"
    workers = np.array([row["workers"] for row in rows], dtype=float)
    if len(rows) > 2:
        serial_fraction = fit_amdahl_serial_fraction(workers, np.array(speedups))
        print(f"  fitted Amdahl serial fraction: {serial_fraction:.3f}")
        assert serial_fraction < 0.9
