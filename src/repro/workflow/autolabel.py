"""End-to-end auto-labeling workflow (paper Figures 1, 2 and 6).

Collects the pieces — synthetic scene archive, thin-cloud/shadow filter,
colour-segmentation labeler, and one of the parallel backends — into the
single pipeline the paper calls "training data preparation": from raw scenes
to an auto-labelled tile dataset, with per-phase timing and label-quality
metrics (SSIM against manual labels).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..classes import class_map_to_color
from ..data.catalog import TileDataset
from ..labeling.autolabel import autolabel_batch
from ..labeling.manual import simulate_manual_labels
from ..mapreduce.autolabel_job import run_mapreduce_autolabel
from ..metrics.ssim import mean_ssim_over_pairs
from ..parallel.autolabel_runner import AutoLabelRunConfig, run_parallel_autolabel

__all__ = ["AutoLabelWorkflowConfig", "AutoLabelWorkflowResult", "AutoLabelWorkflow"]


@dataclass(frozen=True)
class AutoLabelWorkflowConfig:
    """Configuration of the training-data-preparation pipeline.

    ``backend`` selects how the per-tile work is parallelised:
    ``"serial"`` (reference), ``"multiprocessing"`` (paper §III-B(a)) or
    ``"mapreduce"`` (paper §III-B(b), the sparklite engine).  ``chunk_size``
    overrides the multiprocessing backend's items-per-task-message heuristic
    (ignored by the other backends).
    """

    backend: str = "serial"
    num_workers: int = 1
    apply_cloud_filter: bool = True
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "multiprocessing", "mapreduce"):
            raise ValueError("backend must be 'serial', 'multiprocessing' or 'mapreduce'")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")


@dataclass
class AutoLabelWorkflowResult:
    """Auto-labels plus quality metrics and timing of one pipeline run."""

    auto_labels: np.ndarray
    manual_labels: np.ndarray
    elapsed_s: float
    backend: str
    ssim_vs_manual: float
    pixel_agreement: float

    def summary(self) -> dict:
        return {
            "backend": self.backend,
            "tiles": int(self.auto_labels.shape[0]),
            "elapsed_s": round(self.elapsed_s, 3),
            "ssim_vs_manual": round(self.ssim_vs_manual, 4),
            "pixel_agreement": round(self.pixel_agreement, 4),
        }


@dataclass
class AutoLabelWorkflow:
    """Runs auto-labeling over a :class:`~repro.data.catalog.TileDataset`."""

    config: AutoLabelWorkflowConfig = field(default_factory=AutoLabelWorkflowConfig)

    def run(self, dataset: TileDataset, manual_labels: np.ndarray | None = None) -> AutoLabelWorkflowResult:
        """Label every tile of ``dataset`` and score the labels against manual annotation.

        ``manual_labels`` defaults to simulated manual annotation of the
        dataset's ground truth (what the paper's Earth scientists produced).
        """
        tiles = dataset.images
        start = time.perf_counter()
        labels = self._label(tiles)
        elapsed = time.perf_counter() - start

        if manual_labels is None:
            manual_labels = simulate_manual_labels(dataset.labels, seed=0)
        manual_labels = np.asarray(manual_labels)
        if manual_labels.shape != labels.shape:
            raise ValueError("manual labels must match the auto-label shape")

        auto_rgb = np.stack([class_map_to_color(labels[i]) for i in range(labels.shape[0])])
        manual_rgb = np.stack([class_map_to_color(manual_labels[i]) for i in range(manual_labels.shape[0])])
        ssim_value = mean_ssim_over_pairs(auto_rgb, manual_rgb)
        agreement = float(np.mean(labels == manual_labels))

        return AutoLabelWorkflowResult(
            auto_labels=labels,
            manual_labels=manual_labels,
            elapsed_s=elapsed,
            backend=self.config.backend,
            ssim_vs_manual=ssim_value,
            pixel_agreement=agreement,
        )

    # ------------------------------------------------------------------ #
    def _label(self, tiles: np.ndarray) -> np.ndarray:
        cfg = self.config
        if cfg.backend == "serial":
            return autolabel_batch(tiles, apply_cloud_filter=cfg.apply_cloud_filter)
        if cfg.backend == "multiprocessing":
            labels, _ = run_parallel_autolabel(
                tiles,
                AutoLabelRunConfig(
                    num_workers=cfg.num_workers,
                    chunk_size=cfg.chunk_size,
                    apply_cloud_filter=cfg.apply_cloud_filter,
                ),
            )
            return labels
        result = run_mapreduce_autolabel(
            tiles,
            executor="processes" if cfg.num_workers > 1 else "serial",
            parallelism=cfg.num_workers,
            apply_cloud_filter=cfg.apply_cloud_filter,
        )
        return result.labels
