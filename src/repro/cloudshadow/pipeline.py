"""End-to-end thin-cloud / shadow filter pipeline (paper §III-A, Figure 5).

Combines detection (which pixels are veiled, and how much of the tile is
affected) with removal (what the surface underneath looks like), and adds
batch helpers so the auto-labeling and inference workflows can filter whole
tile stacks with one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .detection import CloudShadowMasks, detect_cloud_shadow
from .removal import ThinCloudShadowRemover, VeilEstimate

__all__ = ["FilterResult", "CloudShadowFilter", "filter_tiles"]


@dataclass
class FilterResult:
    """Filtered image plus every intermediate product of the filter."""

    filtered: np.ndarray
    masks: CloudShadowMasks
    veil: VeilEstimate

    @property
    def coverage(self) -> float:
        """Detected cloud+shadow coverage of the input image."""
        return self.masks.coverage


@dataclass
class CloudShadowFilter:
    """The paper's thin-cloud and shadow filter as a reusable component.

    ``apply`` runs detection + removal on one tile / scene; ``apply_batch``
    maps it over a stack of tiles.  Construction arguments tune the
    underlying remover (see :class:`ThinCloudShadowRemover`).
    """

    remover: ThinCloudShadowRemover = field(default_factory=ThinCloudShadowRemover)
    detection_blur_ksize: int = 63

    def apply(self, rgb: np.ndarray) -> FilterResult:
        """Filter a single ``(H, W, 3)`` uint8 image."""
        img = np.asarray(rgb)
        masks = detect_cloud_shadow(img, blur_ksize=self.detection_blur_ksize)
        veil = self.remover.estimate(img)
        filtered = self.remover.remove(img, veil)
        return FilterResult(filtered=filtered, masks=masks, veil=veil)

    def filter_image(self, rgb: np.ndarray) -> np.ndarray:
        """Return only the filtered image (fast path used by the parallel workflows)."""
        return self.remover.remove(np.asarray(rgb))

    def apply_batch(self, tiles: np.ndarray) -> np.ndarray:
        """Filter a ``(N, H, W, 3)`` stack of tiles, returning the filtered stack."""
        stack = np.asarray(tiles)
        if stack.ndim != 4 or stack.shape[-1] != 3:
            raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
        return np.stack([self.filter_image(stack[i]) for i in range(stack.shape[0])])

    def coverage(self, rgb: np.ndarray) -> float:
        """Detected cloud+shadow coverage fraction of one image."""
        return detect_cloud_shadow(np.asarray(rgb), blur_ksize=self.detection_blur_ksize).coverage


def filter_tiles(tiles: np.ndarray, **kwargs) -> np.ndarray:
    """Module-level convenience: filter a tile stack with a default filter."""
    return CloudShadowFilter(**kwargs).apply_batch(tiles)
