"""Tests for repro.distributed (all-reduce, Horovod API, data parallelism, DGX model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchLoader
from repro.distributed import (
    DGXTrainingModel,
    DataParallelTrainer,
    DistributedOptimizer,
    PipeRingAllReducer,
    ShardedBatches,
    WorkerGroup,
    broadcast_parameters,
    naive_allreduce,
    paper_table3,
    ring_allreduce,
)
from repro.nn import SGD
from repro.unet import UNet, UNetConfig, UNetTrainer


class TestRingAllReduce:
    def test_matches_mean(self):
        rng = np.random.default_rng(0)
        buffers = [rng.normal(size=(33,)) for _ in range(4)]
        reduced, _ = ring_allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in reduced:
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_sum_mode(self):
        buffers = [np.ones(5), 2 * np.ones(5)]
        reduced, _ = ring_allreduce(buffers, average=False)
        np.testing.assert_allclose(reduced[0], 3.0)

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(1)
        buffers = [rng.normal(size=(4, 7)) for _ in range(5)]
        ring, _ = ring_allreduce(buffers)
        naive, _ = naive_allreduce(buffers)
        np.testing.assert_allclose(ring[2], naive[2], rtol=1e-10)

    def test_single_worker(self):
        reduced, stats = ring_allreduce([np.arange(5.0)])
        np.testing.assert_array_equal(reduced[0], np.arange(5.0))
        assert stats.communication_steps == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 7), st.integers(1, 40))
    def test_property_any_worker_count_and_size(self, workers, size):
        rng = np.random.default_rng(workers * 100 + size)
        buffers = [rng.normal(size=(size,)) for _ in range(workers)]
        reduced, stats = ring_allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in reduced:
            np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-12)
        assert stats.communication_steps == 2 * (workers - 1)

    def test_bandwidth_optimality_traffic(self):
        """Per-worker traffic approaches 2(p-1)/p of the buffer — the ring's defining property."""
        buffers = [np.ones(1000) for _ in range(8)]
        _, ring_stats = ring_allreduce(buffers)
        assert ring_stats.traffic_fraction == pytest.approx(2 * 7 / 8, rel=0.05)
        _, naive_stats = naive_allreduce(buffers)
        # The centralised scheme moves ~p times the buffer through the root.
        assert naive_stats.elements_sent_per_worker > ring_stats.elements_sent_per_worker * 3

    def test_preserves_shape(self):
        buffers = [np.ones((3, 4, 5)) for _ in range(3)]
        reduced, _ = ring_allreduce(buffers)
        assert reduced[0].shape == (3, 4, 5)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.ones(3), np.ones(4)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    def test_pipe_ring_across_processes(self):
        rng = np.random.default_rng(5)
        buffers = [rng.normal(size=(17,)) for _ in range(3)]
        results = PipeRingAllReducer(3).allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in results:
            np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_pipe_ring_validates_count(self):
        with pytest.raises(ValueError):
            PipeRingAllReducer(2).allreduce([np.ones(3)])


class TestHorovodAPI:
    def test_worker_group_init(self):
        group = WorkerGroup.init(4)
        assert group.size == 4
        assert list(group.ranks()) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            WorkerGroup.init(0)

    def test_allreduce_gradients_averages_lists(self):
        group = WorkerGroup.init(3)
        shapes = [(2, 3), (4,)]
        rng = np.random.default_rng(0)
        per_worker = [[rng.normal(size=s) for s in shapes] for _ in range(3)]
        averaged = group.allreduce_gradients(per_worker)
        for i, s in enumerate(shapes):
            expected = np.mean([per_worker[r][i] for r in range(3)], axis=0)
            np.testing.assert_allclose(averaged[i], expected, rtol=1e-5)
        assert group.last_stats is not None

    def test_allreduce_gradients_validates(self):
        group = WorkerGroup.init(2)
        with pytest.raises(ValueError):
            group.allreduce_gradients([[np.zeros(2)]])
        with pytest.raises(ValueError):
            group.allreduce_gradients([[np.zeros(2)], [np.zeros(2), np.zeros(3)]])

    def test_distributed_optimizer_applies_average(self):
        model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=0))
        group = WorkerGroup.init(2)
        opt = DistributedOptimizer(SGD(model.parameters(), lr=1.0), group)
        before = [p.value.copy() for p in model.parameters()]
        grads_a = [np.ones_like(p.value) for p in model.parameters()]
        grads_b = [3 * np.ones_like(p.value) for p in model.parameters()]
        opt.step([grads_a, grads_b])
        for b, p in zip(before, model.parameters()):
            np.testing.assert_allclose(p.value, b - 2.0, rtol=1e-5)  # mean grad = 2, lr = 1

    def test_broadcast_parameters(self):
        src = UNet(UNetConfig(depth=1, base_channels=2, seed=1))
        dst = UNet(UNetConfig(depth=1, base_channels=2, seed=9))
        broadcast_parameters(src, [dst])
        for a, b in zip(src.parameters(), dst.parameters()):
            np.testing.assert_array_equal(a.value, b.value)


class TestDataParallelTrainer:
    def test_sharding(self):
        sharder = ShardedBatches(2)
        x = np.zeros((5, 3, 8, 8), dtype=np.float32)
        y = np.zeros((5, 8, 8), dtype=np.int64)
        shards = sharder.shard(x, y)
        assert len(shards) == 2
        assert shards[0][0].shape[0] == 2  # 5 // 2
        assert sharder.shard(x[:1], y[:1]) is None

    def test_distributed_equals_serial_training(self, tiny_split):
        """Synchronous data parallelism with ring all-reduce must match single-worker
        training on the same global batches (the correctness claim behind Horovod)."""
        train, _ = tiny_split
        config = UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=7)

        serial_trainer = UNetTrainer(model=UNet(config), optimizer=None, learning_rate=1e-2)
        serial_trainer.optimizer = SGD(serial_trainer.model.parameters(), lr=1e-2)
        loader_a = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        serial_trainer.fit(loader_a, epochs=1)

        parallel = DataParallelTrainer(num_workers=2, config=config, learning_rate=1e-2)
        parallel.optimizer = DistributedOptimizer(SGD(parallel.master.parameters(), lr=1e-2), parallel.group)
        loader_b = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        parallel.fit(loader_b, epochs=1)

        for (name_a, pa), (name_b, pb) in zip(
            serial_trainer.model.named_parameters().items(), parallel.master.named_parameters().items()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(pa.value, pb.value, atol=2e-4)

    def test_replicas_stay_synchronised(self, tiny_split):
        train, _ = tiny_split
        trainer = DataParallelTrainer(
            num_workers=2,
            config=UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=3),
            keep_replicas=True,
        )
        loader = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        trainer.fit(loader, epochs=1)
        assert trainer.replicas_synchronised()

    def test_skips_too_small_batches(self):
        trainer = DataParallelTrainer(num_workers=4, config=UNetConfig(depth=1, base_channels=2, seed=0))
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        y = np.zeros((2, 16, 16), dtype=np.int64)
        assert trainer.train_step(x, y) is None

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(num_workers=0)


class TestDGXModel:
    def test_default_calibration_matches_paper(self):
        model = DGXTrainingModel()
        assert model.relative_error_vs_paper() < 0.05
        row8 = model.predict_row(8)
        assert row8["speedup"] == pytest.approx(7.21, abs=0.3)

    def test_monotone_speedup_and_throughput(self):
        model = DGXTrainingModel()
        rows = model.sweep()
        speedups = [r["speedup"] for r in rows]
        throughputs = [r["images_per_s"] for r in rows]
        assert speedups == sorted(speedups)
        assert throughputs == sorted(throughputs)

    def test_efficiency_degrades_with_gpus(self):
        """The paper observes GPU starvation from the input pipeline at high GPU counts."""
        model = DGXTrainingModel()
        eff = [model.speedup(g) / g for g in (1, 2, 4, 8)]
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] < eff[1]

    def test_paper_table3_shape(self):
        rows = paper_table3()
        assert len(rows) == 5
        assert rows[-1]["speedup"] == 7.21

    def test_allreduce_cost_grows_then_saturates(self):
        model = DGXTrainingModel()
        assert model.allreduce_time_per_step(1) == 0.0
        assert model.allreduce_time_per_step(8) > model.allreduce_time_per_step(2)

    def test_calibrated_from_measurement(self):
        model = DGXTrainingModel.calibrated_from_measurement(
            measured_epoch_time=10.0, images_per_epoch=100, model_parameters=10_000
        )
        assert model.epoch_time(1) == pytest.approx(10.0, rel=0.05)
        assert model.speedup(4) > 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DGXTrainingModel(images_per_epoch=0)
        with pytest.raises(ValueError):
            DGXTrainingModel().epoch_time(0)
        with pytest.raises(ValueError):
            DGXTrainingModel.calibrated_from_measurement(0.0, 10, 10)
