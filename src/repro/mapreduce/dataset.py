"""The sparklite distributed dataset: lazy transformations + eager actions.

This is the PySpark substitute.  ``SparkLiteContext.parallelize`` splits a
collection into partitions, ``Dataset.map`` / ``filter`` / ``map_partitions``
record *lazy* transformations (nothing executes, exactly as in Spark — which
is why the paper's "Map Time" column is ~0.3 s), and actions such as
``collect`` / ``count`` / ``reduce`` materialise the lineage on the
configured executor backend.  Per-phase wall times (load / map / reduce) are
recorded on the context so the Table II harness can report them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import reduce as functools_reduce
from typing import Callable, Iterable

from .executors import ExecutorBackend, make_executor
from .partition import Partition, default_num_partitions, partition_items

__all__ = ["JobTimings", "SparkLiteContext", "Dataset", "udf"]


@dataclass
class JobTimings:
    """Wall-clock time of the three phases the paper's Table II reports."""

    load_time: float = 0.0
    map_time: float = 0.0
    reduce_time: float = 0.0

    def as_row(self) -> dict:
        return {
            "load_time_s": round(self.load_time, 4),
            "map_time_s": round(self.map_time, 4),
            "reduce_time_s": round(self.reduce_time, 4),
        }


def udf(func: Callable) -> Callable:
    """Mark a function as a user-defined function (mirrors ``pyspark.sql.functions.udf``).

    sparklite UDFs are ordinary picklable callables; the decorator exists so
    workflow code reads like the original PySpark implementation.
    """
    func.__sparklite_udf__ = True
    return func


# --------------------------------------------------------------------------- #
# Lineage operations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _MapOp:
    func: Callable

    def apply(self, items: list) -> list:
        return [self.func(item) for item in items]


@dataclass(frozen=True)
class _FilterOp:
    predicate: Callable

    def apply(self, items: list) -> list:
        return [item for item in items if self.predicate(item)]


@dataclass(frozen=True)
class _MapPartitionsOp:
    func: Callable

    def apply(self, items: list) -> list:
        return list(self.func(items))


class _PipelineTask:
    """Picklable per-partition task that applies the whole lineage in one pass.

    Implemented as a class (not a closure) so the process-pool executor can
    ship it to worker processes.
    """

    def __init__(self, ops: tuple) -> None:
        self.ops = ops

    def __call__(self, items: list) -> list:
        for op in self.ops:
            items = op.apply(items)
        return items


def _pipeline_task(ops: tuple) -> Callable[[list], list]:
    """Build the per-partition task for a lineage."""
    return _PipelineTask(ops)


# --------------------------------------------------------------------------- #
# Context and dataset
# --------------------------------------------------------------------------- #
class SparkLiteContext:
    """Driver-side entry point: owns the executor backend and job timings."""

    def __init__(self, executor: "ExecutorBackend | str" = "serial", parallelism: int = 4) -> None:
        if isinstance(executor, str):
            executor = make_executor(executor, parallelism)
        self.executor: ExecutorBackend = executor
        self.last_timings = JobTimings()

    # ------------------------------------------------------------------ #
    def parallelize(self, items: Iterable, num_partitions: int | None = None) -> "Dataset":
        """Distribute a collection into a :class:`Dataset` (the load phase).

        The wall time of this call is recorded as ``load_time`` — it is the
        analogue of reading the S2 image archive into a PySpark dataframe.
        """
        start = time.perf_counter()
        items = list(items)
        if num_partitions is None:
            num_partitions = default_num_partitions(len(items), self.executor.parallelism)
        partitions = partition_items(items, num_partitions)
        self.last_timings = JobTimings(load_time=time.perf_counter() - start)
        return Dataset(context=self, partitions=partitions)

    def read_image_stack(self, stack, num_partitions: int | None = None) -> "Dataset":
        """Load an ``(N, ...)`` ndarray as a dataset of per-image items."""
        return self.parallelize(list(stack), num_partitions=num_partitions)


@dataclass
class Dataset:
    """An immutable, lazily transformed, partitioned collection."""

    context: SparkLiteContext
    partitions: list[Partition]
    lineage: tuple = field(default_factory=tuple)

    # ------------------------------- transformations (lazy) ------------- #
    def _derive(self, op) -> "Dataset":
        start = time.perf_counter()
        derived = Dataset(context=self.context, partitions=self.partitions, lineage=self.lineage + (op,))
        # Registering a transformation is (nearly) free; accumulate it so the
        # Table II "Map Time" column measures what PySpark's does.
        self.context.last_timings.map_time += time.perf_counter() - start
        return derived

    def map(self, func: Callable) -> "Dataset":
        """Lazily apply ``func`` to every item (the auto-labeling UDF in the paper)."""
        return self._derive(_MapOp(func))

    def filter(self, predicate: Callable) -> "Dataset":
        """Lazily keep only the items satisfying ``predicate``."""
        return self._derive(_FilterOp(predicate))

    def map_partitions(self, func: Callable) -> "Dataset":
        """Lazily apply ``func`` to each partition's item list as a whole."""
        return self._derive(_MapPartitionsOp(func))

    # ------------------------------- actions (eager) -------------------- #
    def _materialize(self) -> list[list]:
        start = time.perf_counter()
        task = _pipeline_task(self.lineage)
        per_partition = self.context.executor.run(self.partitions, task)
        self.context.last_timings.reduce_time += time.perf_counter() - start
        return per_partition

    def collect(self) -> list:
        """Run the lineage and gather all items on the driver (the Reduce phase)."""
        return [item for part in self._materialize() for item in part]

    def count(self) -> int:
        """Number of items after applying the lineage."""
        return sum(len(part) for part in self._materialize())

    def reduce(self, func: Callable) -> object:
        """Reduce all items pairwise with ``func`` (raises on an empty dataset)."""
        per_partition = self._materialize()
        partials = [functools_reduce(func, part) for part in per_partition if part]
        if not partials:
            raise ValueError("reduce() of an empty dataset")
        return functools_reduce(func, partials)

    def take(self, n: int) -> list:
        """First ``n`` items after applying the lineage."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return self.collect()[:n]

    def num_partitions(self) -> int:
        return len(self.partitions)

    def timings(self) -> JobTimings:
        """Timings of the most recent load / transformation / action phases."""
        return self.context.last_timings
