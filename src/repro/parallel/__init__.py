"""Single-machine parallelism: process-pool map, shared-memory arrays, scaling harness."""

from .autolabel_runner import AutoLabelRunConfig, autolabel_scaling_table, run_parallel_autolabel
from .pool import (
    ParallelMapResult,
    available_cpu_count,
    default_chunk_size,
    measure_scaling,
    parallel_map,
    serial_map,
)
from .shared import SharedArraySpec, SharedNDArray, share_array

__all__ = [
    "AutoLabelRunConfig",
    "autolabel_scaling_table",
    "run_parallel_autolabel",
    "ParallelMapResult",
    "available_cpu_count",
    "default_chunk_size",
    "measure_scaling",
    "parallel_map",
    "serial_map",
    "SharedArraySpec",
    "SharedNDArray",
    "share_array",
]
