"""U-Net scene-inference engine (paper §III-C.2, Figure 9).

A trained model classifies new Sentinel-2 scenes by: splitting the big scene
into 256×256 tiles (optionally with overlapping margins), optionally running
the thin-cloud/shadow filter on each tile, predicting per-pixel class
probabilities in batches — optionally fanned out through an execution
backend (:mod:`repro.backend`): ``thread`` workers share the classifier's
compiled plans directly, ``fork`` workers attach to a shared-memory copy of
the weights — and stitching the per-tile probability maps back into a
full-scene classification map.  Overlapping tiles are blend-averaged before
the final argmax, which removes the seam artifacts of hard tile boundaries.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field, fields

import numpy as np

from ..backend.base import Backend, make_backend, resolve_backend_name
from ..classes import NUM_CLASSES
from ..reliability import Deadline, fault_point
from ..cloudshadow import CloudShadowFilter
from ..data.loader import image_to_tensor
from ..imops.resize import assemble_from_tiles, split_into_tiles
from .compiled import CompiledUNet
from .model import UNet

__all__ = [
    "InferenceConfig",
    "SceneClassifier",
    "predict_batch_probabilities",
    "predict_tiles",
    "predict_tile_probabilities",
]


@dataclass(frozen=True)
class InferenceConfig:
    """Options of the scene-inference pipeline.

    ``overlap`` is the number of pixels neighbouring tiles share; overlapped
    probability maps are blend-averaged at reassembly.  ``backend`` selects
    the execution backend prediction batches dispatch through —
    ``"serial"``, ``"thread"``, ``"fork"`` or ``"auto"`` (the default, which
    honours ``REPRO_BACKEND`` and otherwise forks when ``num_workers > 1``
    and the platform supports it).  ``num_workers`` sizes the worker pool
    and — kept as a deprecated alias of the pre-backend API — still turns
    fan-out on by itself under ``backend="auto"``.  ``compile_plans`` (on by
    default — inference always runs the model in eval mode) routes forward
    passes through per-shape compiled plans executing into a preallocated
    workspace arena (:mod:`repro.nn.plan`); ``plan_cache_size`` bounds how
    many input shapes stay compiled (LRU).
    """

    tile_size: int = 256
    overlap: int = 0
    apply_cloud_filter: bool = True
    batch_size: int = 8
    num_workers: int = 1
    compile_plans: bool = True
    plan_cache_size: int = 8
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if not 0 <= self.overlap < self.tile_size:
            raise ValueError("overlap must satisfy 0 <= overlap < tile_size")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.backend != "auto":
            # Validate eagerly (and reject e.g. fork on fork-less platforms)
            # so a bad backend fails at config time, not inside a worker.
            resolve_backend_name(self.backend, self.num_workers)

    def resolved_backend(self) -> str:
        """The concrete backend name this config dispatches through."""
        return resolve_backend_name(self.backend, self.num_workers)

    def to_dict(self) -> dict:
        """JSON-safe dict of every option (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "InferenceConfig":
        """Build a config from a (JSON-loaded) dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(f"expected a dict of InferenceConfig options, got {type(data).__name__}")
        known = {f.name: f.type for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown InferenceConfig keys {unknown}; valid keys are {sorted(known)}"
            )
        kwargs = {}
        for key, value in data.items():
            if key == "backend":
                kwargs[key] = str(value)
            elif key in ("apply_cloud_filter", "compile_plans"):
                kwargs[key] = bool(value)
            else:
                kwargs[key] = int(value)
        return cls(**kwargs)


#: The store key scene-inference backends publish the model under.
_SCENE_MODEL_KEY = "scene-model"


def _validate_stack(tiles: np.ndarray) -> np.ndarray:
    stack = np.asarray(tiles)
    if stack.ndim != 4 or stack.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
    return stack


def _num_classes_of(model) -> int:
    config = getattr(model, "config", None)
    return int(getattr(config, "num_classes", NUM_CLASSES))


def _model_input_multiple(model) -> int:
    """Spatial divisor the model's forward pass requires (1 when unconstrained)."""
    config = getattr(model, "config", None)
    min_input_size = getattr(config, "min_input_size", None)
    if callable(min_input_size):
        return max(1, int(min_input_size()))
    return 1


def _pad_stack_to_multiple(stack: np.ndarray, multiple: int) -> np.ndarray:
    """Reflect-pad the bottom/right of every tile in an ``(N, H, W, C)`` stack
    so H and W are multiples of ``multiple`` (edge padding per axis when the
    tile is too small to reflect, matching :func:`repro.imops.resize.pad_to_multiple`)."""
    n, h, w = stack.shape[:3]
    pad_h, pad_w = (-h) % multiple, (-w) % multiple
    if pad_h == 0 and pad_w == 0:
        return stack
    out = stack
    if pad_h:
        spec = [(0, 0), (0, pad_h)] + [(0, 0)] * (out.ndim - 2)
        out = np.pad(out, spec, mode="reflect" if pad_h <= h - 1 else "edge")
    if pad_w:
        spec = [(0, 0), (0, 0), (0, pad_w)] + [(0, 0)] * (out.ndim - 3)
        out = np.pad(out, spec, mode="reflect" if pad_w <= w - 1 else "edge")
    return out


def predict_batch_probabilities(
    batch: np.ndarray,
    model: UNet | None = None,
    cloud_filter: CloudShadowFilter | None = None,
    engine: CompiledUNet | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Probability maps ``(N, K, H, W)`` for one ``(N, H, W, 3)`` tile batch.

    This is the single batchable prediction seam every consumer shares: the
    in-process loop, every execution backend's workers (serial and thread
    entries as well as fork workers attached to the shared-memory model
    store), and the serving micro-batcher — which is what makes the
    backends bit-identical by construction.  Tiles whose spatial size the
    model cannot ingest (not a multiple of ``config.min_input_size()``) are
    reflect-padded bottom/right before the forward pass and the probability
    maps cropped back, so small scenes and 1-pixel remainder bands classify
    cleanly.

    With ``engine`` (a :class:`~repro.unet.compiled.CompiledUNet` wrapping
    the same model) the forward pass runs through the per-shape compiled
    plan instead of the generic layer walk — identical maps, no per-call
    workspace allocations.  ``out`` routes the result into a caller-provided
    ``(N, K, H, W)`` float32 buffer (e.g. a shared-memory output arena);
    when no padding is needed the compiled plan softmaxes directly into it.
    """
    fault_point("slow_predict")  # chaos knob: every consumer funnels through here
    if engine is not None and model is None:
        model = engine.model
    if model is None:
        raise ValueError("predict_batch_probabilities requires a model or an engine")
    if cloud_filter is not None:
        batch = cloud_filter.apply_batch(batch)
    h, w = batch.shape[1:3]
    padded = _pad_stack_to_multiple(batch, _model_input_multiple(model))
    tensor = image_to_tensor(padded)
    if engine is not None:
        if out is not None and padded.shape[1] == h and padded.shape[2] == w:
            engine.predict_proba(tensor, out=out)
            return out
        probs = engine.predict_proba(tensor)
    else:
        probs = model.predict_proba(tensor)
    probs = probs.astype(np.float32, copy=False)
    result = probs[:, :, :h, :w]
    if out is not None:
        out[...] = result
        return out
    return result


#: Backwards-compatible alias (the pre-serving private name).
_predict_probs_batch = predict_batch_probabilities


def predict_tile_probabilities(
    model: UNet,
    tiles: np.ndarray,
    batch_size: int = 8,
    cloud_filter: CloudShadowFilter | None = None,
    num_workers: int = 1,
    engine: CompiledUNet | None = None,
    backend: str | Backend | None = None,
) -> np.ndarray:
    """Per-class probability maps ``(N, K, H, W)`` for an ``(N, H, W, 3)`` stack.

    Tiles are predicted in batches of ``batch_size``, dispatched through an
    execution backend: pass a running :class:`~repro.backend.Backend` with
    the model already published (the :class:`SceneClassifier` fast path), a
    backend name, or ``None``/``"auto"`` to resolve from ``num_workers``
    (kept as the deprecated pre-backend alias: ``num_workers > 1`` alone
    still fans out).  Name-selected non-serial backends are ephemeral —
    created, used and closed within the call; models the backend cannot
    publish (non-UNet stubs) fall back to the in-process loop.  An empty
    stack returns a correctly-shaped empty array instead of raising.
    """
    stack = _validate_stack(tiles)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    n, h, w = stack.shape[:3]
    if n == 0:
        return np.zeros((0, _num_classes_of(model), h, w), dtype=np.float32)

    if isinstance(backend, Backend):
        if backend.has_model(_SCENE_MODEL_KEY):
            return backend.predict_stack(_SCENE_MODEL_KEY, stack, batch_size)
        backend = None  # not published (e.g. non-UNet fallback): run in-process

    name = backend if isinstance(backend, str) or backend is None else "auto"
    resolved = resolve_backend_name(name, num_workers)
    if resolved != "serial" and n > batch_size and isinstance(model, UNet):
        with make_backend(resolved, num_workers=num_workers) as ephemeral:
            ephemeral.publish_model(
                _SCENE_MODEL_KEY, model, cloud_filter,
                compile_plans=engine is not None,
                plan_cache_size=engine.max_plans if engine is not None else 8,
            )
            return ephemeral.predict_stack(_SCENE_MODEL_KEY, stack, batch_size)

    outputs = [
        predict_batch_probabilities(stack[start : start + batch_size], model, cloud_filter, engine)
        for start in range(0, n, batch_size)
    ]
    return np.concatenate(outputs, axis=0)


def predict_tiles(
    model: UNet,
    tiles: np.ndarray,
    batch_size: int = 8,
    cloud_filter: CloudShadowFilter | None = None,
) -> np.ndarray:
    """Predict class maps for a ``(N, H, W, 3)`` uint8 tile stack.

    When ``cloud_filter`` is given each tile is filtered before prediction,
    which is the paper's recommended inference configuration.  An empty tile
    stack returns an empty ``(0, H, W)`` map instead of raising.
    """
    stack = _validate_stack(tiles)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n, h, w = stack.shape[:3]
    if n == 0:
        return np.zeros((0, h, w), dtype=np.uint8)

    outputs = []
    for start in range(0, n, batch_size):
        probs = predict_batch_probabilities(stack[start : start + batch_size], model, cloud_filter)
        outputs.append(probs.argmax(axis=1).astype(np.uint8))
    return np.concatenate(outputs, axis=0)


@dataclass
class SceneClassifier:
    """Whole-scene inference engine (tile → filter → batched predict → blend-stitch).

    With ``config.compile_plans`` (the default) the classifier owns a
    :class:`~repro.unet.compiled.CompiledUNet`: every distinct batch shape it
    predicts is compiled once into an arena-backed plan and re-run
    allocation-free afterwards.  Plans snapshot weights — call
    :meth:`invalidate_plans` if the wrapped model is trained further.
    """

    model: UNet
    config: InferenceConfig = field(default_factory=InferenceConfig)
    cloud_filter: CloudShadowFilter = field(default_factory=CloudShadowFilter)
    _engine: CompiledUNet | None = field(default=None, init=False, repr=False, compare=False)
    _backend: Backend | None = field(default=None, init=False, repr=False, compare=False)
    _backend_ready: bool = field(default=False, init=False, repr=False, compare=False)
    _finalizer: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.config.compile_plans and isinstance(self.model, UNet):
            self._engine = CompiledUNet(self.model, max_plans=self.config.plan_cache_size)

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> CompiledUNet | None:
        """The compiled-plan engine (``None`` when ``compile_plans`` is off)."""
        return self._engine

    @property
    def backend(self) -> Backend | None:
        """The classifier's persistent execution backend (lazily created).

        ``None`` when the config resolves to in-process execution (the
        ``serial`` backend, or a model the backend store cannot publish).
        """
        if not self._backend_ready:
            self._backend_ready = True
            resolved = self.config.resolved_backend()
            if resolved != "serial" and isinstance(self.model, UNet):
                backend = make_backend(resolved, num_workers=self.config.num_workers)
                backend.start()
                self._publish(backend)
                self._backend = backend
                self._finalizer = weakref.finalize(self, backend.close)
        return self._backend

    def _publish(self, backend: Backend) -> None:
        filt = self.cloud_filter if self.config.apply_cloud_filter else None
        backend.publish_model(
            _SCENE_MODEL_KEY, self.model, filt,
            engine=self._engine,
            compile_plans=self.config.compile_plans,
            plan_cache_size=self.config.plan_cache_size,
        )

    def close(self) -> None:
        """Shut the persistent backend down (safe to call repeatedly)."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._backend_ready = False

    def __enter__(self) -> "SceneClassifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def warm_plans(self, batch_sizes: tuple[int, ...] = (1,)) -> None:
        """Pre-compile plans for the configured tile shape at ``batch_sizes``.

        Uses the shape the prediction seam would actually run: the tile size
        rounded up to the model's input multiple.
        """
        if self._engine is None:
            return
        multiple = _model_input_multiple(self.model)
        t = -(-self.config.tile_size // multiple) * multiple
        for n in batch_sizes:
            self._engine.warm((int(n), self.model.config.in_channels, t, t))

    def invalidate_plans(self) -> None:
        """Drop compiled plans (call after mutating the model's weights).

        A live backend gets the new weights republished — fork workers hold
        read-only views of the *published* copy, so a republish (not just a
        cache clear) is what propagates trained weights to them.
        """
        if self._engine is not None:
            self._engine.clear()
        if self._backend is not None:
            self._publish(self._backend)

    def plan_cache_info(self) -> dict | None:
        return None if self._engine is None else self._engine.cache_info()

    # ------------------------------------------------------------------ #
    def classify_scene_proba(self, scene_rgb: np.ndarray) -> np.ndarray:
        """Per-pixel class probabilities ``(H, W, K)`` of a full ``(H, W, 3)`` scene.

        Overlapping tile regions are blend-averaged (see
        :func:`repro.imops.resize.blend_window`) before any argmax, so seams
        between tiles cross-fade instead of switching abruptly.
        """
        scene = np.asarray(scene_rgb)
        if scene.ndim != 3 or scene.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) scene, got shape {scene.shape}")
        cfg = self.config
        tiles, grid = split_into_tiles(scene, tile_size=cfg.tile_size, overlap=cfg.overlap)
        probs = self._predict_stack(tiles)
        prob_tiles = np.moveaxis(probs, 1, -1)  # (N, h, w, K)
        return np.asarray(assemble_from_tiles(prob_tiles, grid))

    def _predict_stack(self, tiles: np.ndarray) -> np.ndarray:
        """Dispatch a tile stack through the persistent backend (or in-process)."""
        cfg = self.config
        backend = self.backend
        if backend is not None:
            stack = _validate_stack(tiles)
            if stack.shape[0] > 0:
                # copy=False: the stack result is consumed (stitched or
                # argmax-reduced) before the next dispatch, so the fork
                # backend may hand back its shared output arena directly.
                return backend.predict_stack(_SCENE_MODEL_KEY, stack, cfg.batch_size, copy=False)
        filt = self.cloud_filter if cfg.apply_cloud_filter else None
        return predict_tile_probabilities(
            self.model, tiles, batch_size=cfg.batch_size, cloud_filter=filt,
            num_workers=1, engine=self._engine, backend="serial",
        )

    def classify_scene(self, scene_rgb: np.ndarray) -> np.ndarray:
        """Return the per-pixel class map of a full ``(H, W, 3)`` scene."""
        return self.classify_scene_proba(scene_rgb).argmax(axis=-1).astype(np.uint8)

    def classify_tiles(self, tiles: np.ndarray) -> np.ndarray:
        """Classify an already-tiled stack (honours ``config.backend``)."""
        return self._predict_stack(tiles).argmax(axis=1).astype(np.uint8)

    def predict_batch(self, batch: np.ndarray, deadline: Deadline | None = None) -> np.ndarray:
        """One batched prediction ``(N, H, W, 3) → (N, K, H, W)`` through the
        classifier's filter and compiled-plan engine — the seam the serving
        micro-batcher binds to.  With a non-serial config the batch is routed
        to the classifier's backend workers (same seam, bit-identical).
        ``deadline`` propagates into the backend dispatch, which drops
        expired work before computing."""
        backend = self.backend
        if backend is not None:
            return backend.predict(_SCENE_MODEL_KEY, np.asarray(batch), deadline=deadline)
        if deadline is not None:
            deadline.check("predict_batch")
        filt = self.cloud_filter if self.config.apply_cloud_filter else None
        return predict_batch_probabilities(batch, self.model, filt, engine=self._engine)
