"""Table III and Figure 12 — Horovod distributed U-Net training speedup.

Paper result: synchronous data-parallel training with Horovod on a DGX A100
scales from 280.72 s (1 GPU) to 38.91 s (8 GPUs) for 50 epochs — a 7.21×
speedup with throughput rising from 586 to 4249 images/s.  Without GPUs the
sweep is regenerated two ways:

* the *algorithmic* path — a real synchronous data-parallel trainer whose
  gradients are combined with the implemented ring all-reduce, measured at
  1 and 2 workers to demonstrate gradient-equivalence and the per-step cost;
* the *hardware* path — the calibrated DGX A100 performance model, whose
  1-GPU row matches the paper and whose scaling terms (compute / ring
  all-reduce / input pipeline) regenerate the full table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BatchLoader
from repro.distributed import (
    DataParallelTrainer,
    DGXTrainingModel,
    naive_allreduce,
    paper_table3,
    ring_allreduce,
)
from repro.unet import UNetConfig, UNetTrainer

from conftest import print_paper_vs_measured, print_rows

_CONFIG = UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=3)


@pytest.mark.benchmark(group="table3")
def test_table3_ring_allreduce_cost(benchmark):
    """Cost of one ring all-reduce over a gradient buffer (the per-step Horovod overhead)."""
    rng = np.random.default_rng(0)
    buffers = [rng.normal(size=(200_000,)) for _ in range(8)]

    reduced, stats = benchmark(ring_allreduce, buffers)
    expected = np.mean(buffers, axis=0)
    np.testing.assert_allclose(reduced[0], expected, rtol=1e-9)
    assert stats.traffic_fraction == pytest.approx(2 * 7 / 8, rel=0.05)


@pytest.mark.benchmark(group="table3")
def test_table3_single_worker_epoch(benchmark, bench_dataset):
    """Single-worker training epoch (the 1-GPU baseline row of Table III)."""
    tiles = bench_dataset.images[:24]
    labels = bench_dataset.labels[:24]
    loader = BatchLoader(tiles, labels, batch_size=8, shuffle=False)
    trainer = UNetTrainer(config=_CONFIG, learning_rate=1e-3)

    stats = benchmark.pedantic(lambda: trainer.train_epoch(loader), rounds=1, iterations=1)
    assert stats.images_per_s > 0
    print_rows(
        "Table III baseline: single-worker epoch on this machine",
        [{"epoch_time_s": round(stats.time_s, 3), "images_per_s": round(stats.images_per_s, 1)}],
    )


@pytest.mark.benchmark(group="table3")
def test_table3_data_parallel_training_step(benchmark, bench_dataset):
    """Real synchronous data-parallel step (2 workers + ring all-reduce)."""
    tiles = bench_dataset.images[:16]
    labels = bench_dataset.labels[:16]
    trainer = DataParallelTrainer(num_workers=2, config=_CONFIG, learning_rate=1e-3)
    loader = BatchLoader(tiles, labels, batch_size=8, shuffle=False, drop_last=True)
    x, y = next(iter(loader))

    loss = benchmark(trainer.train_step, x, y)
    assert loss is not None and np.isfinite(loss)


@pytest.mark.benchmark(group="table3")
def test_table3_and_fig12_dgx_sweep(benchmark, bench_dataset):
    """Regenerate the 1–8 GPU sweep of Table III / Figure 12."""
    # Calibrate the hardware model from a real single-worker epoch measured here,
    # then also report the paper-calibrated model for the side-by-side comparison.
    tiles = bench_dataset.images[:24]
    labels = bench_dataset.labels[:24]
    loader = BatchLoader(tiles, labels, batch_size=8, shuffle=False)
    trainer = UNetTrainer(config=_CONFIG, learning_rate=1e-3)
    epoch = trainer.train_epoch(loader)

    local_model = DGXTrainingModel.calibrated_from_measurement(
        measured_epoch_time=epoch.time_s,
        images_per_epoch=tiles.shape[0],
        model_parameters=trainer.model.num_parameters(),
        epochs=5,
        per_worker_batch_size=8,
    )
    paper_model = DGXTrainingModel()

    def sweep():
        return paper_model.sweep()

    paper_calibrated_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_paper_vs_measured(
        "Table III / Fig 12: distributed U-Net training (paper-calibrated model)",
        paper_table3(),
        paper_calibrated_rows,
    )
    print_rows(
        "Table III / Fig 12: sweep re-calibrated from this machine's measured epoch",
        local_model.sweep(),
    )

    # Shape assertions: near-linear speedup with a mild efficiency roll-off.
    speedups = [row["speedup"] for row in paper_calibrated_rows]
    gpus = [row["gpus"] for row in paper_calibrated_rows]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 6.5  # paper: 7.21x at 8 GPUs
    efficiency = [s / g for s, g in zip(speedups, gpus)]
    assert efficiency[-1] < efficiency[0]
    assert paper_model.relative_error_vs_paper() < 0.05


@pytest.mark.benchmark(group="table3")
def test_table3_ablation_ring_vs_naive_allreduce(benchmark):
    """Ablation: ring all-reduce vs centralised gather-broadcast traffic."""
    rng = np.random.default_rng(1)
    buffers = [rng.normal(size=(100_000,)) for _ in range(8)]

    _, ring_stats = ring_allreduce(buffers)
    _, naive_stats = benchmark(naive_allreduce, buffers)
    rows = [
        {"algorithm": "ring", "traffic_fraction": round(ring_stats.traffic_fraction, 2)},
        {"algorithm": "gather-broadcast", "traffic_fraction": round(naive_stats.traffic_fraction, 2)},
    ]
    print_rows("Ablation: all-reduce per-worker traffic (fraction of buffer size)", rows)
    assert ring_stats.traffic_fraction < naive_stats.traffic_fraction
