"""Structural Similarity Index (SSIM).

The paper validates the auto-labeler by reporting SSIM between the
auto-labeled maps and the manually labeled maps (89 % on original images,
99.64 % after cloud/shadow filtering).  This is the standard
Wang et al. (2004) SSIM with a Gaussian sliding window, implemented with
separable convolutions so whole scenes remain fast to score.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..imops.filters import gaussian_kernel1d

__all__ = ["ssim", "mean_ssim_over_pairs"]


def _window_mean(data: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    out = ndimage.correlate1d(data, kernel, axis=0, mode="reflect")
    return ndimage.correlate1d(out, kernel, axis=1, mode="reflect")


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    data_range: float | None = None,
    window_size: int = 11,
    sigma: float = 1.5,
    k1: float = 0.01,
    k2: float = 0.03,
    return_map: bool = False,
) -> "float | tuple[float, np.ndarray]":
    """Structural similarity between two images.

    Multi-channel images are scored per channel and averaged.  Returns the
    mean SSIM in ``[-1, 1]`` (1 means identical), optionally with the local
    SSIM map.
    """
    a = np.asarray(image_a, dtype=np.float64)
    b = np.asarray(image_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D images, got {a.ndim}-D")
    if data_range is None:
        if np.asarray(image_a).dtype == np.uint8 or np.asarray(image_b).dtype == np.uint8:
            data_range = 255.0
        else:
            data_range = float(max(a.max() - a.min(), b.max() - b.min(), 1e-12))

    if a.ndim == 3:
        scores, maps = [], []
        for c in range(a.shape[-1]):
            s, m = ssim(a[..., c], b[..., c], data_range, window_size, sigma, k1, k2, return_map=True)
            scores.append(s)
            maps.append(m)
        mean = float(np.mean(scores))
        if return_map:
            return mean, np.mean(np.stack(maps, axis=-1), axis=-1)
        return mean

    kernel = gaussian_kernel1d(window_size, sigma)
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_a = _window_mean(a, kernel)
    mu_b = _window_mean(b, kernel)
    mu_a_sq = mu_a * mu_a
    mu_b_sq = mu_b * mu_b
    mu_ab = mu_a * mu_b

    sigma_a_sq = _window_mean(a * a, kernel) - mu_a_sq
    sigma_b_sq = _window_mean(b * b, kernel) - mu_b_sq
    sigma_ab = _window_mean(a * b, kernel) - mu_ab

    numerator = (2 * mu_ab + c1) * (2 * sigma_ab + c2)
    denominator = (mu_a_sq + mu_b_sq + c1) * (sigma_a_sq + sigma_b_sq + c2)
    ssim_map = numerator / np.maximum(denominator, 1e-12)
    mean = float(ssim_map.mean())
    if return_map:
        return mean, ssim_map
    return mean


def mean_ssim_over_pairs(images_a: np.ndarray, images_b: np.ndarray, **kwargs) -> float:
    """Average SSIM over a batch of image pairs (axis 0 indexes the pair)."""
    a = np.asarray(images_a)
    b = np.asarray(images_b)
    if a.shape != b.shape:
        raise ValueError(f"batch shapes differ: {a.shape} vs {b.shape}")
    if a.shape[0] == 0:
        raise ValueError("empty batch")
    return float(np.mean([ssim(a[i], b[i], **kwargs) for i in range(a.shape[0])]))
