"""The in-process reference backend: no workers, no copies, no surprises."""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from ..reliability import Deadline
from .base import Backend, LocalModelEntry, ModelHandle, record_compute

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Runs every task inline in the calling thread.

    The behavioural reference the other backends are tested bit-identical
    against, and the fallback when fan-out is unavailable or pointless
    (``num_workers == 1``).
    """

    name = "serial"

    def __init__(self) -> None:
        super().__init__(num_workers=1)
        self._models: dict[object, LocalModelEntry] = {}

    def map(self, fn: Callable, items: Sequence, chunk_size: int | None = None) -> list:
        self._ensure_open()
        results = [fn(item) for item in items]
        self._count_task(len(results))
        return results

    def publish_model(self, key, model, cloud_filter=None, *, engine=None,
                      compile_plans: bool = True, plan_cache_size: int = 8,
                      warm_shapes: Sequence[tuple[int, ...]] = ()) -> ModelHandle:
        self._ensure_open()
        entry = LocalModelEntry(key, model, cloud_filter, engine, compile_plans,
                                plan_cache_size, warm_shapes)
        self._models[key] = entry
        return entry.handle

    def release_model(self, key) -> None:
        self._models.pop(key, None)

    def has_model(self, key) -> bool:
        return key in self._models

    def predict(self, key, batch: np.ndarray, deadline: Deadline | None = None) -> np.ndarray:
        self._ensure_open()
        if deadline is not None:
            deadline.check("backend predict")
        self._count_task()
        start = time.perf_counter()
        result = self._models[key].predict(batch)
        record_compute(self.name, (time.perf_counter() - start) * 1e3)
        return result

    def _close(self) -> None:
        self._models.clear()

    def _model_keys(self) -> list:
        return list(self._models)
