"""Chaos suite: injected worker crashes / hangs against the fork backend, and
overload / deadline storms against the HTTP service.

The invariants under fault: results stay **bit-identical** to the serial
backend (retried spans recompute the same slices), nothing leaks (no orphaned
worker processes, no shared-memory segments after close), and the HTTP edge
keeps answering — failures surface only as 503 (shed) or 504 (deadline), never
as a wedged socket.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.backend import ProcessBackend, SerialBackend, available_backends
from repro.backend.store import SEGMENT_PREFIX
from repro.reliability import FaultSpec, configure_faults, fault_stats, reset_faults
from repro.serving import InferenceService, ModelRegistry, ServiceConfig, make_server
from repro.unet import InferenceConfig, UNet, UNetConfig, tiny_unet_config

fork_only = pytest.mark.skipif(
    "fork" not in available_backends(), reason="fork start method unavailable"
)


def _segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith(SEGMENT_PREFIX)]


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    reset_faults()


@pytest.fixture(scope="module")
def model():
    return UNet(tiny_unet_config(seed=3))


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(11)
    return rng.integers(0, 256, size=(9, 32, 32, 3), dtype=np.uint8)


@pytest.fixture(scope="module")
def expected(model, stack):
    with SerialBackend() as backend:
        backend.publish_model("m", model)
        return backend.predict_stack("m", stack, batch_size=4)


@fork_only
class TestBackendChaos:
    def test_worker_crash_is_retried_bit_identical(self, model, stack, expected):
        # Armed *before* the fork so workers inherit the (shared) budget.
        configure_faults({"worker_crash": FaultSpec(times=1)})
        before = _segments()
        with ProcessBackend(num_workers=2, heartbeat_interval_s=0.0) as backend:
            backend.publish_model("m", model)
            probs = backend.predict_stack("m", stack, batch_size=4)
            np.testing.assert_array_equal(probs, expected)
            info = backend.occupancy()
            assert info["dispatch_retries"] >= 1
            assert fault_stats()["worker_crash"]["fired"] == 1
            pids = info["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_hung_worker_killed_and_span_retried(self, model, stack, expected):
        configure_faults({"worker_hang": FaultSpec(times=1, param=600.0)})
        before = _segments()
        with ProcessBackend(
            num_workers=2, dispatch_timeout_s=1.0, heartbeat_interval_s=0.0
        ) as backend:
            backend.publish_model("m", model)
            start = time.monotonic()
            probs = backend.predict_stack("m", stack, batch_size=4)
            # The hang was bounded by the dispatch timeout, not the 600 s sleep.
            assert time.monotonic() - start < 30.0
            np.testing.assert_array_equal(probs, expected)
            info = backend.occupancy()
            assert info["dispatch_retries"] >= 1
            pids = info["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_watchdog_respawns_idle_dead_worker(self, model, stack, expected):
        before = _segments()
        with ProcessBackend(num_workers=2, heartbeat_interval_s=0.1) as backend:
            backend.publish_model("m", model)
            victim = backend.occupancy()["worker_pids"][0]
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(
                lambda: backend.occupancy()["respawns"] >= 1
                and backend.occupancy()["alive_workers"] == 2
            )
            assert not _alive(victim)
            # Respawned worker got the store republished: predictions intact.
            probs = backend.predict_stack("m", stack, batch_size=4)
            np.testing.assert_array_equal(probs, expected)
            pids = backend.occupancy()["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_repeated_crashes_exhaust_retries_cleanly(self, model, stack):
        # Unlimited crash budget: every attempt dies, the retry policy gives
        # up, and the error is surfaced instead of hanging — with no leaks.
        configure_faults({"worker_crash": FaultSpec(times=-1)})
        before = _segments()
        with ProcessBackend(num_workers=1, heartbeat_interval_s=0.0) as backend:
            backend.publish_model("m", model)
            with pytest.raises(Exception, match="died|killed"):
                backend.predict_stack("m", stack, batch_size=4)
        reset_faults()
        assert _segments() == before


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture()
def chaos_served(tmp_path):
    """A deliberately tiny service: 1 concurrency slot, 2 queue slots, a
    50 ms request deadline — so chaos tests can saturate it instantly."""
    model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=21))
    registry = ModelRegistry(str(tmp_path))
    registry.publish("seaice", 1, model,
                     inference=InferenceConfig(tile_size=16, apply_cloud_filter=False))
    service = InferenceService(registry, ServiceConfig(
        port=0, batch_window_s=0.0, max_batch=1,
        request_timeout_s=0.05, max_queue=2, max_concurrent=1,
        retry_after_s=0.25,
    ))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1], service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        registry.close()
        thread.join(5.0)


_TILE = np.zeros((16, 16, 3), dtype=np.uint8).tolist()


class TestServiceChaos:
    def test_slow_model_maps_deadline_to_504_with_timings(self, chaos_served):
        port, _ = chaos_served
        configure_faults({"slow_predict": FaultSpec(times=-1, param=0.3)})
        status, _, body = _request(port, "POST", "/predict", {"tile": _TILE})
        assert status == 504
        assert "deadline" in body["error"] or "stage" in body
        timings = body["stage_timings"]
        assert timings["budget_ms"] == pytest.approx(50.0)
        assert timings["total_ms"] >= 0.0
        reset_faults()
        # The wedged-looking service recovers as soon as the fault clears
        # (the worker may still be draining the abandoned slow compute).
        assert _wait_until(lambda: _request(
            port, "POST", "/predict", {"tile": _TILE})[0] == 200, timeout_s=10.0)

    def test_overload_storm_sheds_503_and_recovers(self, chaos_served):
        port, service = chaos_served
        configure_faults({"slow_predict": FaultSpec(times=-1, param=0.2)})
        statuses: list[int] = []
        lock = threading.Lock()

        def client() -> None:
            # The storm can reset a connection at the accept queue; retrying
            # is the client's job — a wedged (never-answering) server would
            # still fail the test via the 599 sentinel below.
            for _ in range(3):
                try:
                    status, headers, body = _request(port, "POST", "/predict",
                                                     {"tile": _TILE})
                except OSError:
                    time.sleep(0.1)
                    continue
                with lock:
                    statuses.append(status)
                    if status == 503:
                        assert float(headers["Retry-After"]) > 0
                        assert body["retry_after_s"] > 0
                return
            with lock:
                statuses.append(599)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        # Every request was answered; failures are only shed/deadline.
        assert len(statuses) == 8
        assert set(statuses) <= {200, 503, 504}
        assert 503 in statuses

        # Shedding is visible in /healthz (degraded) and /stats.
        status, _, health = _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "degraded"
        assert any("shedding" in reason for reason in health["degraded_reasons"])
        assert health["shed"] >= 1

        status, _, stats = _request(port, "GET", "/stats")
        reliability = stats["reliability"]
        assert reliability["admission"]["shed"] + sum(
            b["shed"] for b in stats["batchers"].values()
        ) >= 1
        assert reliability["faults_enabled"] is True
        # Queues stayed bounded throughout the storm.
        for batcher in stats["batchers"].values():
            assert batcher["queue_depth"] <= batcher["max_queue"] == 2
        assert reliability["admission"]["peak_active"] <= 1

        reset_faults()
        assert _wait_until(lambda: _request(
            port, "POST", "/predict", {"tile": _TILE})[0] == 200, timeout_s=10.0)

    def test_healthz_recovers_to_ok_after_quiet_period(self, chaos_served):
        port, service = chaos_served
        # No chaos at all: a fresh service is healthy and undegraded.
        status, _, health = _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["degraded_reasons"] == []
        assert health["shed"] == 0 and health["expired"] == 0
