"""Tests for the telemetry layer: metrics registry, tracing, profiling hooks.

The load-bearing properties: concurrent increments (threads in-process,
fork workers over the drain/merge pipe protocol) sum *exactly*; histogram
bucket boundaries follow Prometheus ``le`` semantics stably; the rendered
exposition text parses; trace ids are unique, honour ``X-Request-Id`` and
survive the fork-pipe round trip; and a traced ``/predict`` decomposes into
stage spans that sum to its ``elapsed_ms``.
"""

from __future__ import annotations

import http.client
import json
import math
import re
import threading

import numpy as np
import pytest

from repro.backend import ProcessBackend, available_backends
from repro.obs import (
    Counter,
    Histogram,
    LayerTimer,
    MetricsRegistry,
    collector_context,
    latency_percentiles,
    new_trace_id,
    profile_inference,
    should_sample,
)
from repro.obs import trace as trace_mod
from repro.serving import InferenceService, ModelRegistry, ServiceConfig, make_server
from repro.unet import InferenceConfig, UNet, UNetConfig, tiny_unet_config

needs_fork = pytest.mark.skipif(
    "fork" not in available_backends(), reason="fork start method unavailable"
)

# A line of Prometheus text exposition format 0.0.4: comment/help/type lines
# or ``name{labels} value``.
_VALUE = r"(-?[0-9][0-9eE+.\-]*|[+-]Inf|NaN)"
_LABEL_VALUE = r"\"(?:[^\"\\]|\\.)*\""
_LABELS = (rf"\{{[a-zA-Z_][a-zA-Z0-9_]*={_LABEL_VALUE}"
           rf"(,[a-zA-Z_][a-zA-Z0-9_]*={_LABEL_VALUE})*\}}")
_EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*"
    rf"|[a-zA-Z_:][a-zA-Z0-9_:]*({_LABELS})? {_VALUE})$"
)


class TestCounterExactness:
    def test_parallel_thread_increments_sum_exactly(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("hits_total", "x", ("who",))
        threads_n, per_thread = 8, 500

        def worker(i: int) -> None:
            for _ in range(per_thread):
                counter.inc(who=f"t{i % 2}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = counter.value(who="t0") + counter.value(who="t1")
        assert total == threads_n * per_thread

    def test_bound_handle_matches_kwargs_path(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("c_total", "x", ("k",))
        bound = counter.labels(k="a")
        bound.inc()
        bound.inc(2.0)
        counter.inc(3.0, k="a")
        assert counter.value(k="a") == 6.0

    @needs_fork
    def test_fork_worker_increments_merge_exactly(self):
        """Children inc a private registry; drained deltas merged over real pipes."""
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        workers, per_worker = 4, 250

        def child(conn) -> None:
            registry = MetricsRegistry(enabled=True)
            counter = registry.counter("work_total", "x", ("pid_mod",))
            hist = registry.histogram("work_ms", "x", (), buckets=(1.0, 10.0, 100.0))
            for i in range(per_worker):
                counter.inc(pid_mod=str(i % 3))
                hist.observe(float(i % 20))
            conn.send(registry.drain())
            conn.close()

        parent = MetricsRegistry(enabled=True)
        pipes, procs = [], []
        for _ in range(workers):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=child, args=(send,))
            proc.start()
            send.close()
            pipes.append(recv)
            procs.append(proc)
        for recv in pipes:
            parent.merge(recv.recv())
        for proc in procs:
            proc.join(30.0)
            assert proc.exitcode == 0

        counter = parent.get("work_total")
        merged = sum(counter.value(pid_mod=str(m)) for m in range(3))
        assert merged == workers * per_worker
        snap = parent.get("work_ms").snapshot()
        assert snap["count"] == workers * per_worker
        assert sum(snap["counts"]) == workers * per_worker


class TestHistogramBuckets:
    def test_boundary_values_land_in_their_le_bucket(self):
        hist = Histogram("h_ms", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 1.0001, 5.0, 9.99, 10.0, 10.0001):
            hist.observe(value)
        snap = hist.snapshot()
        # le semantics: a value equal to a bound belongs to that bound's bucket.
        assert snap["counts"] == [2, 2, 2, 1]
        assert snap["count"] == 7
        assert snap["sum"] == pytest.approx(0.5 + 1.0 + 1.0001 + 5.0 + 9.99 + 10.0 + 10.0001)

    def test_bucket_bounds_are_stable_and_strictly_increasing(self):
        from repro.obs import DEFAULT_LATENCY_BUCKETS_MS

        assert all(b2 > b1 for b1, b2 in
                   zip(DEFAULT_LATENCY_BUCKETS_MS, DEFAULT_LATENCY_BUCKETS_MS[1:]))
        hist = Histogram("h_default")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS_MS

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", buckets=(5.0, 1.0))

    def test_percentile_interpolates_and_handles_overflow(self):
        hist = Histogram("p_ms", buckets=(10.0, 20.0))
        for _ in range(50):
            hist.observe(5.0)
        for _ in range(50):
            hist.observe(15.0)
        assert 0.0 < hist.percentile(0.25) <= 10.0
        assert 10.0 < hist.percentile(0.75) <= 20.0
        hist.observe(1e6)  # overflow bucket reports the largest finite bound
        assert hist.percentile(1.0) == 20.0
        assert Histogram("empty_ms").percentile(0.5) is None


class TestExposition:
    def test_render_parses_line_by_line(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("a_total", "things counted", ("k",)).inc(k='tricky"label\\n')
        registry.gauge("b_gauge", "a level").set(2.5)
        registry.histogram("c_ms", "a latency", ("op",), buckets=(1.0, 10.0)).observe(3.0, op="x")
        text = registry.render_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert _EXPOSITION_LINE.match(line), f"unparseable exposition line: {line!r}"
        assert '# TYPE c_ms histogram' in text
        assert 'c_ms_bucket{op="x",le="+Inf"} 1' in text
        assert "c_ms_count" in text and "c_ms_sum" in text

    def test_histogram_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("d_ms", "x", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'd_ms_bucket{le="1"} 1' in text
        assert 'd_ms_bucket{le="10"} 2' in text
        assert 'd_ms_bucket{le="+Inf"} 3' in text

    def test_disabled_registry_drops_updates(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("e_total", "x")
        counter.inc()
        assert counter.value() == 0.0
        registry.enabled = True
        counter.inc()
        assert counter.value() == 1.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("f_total", "x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("f_total", "x")
        assert isinstance(registry.counter("f_total"), Counter)


class TestTracing:
    def test_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(200)}
        assert len(ids) == 200

    def test_sampling_modes(self, monkeypatch):
        trace_mod.configure_tracing("off")
        assert not should_sample(new_trace_id())
        trace_mod.configure_tracing("all")
        assert should_sample(new_trace_id())
        trace_mod.configure_tracing("sampled", sample_rate=1.0)
        assert should_sample(new_trace_id())
        trace_mod.configure_tracing("sampled", sample_rate=0.0)
        assert not should_sample(new_trace_id())
        # Deterministic: the same id always decides the same way.
        trace_mod.configure_tracing("sampled", sample_rate=0.5)
        tid = new_trace_id()
        assert all(should_sample(tid) == should_sample(tid) for _ in range(5))
        trace_mod.configure_tracing("off")

    def test_collector_context_records_into_top_collector(self):
        outer: dict = {}
        with collector_context(outer, "tid-1"):
            assert trace_mod.current_trace_id() == "tid-1"
            trace_mod.record("compute_ms", 1.5)
            trace_mod.record("compute_ms", 0.5)
        assert outer == {"compute_ms": 2.0}
        assert trace_mod.current_trace_id() is None
        trace_mod.record("compute_ms", 9.0)  # no active collector: a no-op

    @needs_fork
    def test_trace_id_round_trips_through_fork_pipe(self):
        model = UNet(tiny_unet_config(seed=3))
        stack = np.random.default_rng(5).integers(0, 256, size=(2, 32, 32, 3), dtype=np.uint8)
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            collector: dict = {}
            tid = new_trace_id()
            with collector_context(collector, tid):
                backend.predict("m", stack)
            meta = backend._workers[0].last_meta
            assert meta is not None and meta["trace_id"] == tid
            assert collector["compute_ms"] > 0.0
            assert isinstance(meta["pid"], int) and meta["pid"] > 0


class TestProfilingHooks:
    def test_layer_timer_restores_originals(self):
        model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=1))
        x = np.random.default_rng(0).standard_normal((1, 3, 32, 32)).astype(np.float32)
        with LayerTimer([("bottleneck", model.bottleneck)]) as timer:
            model.forward(x)
        assert timer.stats["bottleneck"]["calls"] == 1
        assert timer.stats["bottleneck"]["forward_ms"] > 0.0
        # No lingering instance-level shadow: forward resolves to the class method.
        assert "forward" not in vars(model.bottleneck)

    def test_compiled_plan_per_step_timings(self):
        model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=1))
        report = profile_inference(model, batch_shape=(1, 32, 32), iterations=3, warmup=1)
        assert report["iterations"] == 3
        assert set(report["latency"]) == {"p50_ms", "p95_ms", "p99_ms"}
        assert report["steps"], "profiled plan reported no steps"
        for step in report["steps"]:
            assert step["calls"] == 3
            assert step["total_ms"] >= 0.0

    def test_trainer_epoch_profile(self):
        from repro.obs import profile_training

        report = profile_training(epochs=1, batches=2, batch_size=2, tile=16)
        epoch = report["per_epoch"][0]
        phases = epoch["phases_ms"]
        assert set(phases) == {"forward_ms", "loss_ms", "backward_ms", "optimizer_ms"}
        assert all(v >= 0.0 for v in phases.values())
        assert "bottleneck" in epoch["layers"]
        assert epoch["layers"]["bottleneck"]["calls"] == 2

    def test_latency_percentiles_empty_and_ordered(self):
        assert latency_percentiles([]) == {"p50_ms": None, "p95_ms": None, "p99_ms": None}
        out = latency_percentiles(list(range(1, 101)))
        assert out["p50_ms"] <= out["p95_ms"] <= out["p99_ms"]


@pytest.fixture(scope="module")
def traced_service(tmp_path_factory):
    """A live service with tracing forced on, writing a JSONL trace log."""
    root = tmp_path_factory.mktemp("obs-registry")
    log_path = tmp_path_factory.mktemp("obs-trace") / "trace.jsonl"
    model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=17))
    registry = ModelRegistry(str(root))
    registry.publish("seaice", 1, model,
                     inference=InferenceConfig(tile_size=32, apply_cloud_filter=False))
    service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.002))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    trace_mod.configure_tracing("all", log_path=str(log_path))
    try:
        yield server.server_address[1], service, log_path
    finally:
        trace_mod.configure_tracing()  # back to environment-derived defaults
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


def _request(port, method, path, body=None, headers=()):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        all_headers = {"Content-Type": "application/json", **dict(headers)}
        conn.request(method, path, body=None if body is None else json.dumps(body),
                     headers=all_headers)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


class TestServiceTelemetry:
    def test_predict_spans_sum_to_elapsed_and_trace_logged(self, traced_service, rng):
        port, _, log_path = traced_service
        before = log_path.read_text().count("\n") if log_path.exists() else 0
        tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        status, raw, headers = _request(
            port, "POST", "/predict", {"model": "seaice", "tile": tile.tolist()},
            headers={"X-Request-Id": "req-fixed-id-1"})
        assert status == 200
        payload = json.loads(raw)
        assert headers["X-Request-Id"] == "req-fixed-id-1"
        assert payload["trace_id"] == "req-fixed-id-1"
        spans = payload["stage_timings"]
        assert set(spans) == {"resolve_ms", "queue_wait_ms", "batch_assembly_ms",
                              "dispatch_ms", "compute_ms", "stitch_ms"}
        assert sum(spans.values()) == pytest.approx(payload["elapsed_ms"], abs=0.05)
        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        mine = [r for r in records[before:] if r["trace_id"] == "req-fixed-id-1"]
        assert len(mine) == 1
        assert mine[0]["spans"].keys() == spans.keys()

    def test_generated_trace_id_echoed_everywhere(self, traced_service, rng):
        port, _, _ = traced_service
        tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        status, raw, headers = _request(port, "POST", "/predict", {"tile": tile.tolist()})
        assert status == 200
        payload = json.loads(raw)
        assert payload["trace_id"] == headers["X-Request-Id"]
        assert len(payload["trace_id"]) == 32

    def test_error_body_carries_trace_id(self, traced_service):
        port, _, _ = traced_service
        status, raw, headers = _request(port, "POST", "/predict", {"nope": 1},
                                        headers={"X-Request-Id": "bad-req-1"})
        assert status == 400
        payload = json.loads(raw)
        assert payload["trace_id"] == "bad-req-1"
        assert headers["X-Request-Id"] == "bad-req-1"

    def test_metrics_endpoint_parses_and_has_core_series(self, traced_service, rng):
        port, _, _ = traced_service
        tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        _request(port, "POST", "/predict", {"tile": tile.tolist()})
        status, raw, headers = _request(port, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = raw.decode("utf-8")
        for line in text.rstrip("\n").split("\n"):
            assert _EXPOSITION_LINE.match(line), f"unparseable exposition line: {line!r}"
        for series in ("repro_requests_total", "repro_request_latency_ms_bucket",
                       "repro_request_stage_ms_bucket", "repro_batcher_flush_size_bucket",
                       "repro_backend_compute_ms_bucket", "repro_admission_total"):
            assert series in text, f"missing core series {series}"

    def test_stats_payload_has_plan_caches_and_metrics(self, traced_service, rng):
        port, service, _ = traced_service
        tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        _request(port, "POST", "/predict", {"tile": tile.tolist()})
        status, raw, _ = _request(port, "GET", "/stats")
        assert status == 200
        payload = json.loads(raw)
        caches = payload["plan_caches"]
        assert "seaice/1" in caches
        info = caches["seaice/1"]
        assert {"hits", "misses", "evictions", "plans"} <= set(info)
        assert info["misses"] >= 1
        assert "repro_requests_total" in payload["metrics"]
        batcher = payload["batchers"]["seaice/1"]
        assert batcher["flush_size_histogram"]["count"] >= 1

    @needs_fork
    def test_fork_backend_spans_include_worker_compute(self, tmp_path, rng):
        root = tmp_path / "registry"
        model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=17))
        fork_cfg = InferenceConfig(tile_size=32, apply_cloud_filter=False,
                                   backend="fork", num_workers=2)
        registry = ModelRegistry(str(root), inference=fork_cfg)
        registry.publish("seaice", 1, model, inference=fork_cfg)
        service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.002))
        try:
            tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
            payload = service.predict_payload({"model": "seaice", "tile": tile.tolist()})
            spans = payload["stage_timings"]
            assert spans["compute_ms"] > 0.0, "fork worker compute time did not propagate"
            assert sum(spans.values()) == pytest.approx(payload["elapsed_ms"], abs=0.05)
        finally:
            service.close()


class TestValueFormatting:
    def test_inf_bound_renders_as_plus_inf(self):
        from repro.obs.metrics import _format_value

        assert _format_value(math.inf) == "+Inf"
        assert _format_value(3.0) == "3"
        assert _format_value(2.5) == "2.5"
