"""Synchronous data-parallel U-Net training (the Horovod workflow, runnable on CPU).

Every worker ("GPU" in the paper) holds a full model replica and a shard of
each global batch; after the local backward pass the gradients are averaged
with ring all-reduce and the identical update is applied everywhere, so the
replicas stay bit-for-bit synchronised — exactly the semantics of the
paper's Horovod training, minus the physical GPUs.

Because all replicas follow identical trajectories, the trainer keeps one
*master* replica and per-worker gradient buffers: each worker still computes
its own forward/backward on its own shard (the real data-parallel
computation), and the master applies the averaged update.  A strict mode
that maintains independent per-worker replicas and asserts they remain
synchronised is used by the tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.loader import BatchLoader
from ..nn import Adam, CategoricalCrossEntropy, load_checkpoint, save_checkpoint
from ..unet.model import UNet, UNetConfig
from ..unet.trainer import EpochStats, TrainingHistory
from .horovod import DistributedOptimizer, WorkerGroup, broadcast_parameters

__all__ = ["ShardedBatches", "DataParallelTrainer"]


@dataclass
class ShardedBatches:
    """Splits a global batch into equal per-worker shards (drops the remainder)."""

    num_workers: int

    def shard(self, x: np.ndarray, y: np.ndarray) -> "list[tuple[np.ndarray, np.ndarray]] | None":
        """Return per-worker (x, y) shards, or ``None`` when the batch is too small."""
        n = x.shape[0]
        per_worker = n // self.num_workers
        if per_worker == 0:
            return None
        shards = []
        for rank in range(self.num_workers):
            sl = slice(rank * per_worker, (rank + 1) * per_worker)
            shards.append((x[sl], y[sl]))
        return shards


@dataclass
class DataParallelTrainer:
    """Synchronous data-parallel trainer with a Horovod-style optimiser wrapper.

    Parameters
    ----------
    num_workers:
        Number of data-parallel workers (the paper sweeps 1, 2, 4, 6, 8 GPUs).
    config:
        U-Net configuration of the replicas.
    learning_rate:
        Adam learning rate.
    keep_replicas:
        Maintain one independent model replica per worker and verify they stay
        synchronised after every step (slower; used by correctness tests).
        When off, worker gradients are computed against the master weights,
        which is mathematically identical because synchronous SGD keeps all
        replicas equal at every step.
    """

    num_workers: int = 2
    config: UNetConfig = field(default_factory=UNetConfig)
    learning_rate: float = 1e-3
    keep_replicas: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.group = WorkerGroup.init(self.num_workers)
        self.master = UNet(self.config)
        self.loss_fn = CategoricalCrossEntropy()
        self.optimizer = DistributedOptimizer(Adam(self.master.parameters(), lr=self.learning_rate), self.group)
        self.history = TrainingHistory()
        self.replicas: list[UNet] = []
        if self.keep_replicas:
            self.replicas = [UNet(self.config) for _ in range(self.num_workers)]
            broadcast_parameters(self.master, self.replicas)
        self._sharder = ShardedBatches(self.num_workers)

    # ------------------------------------------------------------------ #
    def _worker_gradients(self, rank: int, x: np.ndarray, y: np.ndarray) -> tuple[list[np.ndarray], float]:
        """Forward/backward of one worker's shard; returns (gradients, loss)."""
        model = self.replicas[rank] if self.keep_replicas else self.master
        loss_fn = CategoricalCrossEntropy()
        model.train()
        model.zero_grad()
        logits = model.forward(x)
        loss = loss_fn.forward(logits, y)
        model.backward(loss_fn.backward())
        grads = [p.grad.copy() for p in model.parameters()]
        return grads, loss

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float | None:
        """One synchronous data-parallel step over a global batch.

        Returns the mean worker loss, or ``None`` if the batch was smaller
        than the worker count and had to be skipped.
        """
        shards = self._sharder.shard(x, y)
        if shards is None:
            return None
        per_worker_grads = []
        losses = []
        for rank, (xs, ys) in enumerate(shards):
            grads, loss = self._worker_gradients(rank, xs, ys)
            per_worker_grads.append(grads)
            losses.append(loss)

        self.optimizer.step(per_worker_grads)
        if self.keep_replicas:
            broadcast_parameters(self.master, self.replicas)
        return float(np.mean(losses))

    def train_epoch(self, loader: BatchLoader, epoch: int = 0) -> EpochStats:
        start = time.perf_counter()
        losses = []
        images = 0
        for x, y in loader:
            loss = self.train_step(x, y)
            if loss is not None:
                losses.append(loss)
                images += x.shape[0]
        elapsed = time.perf_counter() - start
        stats = EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            time_s=elapsed,
            images_per_s=images / elapsed if elapsed > 0 else 0.0,
        )
        self.history.append(stats)
        return stats

    def fit(self, loader: BatchLoader, epochs: int = 1, verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` passes; the loader's batch size is the *global* batch."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        for epoch in range(epochs):
            stats = self.train_epoch(loader, epoch=epoch)
            if verbose:  # pragma: no cover - console output
                print(f"[{self.num_workers} workers] epoch {epoch + 1}: loss={stats.loss:.4f} "
                      f"time={stats.time_s:.2f}s")
        return self.history

    # ------------------------------------------------------------------ #
    def resize_workers(self, num_workers: int) -> None:
        """Elastically shrink or grow the worker group between steps.

        Synchronous SGD keeps every replica equal, so changing the worker
        count only re-shards future batches — the master weights carry over
        unchanged (replicas are re-broadcast in strict mode).
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.group.resize(num_workers)
        self._sharder = ShardedBatches(num_workers)
        if self.keep_replicas:
            self.replicas = [UNet(self.config) for _ in range(num_workers)]
            broadcast_parameters(self.master, self.replicas)

    # ------------------------------------------------------------------ #
    def save_checkpoint(self, path, metadata: dict | None = None,
                        extra_state: dict | None = None) -> str:
        """Checkpoint the master replica + optimiser (all replicas are equal)."""
        return save_checkpoint(self.master, self.optimizer.optimizer, path,
                               metadata=metadata, extra_state=extra_state)

    def load_checkpoint(self, path) -> dict:
        """Restore a checkpoint into the master (and re-broadcast replicas)."""
        extra = load_checkpoint(self.master, self.optimizer.optimizer, path)
        if self.keep_replicas:
            broadcast_parameters(self.master, self.replicas)
        return extra

    # ------------------------------------------------------------------ #
    def replicas_synchronised(self, atol: float = 1e-6) -> bool:
        """Check that every replica's weights equal the master's (strict mode only)."""
        if not self.keep_replicas:
            return True
        master_state = self.master.state_dict()
        for replica in self.replicas:
            state = replica.state_dict()
            for key, value in master_state.items():
                if not np.allclose(state[key], value, atol=atol):
                    return False
        return True
