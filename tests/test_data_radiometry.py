"""Tests for repro.data.radiometry (class prototypes and rendering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classes import HSV_RANGES, SeaIceClass
from repro.data import (
    CLASS_RGB_PROTOTYPES,
    CLASS_TEXTURE_AMPLITUDE,
    mix_contaminant,
    prototype_array,
    render_class_map,
)
from repro.imops import rgb_to_hsv


class TestPrototypes:
    def test_every_class_has_prototype_and_texture(self):
        assert set(CLASS_RGB_PROTOTYPES) == set(SeaIceClass)
        assert set(CLASS_TEXTURE_AMPLITUDE) == set(SeaIceClass)

    def test_prototype_values_fall_in_their_own_hsv_band(self):
        """The synthetic radiometry must be consistent with the paper's HSV thresholds."""
        for cls, rgb in CLASS_RGB_PROTOTYPES.items():
            pixel = np.array(rgb, dtype=np.uint8).reshape(1, 1, 3)
            hsv = rgb_to_hsv(pixel)
            assert HSV_RANGES[cls].contains(hsv)[0, 0], f"{cls} prototype outside its HSV range"

    def test_texture_keeps_classes_inside_their_bands(self):
        """Prototype ± texture amplitude must not cross the class V thresholds."""
        for cls, rgb in CLASS_RGB_PROTOTYPES.items():
            amp = CLASS_TEXTURE_AMPLITUDE[cls] / 2 + 3 * 2.0  # half peak-to-peak + 3 sigma noise
            vmax = max(rgb) + amp
            vmin = max(rgb) - amp
            lo, hi = HSV_RANGES[cls].lower[2], HSV_RANGES[cls].upper[2]
            assert vmin >= lo - 0.5, f"{cls} can fall below its V band"
            assert vmax <= hi + 0.5 or hi == 255, f"{cls} can exceed its V band"

    def test_prototype_array_shape(self):
        arr = prototype_array()
        assert arr.shape == (3, 3)
        assert arr[int(SeaIceClass.THICK_ICE)].mean() > arr[int(SeaIceClass.OPEN_WATER)].mean()


class TestRenderClassMap:
    def test_output_shape_and_dtype(self):
        cmap = np.zeros((16, 16), dtype=np.uint8)
        rgb = render_class_map(cmap, rng=np.random.default_rng(0))
        assert rgb.shape == (16, 16, 3)
        assert rgb.dtype == np.uint8

    def test_classes_render_with_correct_brightness_ordering(self):
        cmap = np.array([[0, 1, 2]], dtype=np.uint8).repeat(8, axis=0)
        cmap = np.repeat(cmap, 8, axis=1)
        rgb = render_class_map(cmap, rng=np.random.default_rng(0))
        thick = rgb[:, :8].mean()
        thin = rgb[:, 8:16].mean()
        water = rgb[:, 16:].mean()
        assert thick > thin > water

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            render_class_map(np.array([[9]], dtype=np.uint8))

    def test_rejects_texture_shape_mismatch(self):
        with pytest.raises(ValueError):
            render_class_map(np.zeros((4, 4), dtype=np.uint8), texture=np.zeros((8, 8)))

    def test_deterministic_with_seeded_rng(self):
        cmap = np.random.default_rng(0).integers(0, 3, size=(12, 12)).astype(np.uint8)
        a = render_class_map(cmap, rng=np.random.default_rng(3))
        b = render_class_map(cmap, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestMixContaminant:
    def test_zero_alpha_is_identity(self, rgb_image):
        out = mix_contaminant(rgb_image, np.zeros(rgb_image.shape[:2]), (255, 255, 255))
        np.testing.assert_array_equal(out, rgb_image)

    def test_full_alpha_is_contaminant(self, rgb_image):
        out = mix_contaminant(rgb_image, np.ones(rgb_image.shape[:2]), (10, 20, 30))
        assert np.all(out.reshape(-1, 3) == np.array([10, 20, 30]))

    def test_intermediate_alpha_brightens_toward_white(self):
        dark = np.full((8, 8, 3), 20, dtype=np.uint8)
        out = mix_contaminant(dark, np.full((8, 8), 0.5), (255, 255, 255))
        assert np.all(out > 100) and np.all(out < 180)

    def test_alpha_out_of_range_raises(self, rgb_image):
        with pytest.raises(ValueError):
            mix_contaminant(rgb_image, np.full(rgb_image.shape[:2], 1.5), (255, 255, 255))

    def test_alpha_shape_mismatch_raises(self, rgb_image):
        with pytest.raises(ValueError):
            mix_contaminant(rgb_image, np.zeros((3, 3)), (255, 255, 255))
