"""Command-line interface for the sea-ice classification workflow.

Sub-commands (``repro-seaice <command> --help`` for options):

* ``autolabel``  — generate a synthetic archive and auto-label it (serial,
  multiprocessing or map-reduce backend), reporting timing and label quality.
* ``scaling``    — print the Table I / Table II / Table III scaling tables.
* ``train``      — run the U-Net-Man vs U-Net-Auto accuracy experiment
  (Tables IV/V) at a configurable scale.
* ``prep``       — time the scene-preparation pipeline (the paper's 349 s figure).
* ``classify``   — run the tiled scene-inference engine on a synthetic scene
  (overlap-blended stitching, batched and optionally multi-process) and
  report throughput plus accuracy against the synthetic ground truth.
* ``serve``      — start the long-lived model-serving subsystem: a model
  registry of ``.npz`` checkpoints behind JSON endpoints (``/healthz``,
  ``/models``, ``/predict``) with micro-batched, plan-compiled inference.
* ``bench``      — run any ``benchmarks/`` module locally (optionally at CI
  smoke scale) and print its machine-readable ``BENCH_*.json`` result.
* ``profile``    — run the opt-in profiling hooks (per-step compiled-plan
  timings, per-phase/per-layer training timings) and print the JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings


def _cmd_autolabel(args: argparse.Namespace) -> int:
    from .data import build_dataset
    from .workflow import AutoLabelWorkflow, AutoLabelWorkflowConfig

    dataset = build_dataset(
        num_scenes=args.scenes, scene_size=args.scene_size, tile_size=args.tile_size, base_seed=args.seed
    )
    workflow = AutoLabelWorkflow(
        AutoLabelWorkflowConfig(backend=args.backend, num_workers=args.workers, apply_cloud_filter=not args.no_filter)
    )
    result = workflow.run(dataset)
    print(json.dumps(result.summary(), indent=2))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .data import build_dataset
    from .distributed import DGXTrainingModel, paper_table3
    from .mapreduce import GCDClusterModel, paper_table2
    from .parallel import autolabel_scaling_table

    if args.table in ("1", "all"):
        dataset = build_dataset(num_scenes=args.scenes, scene_size=args.scene_size, tile_size=args.tile_size)
        table = autolabel_scaling_table(dataset.images, worker_counts=tuple(args.workers))
        print("== Table I: multiprocessing auto-labeling ==")
        for row in table.rows():
            print(row)
    if args.table in ("2", "all"):
        print("== Table II: map-reduce auto-labeling (simulated Dataproc cluster) ==")
        for row in GCDClusterModel().sweep():
            print(row)
        print("-- paper values --")
        for row in paper_table2():
            print(row)
    if args.table in ("3", "all"):
        print("== Table III: Horovod distributed U-Net training (simulated DGX A100) ==")
        for row in DGXTrainingModel().sweep():
            print(row)
        print("-- paper values --")
        for row in paper_table3():
            print(row)
    return 0


def _cmd_train_elastic(args: argparse.Namespace) -> int:
    """Elastic multi-process training (``train --workers N [--resume]``).

    Trains on auto-labelled synthetic tiles with real forked workers,
    printing a machine-readable summary (ring rebuilds, respawns, resumes,
    per-epoch losses and a SHA-256 weights digest) that the CI
    dist-chaos-smoke arm asserts recovery and resume parity on.
    """
    import time

    from .data import BatchLoader, build_dataset
    from .distributed import ElasticTrainer
    from .labeling.autolabel import autolabel_batch
    from .reliability import fault_stats, faults_enabled
    from .unet import UNetConfig

    dataset = build_dataset(
        num_scenes=args.scenes, scene_size=args.scene_size,
        tile_size=args.tile_size, base_seed=args.seed,
    )
    labels = autolabel_batch(dataset.images, apply_cloud_filter=False)
    loader = BatchLoader(dataset.images, labels, batch_size=args.batch_size,
                         shuffle=True, augment=True, seed=args.seed)
    config = UNetConfig(depth=2, base_channels=8, dropout=0.2, seed=args.seed)
    start = time.perf_counter()
    with ElasticTrainer(
        num_workers=args.workers,
        config=config,
        micro_shards=args.micro_shards,
        seed=args.seed,
        step_timeout_s=args.step_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    ) as trainer:
        history = trainer.fit(loader, epochs=args.epochs, resume=args.resume)
        summary = trainer.stats()
    summary.update({
        "elapsed_s": round(time.perf_counter() - start, 3),
        "epochs": len(history.epochs),
        # Full-precision losses on purpose: the resume-parity check compares
        # them bit-for-bit across runs.
        "losses": history.losses,
        "tiles": int(dataset.images.shape[0]),
        "batch_size": args.batch_size,
        "resumed": bool(args.resume),
    })
    if faults_enabled():
        summary["faults"] = fault_stats()
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .workflow import AccuracyExperimentConfig, run_accuracy_experiment

    if args.workers > 0:
        return _cmd_train_elastic(args)

    config = AccuracyExperimentConfig(
        num_scenes=args.scenes,
        scene_size=args.scene_size,
        tile_size=args.tile_size,
        epochs=args.epochs,
        seed=args.seed,
    )
    result = run_accuracy_experiment(config)
    print("== Table IV: classification accuracy ==")
    for row in result.table4_rows():
        print(row)
    print("== Table V: accuracy vs cloud/shadow coverage ==")
    for row in result.table5_rows():
        print(row)
    print(f"auto-label SSIM vs manual: {result.autolabel_ssim:.4f}")
    return 0


def _cmd_prep(args: argparse.Namespace) -> int:
    from .workflow import run_preparation_pipeline

    timing = run_preparation_pipeline(
        num_scenes=args.scenes,
        scene_size=args.scene_size,
        tile_size=args.tile_size,
        seed=args.seed,
        overlap=args.overlap,
    )
    print(json.dumps(timing.summary(), indent=2))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    import time

    from .data import BatchLoader, SceneSpec, synthesize_scene
    from .imops.resize import split_into_tiles
    from .labeling.autolabel import autolabel_batch
    from .metrics import accuracy_score
    from .unet import InferenceConfig, SceneClassifier, UNetConfig, UNetTrainer

    scene = synthesize_scene(
        SceneSpec(height=args.scene_size, width=args.scene_size, cloud_coverage=args.clouds, seed=args.seed)
    )
    trainer = UNetTrainer(
        config=UNetConfig(depth=args.depth, base_channels=args.base_channels, dropout=0.0, seed=args.seed)
    )
    if args.epochs > 0:
        tiles, _ = split_into_tiles(scene.rgb, args.tile_size)
        labels = autolabel_batch(tiles, apply_cloud_filter=not args.no_filter)
        trainer.fit(BatchLoader(tiles, labels, batch_size=args.batch_size, seed=args.seed), epochs=args.epochs)

    if args.workers > 1 and args.backend == "auto":
        warnings.warn(
            "--workers alone is a deprecated way to enable fan-out; "
            "prefer --backend fork --workers N",
            DeprecationWarning,
            stacklevel=2,
        )
    config = InferenceConfig(
        tile_size=args.tile_size,
        overlap=args.overlap,
        apply_cloud_filter=not args.no_filter,
        batch_size=args.batch_size,
        num_workers=args.workers,
        backend=args.backend,
    )
    classifier = SceneClassifier(model=trainer.model, config=config)
    start = time.perf_counter()
    class_map = classifier.classify_scene(scene.rgb)
    elapsed = time.perf_counter() - start
    classifier.close()
    # Tile count from geometry alone — no need to cut the scene a second time.
    stride = args.tile_size - args.overlap
    per_axis = 1 if args.scene_size <= args.tile_size else -(-(args.scene_size - args.tile_size) // stride) + 1
    num_tiles = per_axis * per_axis
    print(
        json.dumps(
            {
                "scene_size": args.scene_size,
                "tile_size": args.tile_size,
                "overlap": args.overlap,
                "backend": config.resolved_backend(),
                "num_workers": args.workers,
                "batch_size": args.batch_size,
                "num_tiles": num_tiles,
                "elapsed_s": round(elapsed, 3),
                "tiles_per_s": round(num_tiles / elapsed, 3) if elapsed > 0 else None,
                "accuracy_vs_ground_truth": round(accuracy_score(scene.class_map, class_map), 4),
            },
            indent=2,
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from .serving import InferenceService, ModelRegistry, ServiceConfig, run_service
    from .unet import InferenceConfig

    inference = None
    if args.inference_config:
        with open(args.inference_config) as fh:
            inference = InferenceConfig.from_dict(json.load(fh))
    if args.backend != "auto" or args.backend_workers is not None:
        from dataclasses import replace

        base = inference or InferenceConfig()
        inference = replace(
            base,
            backend=args.backend,
            num_workers=args.backend_workers if args.backend_workers is not None else base.num_workers,
        )

    if args.demo:
        registry_dir = args.registry or tempfile.mkdtemp(prefix="repro-registry-")
        _publish_demo_model(registry_dir, args)
        registry = ModelRegistry(registry_dir, inference=inference, max_warm=args.max_warm)
    elif args.registry:
        registry = ModelRegistry(args.registry, inference=inference, max_warm=args.max_warm)
    else:
        print("error: pass --registry DIR (or --demo to train and serve a toy model)", file=sys.stderr)
        return 2

    models = registry.models()
    if not models:
        print(f"error: no models found in registry {registry.root!r} "
              "(expected <name>/<version>.npz)", file=sys.stderr)
        return 2

    service = InferenceService(
        registry,
        ServiceConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_window_s=args.batch_window_ms / 1e3,
            request_timeout_s=args.request_timeout_ms / 1e3,
            max_queue=args.max_queue if args.max_queue > 0 else None,
            max_concurrent=args.max_concurrent if args.max_concurrent > 0 else None,
        ),
    )
    def announce(server) -> None:
        # The ready line is machine-readable on purpose: --port 0 binds an
        # ephemeral port and scripts need to learn which one.
        print(json.dumps({
            "serving": True,
            "host": server.server_address[0],
            "port": server.server_address[1],
            "models": {name: versions for name, versions in models.items()},
            "endpoints": ["/healthz", "/models", "/stats", "/metrics", "/predict"],
        }), flush=True)

    run_service(service, quiet=args.quiet, on_ready=announce)
    return 0


def _bench_dir() -> str | None:
    """Locate the ``benchmarks/`` directory (cwd first, then the repo checkout)."""
    import os

    candidates = [
        os.path.join(os.getcwd(), "benchmarks"),
        os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")),
    ]
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    return None


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run one repo benchmark through pytest and print its BENCH_*.json."""
    import os

    bench_dir = _bench_dir()
    if bench_dir is None:
        print("error: no benchmarks/ directory found (run from the repo checkout)", file=sys.stderr)
        return 2
    available = sorted(
        entry[len("test_"):-len(".py")]
        for entry in os.listdir(bench_dir)
        if entry.startswith("test_") and entry.endswith(".py")
    )
    if args.list or args.name is None:
        print(json.dumps({"benchmarks": available}, indent=2))
        return 0
    name = args.name.removeprefix("test_").removesuffix(".py")
    if name not in available:
        print(f"error: unknown benchmark {name!r}; available: {available}", file=sys.stderr)
        return 2

    try:
        import pytest
    except ImportError:  # pragma: no cover - pytest ships with the dev env
        print("error: the bench command needs pytest installed", file=sys.stderr)
        return 2

    json_dir = os.path.abspath(args.json_dir)
    os.environ["BENCH_JSON_DIR"] = json_dir
    if args.smoke:
        os.environ["BENCH_SMOKE"] = "1"
    before = set()
    if os.path.isdir(json_dir):
        before = {entry for entry in os.listdir(json_dir) if entry.startswith("BENCH_")}
    rc = pytest.main([os.path.join(bench_dir, f"test_{name}.py"), "-q", "-s",
                      "-p", "no:cacheprovider"])
    if rc != 0:
        return int(rc)
    written = sorted(
        entry for entry in os.listdir(json_dir)
        if entry.startswith("BENCH_") and (entry not in before
                                           or name in entry)
    )
    for entry in written:
        with open(os.path.join(json_dir, entry)) as fh:
            print(f"== {entry} ==")
            print(fh.read().rstrip())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the opt-in profiling hooks and print (or write) the JSON report."""
    from .obs import profile_inference, profile_training
    from .unet import UNetConfig
    from .unet.model import UNet

    report: dict = {}
    if args.what in ("inference", "all"):
        model = UNet(UNetConfig(depth=args.depth, base_channels=args.base_channels,
                                dropout=0.0, seed=args.seed))
        report["inference"] = profile_inference(
            model,
            batch_shape=(args.batch_size, args.tile_size, args.tile_size),
            iterations=args.iterations,
            warmup=args.warmup,
            seed=args.seed,
        )
    if args.what in ("training", "all"):
        report["training"] = profile_training(
            epochs=args.epochs,
            batches=args.batches,
            batch_size=args.batch_size,
            tile=args.tile_size,
            seed=args.seed,
        )
    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _publish_demo_model(registry_dir: str, args: argparse.Namespace) -> None:
    """Train (or just initialise) a tiny model and publish it as a registry checkpoint."""
    from .data import BatchLoader, SceneSpec, synthesize_scene
    from .imops.resize import split_into_tiles
    from .labeling.autolabel import autolabel_batch
    from .serving import ModelRegistry
    from .unet import InferenceConfig, UNetConfig, UNetTrainer

    trainer = UNetTrainer(config=UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=args.seed))
    if args.demo_epochs > 0:
        scene = synthesize_scene(SceneSpec(height=128, width=128, cloud_coverage=0.2, seed=args.seed))
        tiles, _ = split_into_tiles(scene.rgb, 32)
        labels = autolabel_batch(tiles, apply_cloud_filter=False)
        trainer.fit(BatchLoader(tiles, labels, batch_size=8, seed=args.seed), epochs=args.demo_epochs)
    registry = ModelRegistry(registry_dir)
    registry.publish(
        "seaice-demo",
        1,
        trainer.model,
        optimizer=trainer.optimizer,
        inference=InferenceConfig(tile_size=32, apply_cloud_filter=False),
        extra_metadata={"demo": True, "epochs": args.demo_epochs},
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-seaice", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("autolabel", help="auto-label a synthetic archive")
    p.add_argument("--scenes", type=int, default=4)
    p.add_argument("--scene-size", type=int, default=256)
    p.add_argument("--tile-size", type=int, default=128)
    p.add_argument("--backend", choices=("serial", "multiprocessing", "mapreduce"), default="serial")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--no-filter", action="store_true", help="skip the thin-cloud/shadow filter")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_autolabel)

    p = sub.add_parser("scaling", help="print the scaling tables (Tables I-III)")
    p.add_argument("--table", choices=("1", "2", "3", "all"), default="all")
    p.add_argument("--scenes", type=int, default=2)
    p.add_argument("--scene-size", type=int, default=256)
    p.add_argument("--tile-size", type=int, default=128)
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    p.set_defaults(func=_cmd_scaling)

    p = sub.add_parser(
        "train",
        help="run the U-Net-Man vs U-Net-Auto experiment (Tables IV/V), or — "
             "with --workers N — elastic multi-process distributed training",
    )
    p.add_argument("--scenes", type=int, default=6)
    p.add_argument("--scene-size", type=int, default=128)
    p.add_argument("--tile-size", type=int, default=32)
    p.add_argument("--epochs", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=0,
                   help="elastic training worker processes (0 = the serial "
                        "Tables IV/V experiment)")
    p.add_argument("--micro-shards", type=int, default=None,
                   help="fixed micro-shard count M (default: --workers); runs "
                        "with equal M are bit-identical for any worker count")
    p.add_argument("--batch-size", type=int, default=32, help="global batch size")
    p.add_argument("--step-timeout", type=float, default=60.0,
                   help="per-reply deadline (s) before a worker is evicted")
    p.add_argument("--checkpoint-dir", default=None,
                   help="directory for atomic ckpt-*.npz checkpoints")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="checkpoint every N global steps (epoch ends always)")
    p.add_argument("--resume", action="store_true",
                   help="resume bit-exactly from the newest readable checkpoint")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("prep", help="time the scene-preparation pipeline")
    p.add_argument("--scenes", type=int, default=2)
    p.add_argument("--scene-size", type=int, default=256)
    p.add_argument("--tile-size", type=int, default=128)
    p.add_argument("--overlap", type=int, default=0, help="pixels shared by neighbouring tiles")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_prep)

    p = sub.add_parser("classify", help="run the tiled scene-inference engine on a synthetic scene")
    p.add_argument("--scene-size", type=int, default=256)
    p.add_argument("--tile-size", type=int, default=64)
    p.add_argument("--overlap", type=int, default=0, help="pixels shared by neighbouring tiles (blend-stitched)")
    p.add_argument("--backend", choices=("auto", "serial", "thread", "fork"), default="auto",
                   help="execution backend for batch fan-out (auto resolves from "
                        "REPRO_BACKEND, then --workers)")
    p.add_argument("--workers", type=int, default=1,
                   help="backend worker count (bare --workers N is the deprecated "
                        "pre-backend alias for --backend fork)")
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--epochs", type=int, default=3,
                   help="quick auto-label training epochs before inference (0 = untrained throughput run)")
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--base-channels", type=int, default=8)
    p.add_argument("--clouds", type=float, default=0.2, help="cloud coverage of the synthetic scene")
    p.add_argument("--no-filter", action="store_true", help="skip the thin-cloud/shadow filter")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("serve", help="serve registry models over JSON HTTP endpoints")
    p.add_argument("--registry", default=None, help="registry directory (<name>/<version>.npz)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 binds an ephemeral port")
    p.add_argument("--max-batch", type=int, default=16, help="micro-batch flush size")
    p.add_argument("--max-warm", type=int, default=None,
                   help="LRU cap on warm models kept resident (default: unbounded)")
    p.add_argument("--batch-window-ms", type=float, default=5.0,
                   help="micro-batch flush deadline in milliseconds")
    p.add_argument("--request-timeout-ms", type=float, default=60000.0,
                   help="per-request deadline; expired work is dropped and answered 504")
    p.add_argument("--max-queue", type=int, default=128,
                   help="per-model batcher queue bound; past it requests shed with 503 "
                        "(0 = unbounded)")
    p.add_argument("--max-concurrent", type=int, default=64,
                   help="service-wide in-flight /predict cap; past it requests shed "
                        "with 503 + Retry-After (0 = unlimited)")
    p.add_argument("--inference-config", default=None,
                   help="JSON file of InferenceConfig settings overriding archive metadata")
    p.add_argument("--backend", choices=("auto", "serial", "thread", "fork"), default="auto",
                   help="execution backend every served model dispatches through")
    p.add_argument("--backend-workers", type=int, default=None,
                   help="worker count for thread/fork backends")
    p.add_argument("--demo", action="store_true",
                   help="publish a freshly trained tiny model into the registry and serve it")
    p.add_argument("--demo-epochs", type=int, default=1,
                   help="training epochs for the --demo model (0 serves it untrained)")
    p.add_argument("--quiet", action="store_true", help="suppress per-request access logs")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("bench", help="run one benchmarks/ module and print its BENCH_*.json")
    p.add_argument("name", nargs="?", default=None,
                   help="benchmark name, e.g. inference_throughput (omit or --list to list)")
    p.add_argument("--list", action="store_true", help="list available benchmarks")
    p.add_argument("--smoke", action="store_true", help="run at CI smoke scale (BENCH_SMOKE=1)")
    p.add_argument("--json-dir", default=".", help="directory for the BENCH_*.json outputs")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("profile", help="run the profiling hooks and print a JSON report")
    p.add_argument("what", nargs="?", choices=("inference", "training", "all"), default="all",
                   help="which profile to run (default: all)")
    p.add_argument("--tile-size", type=int, default=32, help="square input tile edge")
    p.add_argument("--batch-size", type=int, default=4)
    p.add_argument("--iterations", type=int, default=50, help="measured inference iterations")
    p.add_argument("--warmup", type=int, default=5, help="unmeasured warmup iterations")
    p.add_argument("--epochs", type=int, default=2, help="profiled training epochs")
    p.add_argument("--batches", type=int, default=4, help="batches per training epoch")
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--base-channels", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write the JSON report to a file instead of stdout")
    p.set_defaults(func=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
