"""The fork backend: persistent worker processes + shared-memory everything.

What made the old per-call fork pool *slower* than a single process was
per-call overhead that scaled with model and output size: every call forked
a fresh pool, every worker re-compiled plans from scratch, and every
result batch (~16 MB of probability maps per scene) was pickled back
through a pipe.  This backend removes all three costs structurally:

* **Workers are persistent.**  Forked once, they keep their attached models
  and compiled plans across calls; steady-state prediction re-runs warm
  arena plans.
* **Weights live in one shared segment** (:mod:`repro.backend.store`).
  Publishing pickles nothing to workers but a tiny spec; workers alias the
  parent's weight copy read-only and bind the pre-packed GEMM operands
  directly, so plan compilation in a worker never re-packs a kernel.
* **Batches travel by shared arena, not pipe.**  ``predict_stack`` writes
  the tile stack into a shared input segment once, task messages carry only
  ``(start, stop)`` span indices, and each worker's plan softmaxes straight
  into the shared output arena (``plan.run(out=…)``).  The I/O segment pair
  is cached per ``(key, stack shape)`` and reused across scenes, so the
  steady state allocates nothing and concatenates nothing.

Workers that fail are handled, not propagated: a dead pipe or a dispatch
that blows its per-op timeout (``dispatch_timeout_s``, env
``REPRO_DISPATCH_TIMEOUT_S``) kills the worker, and the idempotent predict
ops are retried on another worker with capped exponential backoff — a
prediction span writes only its own slice of the shared output arena, so
re-running it is safe.  A background watchdog heartbeats idle workers
(``heartbeat_interval_s``, env ``REPRO_HEARTBEAT_S``) and respawns hung or
dead ones — with their models republished from the store — before the next
dispatch ever lands on them.  Only after retries exhaust does the caller
see a :class:`BackendError`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import current_trace_id, record as _trace_record
from ..reliability import Deadline, RetryPolicy, fault_point
from .base import Backend, BackendError, ModelHandle, _default_chunk_size
from .store import (
    SharedModelStore,
    attach_model,
    attach_segment,
    close_segment,
    create_segment,
    ndarray_view,
)

__all__ = ["ProcessBackend", "WorkerLost"]

#: Environment overrides for the reliability knobs (CI's chaos arm tightens
#: them; ``<= 0`` disables the mechanism).
DISPATCH_TIMEOUT_ENV_VAR = "REPRO_DISPATCH_TIMEOUT_S"
HEARTBEAT_ENV_VAR = "REPRO_HEARTBEAT_S"

_DEFAULT_DISPATCH_TIMEOUT_S = 30.0
_DEFAULT_HEARTBEAT_S = 2.0
_PING_TIMEOUT_S = 5.0


class WorkerLost(BackendError):
    """A worker crashed or hung mid-dispatch (retryable for predict ops)."""


def _env_float(var: str, default: float) -> float:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_get_view(segments: dict, name: str, shape, dtype, writeable: bool):
    cached = segments.get(name)
    if cached is None:
        shm = attach_segment(name)
        cached = (shm, ndarray_view(shm, tuple(shape), dtype=dtype, writeable=writeable))
        segments[name] = cached
    return cached[1]


def _worker_reply_meta(compute_ms: float, trace_id=None) -> dict:
    """Reply metadata for one timed predict op: compute time, trace echo,
    and whatever metric deltas accumulated in this worker since its last
    reply — the piggyback channel that keeps the metrics hot path free of
    cross-process locks."""
    meta = {"compute_ms": compute_ms, "pid": os.getpid()}
    if trace_id is not None:
        meta["trace_id"] = trace_id
    drained = get_registry().drain()
    if drained:
        meta["metrics"] = drained
    return meta


def _worker_main(conn, siblings=()) -> None:
    """Blocking request loop of one backend worker (runs in the child)."""
    # Forked children inherit the parent's end of every *earlier* worker's
    # pipe.  Close them, or a sibling holding the fd open keeps recv() from
    # ever seeing EOF after the parent dies — orphan workers that pin the
    # shared-memory segments (and the resource tracker) forever.
    for sibling in siblings:
        try:
            sibling.close()
        except OSError:  # pragma: no cover - already closed
            pass
    # The fork cloned the parent's metrics registry cells (copy-on-write);
    # zero them or every parent count accumulated before the fork would be
    # double-reported by this worker's first drained delta.
    get_registry().reset()
    models: dict = {}  # key -> AttachedModel
    segments: dict = {}  # segment name -> (SharedMemory, ndarray view)
    hist_compute = get_registry().histogram(
        "repro_backend_compute_ms",
        "Model compute time per predict dispatch",
        ("backend",),
    )
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            try:
                if op == "stop":
                    conn.send(("ok", None))
                    break
                if op == "publish":
                    spec = msg[1]
                    old = models.pop(spec.key, None)
                    if old is not None:
                        old.close()
                    models[spec.key] = attach_model(spec)
                    conn.send(("ok", None))
                elif op == "release":
                    old = models.pop(msg[1], None)
                    if old is not None:
                        old.close()
                    conn.send(("ok", None))
                elif op == "predict_span":
                    (key, in_name, in_shape, in_dtype, out_name, out_shape,
                     start, stop, trace_id) = msg[1:]
                    entry = models[key]
                    fault_point("worker_crash")
                    fault_point("worker_hang")
                    src = _worker_get_view(segments, in_name, in_shape,
                                           np.dtype(in_dtype), writeable=False)
                    dst = _worker_get_view(segments, out_name, out_shape,
                                           np.float32, writeable=True)
                    t0 = time.perf_counter()
                    entry.predict(src[start:stop], out=dst[start:stop])
                    compute_ms = (time.perf_counter() - t0) * 1e3
                    hist_compute.observe(compute_ms, backend="fork")
                    conn.send(("ok", None, _worker_reply_meta(compute_ms, trace_id)))
                elif op == "predict_batch":
                    key, batch, trace_id = msg[1:]
                    fault_point("worker_crash")
                    fault_point("worker_hang")
                    t0 = time.perf_counter()
                    result = models[key].predict(batch)
                    compute_ms = (time.perf_counter() - t0) * 1e3
                    hist_compute.observe(compute_ms, backend="fork")
                    conn.send(("ok", result, _worker_reply_meta(compute_ms, trace_id)))
                elif op == "ping":
                    conn.send(("ok", os.getpid()))
                elif op == "warm":
                    key, shape = msg[1:]
                    models[key].warm(shape)
                    conn.send(("ok", None))
                elif op == "map_chunk":
                    fn, chunk = msg[1:]
                    conn.send(("ok", [fn(item) for item in chunk]))
                elif op == "drop_segments":
                    for name in msg[1]:
                        cached = segments.pop(name, None)
                        if cached is not None:
                            close_segment(cached[0])
                    conn.send(("ok", None))
                else:
                    conn.send(("err", f"unknown backend op {op!r}"))
            except Exception as exc:  # report, keep serving
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        for attached in models.values():
            attached.close()
        for shm, _view in segments.values():
            close_segment(shm)
        conn.close()


class _Worker:
    """Parent-side handle of one worker process (pipe + in-use lock)."""

    def __init__(self, ctx, siblings: Sequence = ()) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        # The child closes every parent-side end it inherited at fork time —
        # its own *and* the earlier workers' — so the pipes EOF when the
        # parent actually dies (see _worker_main).
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, tuple(siblings) + (self.conn,)),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.dead = False
        #: metadata of the most recent 3-tuple reply (trace-id echo, pid,
        #: compute time) — observability peek, not part of the data path
        self.last_meta: dict | None = None

    def call(self, *msg, timeout: float | None = None):
        """One request/response round trip; a broken pipe marks the worker dead.

        ``timeout`` bounds the wait for the reply: a worker that does not
        answer in time is presumed hung, killed on the spot (its model state
        is all re-creatable from the shared store) and reported as
        :class:`WorkerLost` so idempotent ops can retry elsewhere.

        Timed ops reply ``("ok", payload, meta)``: the worker-measured
        compute time lands in this thread's trace collector (if one is
        active), and any piggybacked metric deltas merge into the parent
        registry here — on the thread that already owns the reply, never
        under a shared lock on the worker side.
        """
        try:
            self.conn.send(msg)
            if timeout is not None and not self.conn.poll(timeout):
                self.kill()
                raise WorkerLost(
                    f"backend worker (pid {self.process.pid}) hung during {msg[0]!r} "
                    f"(no reply within {timeout:.1f}s); killed"
                )
            reply = self.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            self.dead = True
            raise WorkerLost(
                f"backend worker (pid {self.process.pid}) died during {msg[0]!r}: {exc!r}"
            ) from exc
        status, payload = reply[0], reply[1]
        meta = reply[2] if len(reply) > 2 else None
        if status != "ok":
            raise BackendError(f"backend worker task {msg[0]!r} failed: {payload}")
        if meta is not None:
            self.last_meta = meta
            drained = meta.get("metrics")
            if drained:
                get_registry().merge(drained)
            compute_ms = meta.get("compute_ms")
            if compute_ms is not None:
                _trace_record("compute_ms", compute_ms)
        return payload

    def kill(self) -> None:
        """Hard-kill the worker (SIGKILL); used for hung processes."""
        self.dead = True
        if self.process.is_alive():
            self.process.kill()
        self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stop(self, timeout: float = 2.0) -> None:
        if not self.dead and self.process.is_alive():
            try:
                self.conn.send(("stop",))
                # A hung worker never acknowledges; poll instead of a blind
                # recv() so shutdown cannot wedge behind it.
                if self.conn.poll(timeout):
                    self.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _IOSegments:
    """A reusable shared input/output arena pair for one (key, stack shape)."""

    def __init__(self, stack_shape, stack_dtype, out_shape) -> None:
        dtype = np.dtype(stack_dtype)
        self.in_shm = create_segment(int(np.prod(stack_shape, dtype=np.int64)) * dtype.itemsize)
        self.out_shm = create_segment(int(np.prod(out_shape, dtype=np.int64)) * 4)
        self.in_view = ndarray_view(self.in_shm, tuple(stack_shape), dtype=dtype)
        self.out_view = ndarray_view(self.out_shm, tuple(out_shape), dtype=np.float32)
        self.in_dtype = dtype.str

    @property
    def names(self) -> tuple[str, str]:
        return (self.in_shm.name, self.out_shm.name)

    def destroy(self) -> None:
        self.in_view = None
        self.out_view = None
        close_segment(self.in_shm, unlink=True)
        close_segment(self.out_shm, unlink=True)


# ---------------------------------------------------------------------- #
# Parent-side backend
# ---------------------------------------------------------------------- #
class ProcessBackend(Backend):
    """Persistent fork workers attached to the shared-memory model store."""

    name = "fork"

    def __init__(self, num_workers: int = 2, start_method: str = "fork", *,
                 dispatch_timeout_s: float | None = None,
                 heartbeat_interval_s: float | None = None,
                 retry: RetryPolicy | None = None) -> None:
        super().__init__(num_workers=num_workers)
        if start_method not in mp.get_all_start_methods():
            raise ValueError(f"start method {start_method!r} is not available on this platform")
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        if dispatch_timeout_s is None:
            dispatch_timeout_s = _env_float(DISPATCH_TIMEOUT_ENV_VAR,
                                            _DEFAULT_DISPATCH_TIMEOUT_S)
        if heartbeat_interval_s is None:
            heartbeat_interval_s = _env_float(HEARTBEAT_ENV_VAR, _DEFAULT_HEARTBEAT_S)
        #: per-dispatch reply deadline for predict ops; <= 0 disables
        self.dispatch_timeout_s = dispatch_timeout_s if dispatch_timeout_s > 0 else None
        #: idle-worker heartbeat period; <= 0 disables the watchdog
        self.heartbeat_interval_s = heartbeat_interval_s if heartbeat_interval_s > 0 else None
        self.retry = retry if retry is not None else RetryPolicy()
        self._store = SharedModelStore()
        self._handles: dict[object, ModelHandle] = {}
        self._workers: list[_Worker] = []
        # LIFO free-list: sequential spans stick to the most recently used
        # (cache-hot) worker instead of round-robining every span onto a
        # worker whose arena has gone cold; concurrent dispatch still fans
        # out because busy workers are simply absent from the stack.
        self._free: queue.LifoQueue[int] = queue.LifoQueue()
        self._dispatcher: ThreadPoolExecutor | None = None
        self._io: dict[tuple, _IOSegments] = {}
        self._io_lock = threading.Lock()
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._respawns = 0
        self._retries = 0
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _start(self) -> None:
        # Start the resource tracker *before* forking so every worker
        # inherits the parent's tracker fd.  Otherwise each worker's first
        # shared-memory attach lazily spawns a private tracker whose cache
        # never sees the parent's unlink — leak warnings at worker exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._workers = []
        for _ in range(self.num_workers):
            self._workers.append(
                _Worker(self._ctx, siblings=[w.conn for w in self._workers])
            )
        for index in range(self.num_workers):
            self._free.put(index)
        # In-flight dispatch is capped at the cores actually available:
        # running more concurrent workers than cores buys no throughput and
        # costs real time — the interleaved forwards evict each other's
        # caches (each plan's working set is tens of MB).  All workers stay
        # up and warm either way; the cap only bounds concurrency.
        inflight = max(1, min(self.num_workers, _cpu_count()))
        self._dispatcher = ThreadPoolExecutor(
            max_workers=inflight, thread_name_prefix="repro-backend-dispatch"
        )
        if self.heartbeat_interval_s is not None:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-backend-watchdog", daemon=True
            )
            self._watchdog.start()

    def _close(self) -> None:
        # Watchdog first, or it would respawn the workers being stopped.
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2 * _PING_TIMEOUT_S)
            self._watchdog = None
        if self._dispatcher is not None:
            self._dispatcher.shutdown(wait=True)
            self._dispatcher = None
        for worker in self._workers:
            worker.stop()
        self._workers = []
        with self._io_lock:
            segments = list(self._io.values())
            self._io.clear()
        for seg in segments:
            seg.destroy()
        self._store.close()
        self._handles.clear()

    # ------------------------------------------------------------------ #
    # Worker checkout / dispatch
    # ------------------------------------------------------------------ #
    def _checkout(self) -> int:
        index = self._free.get()
        worker = self._workers[index]
        if worker.dead or not worker.process.is_alive():
            self._respawn(index)
        return index

    def _respawn(self, index: int) -> None:
        """Replace a dead worker and republish every stored model into it."""
        old = self._workers[index]
        try:
            old.stop(timeout=0.5)
        except Exception:  # pragma: no cover - defensive
            pass
        worker = _Worker(
            self._ctx,
            siblings=[w.conn for i, w in enumerate(self._workers) if i != index],
        )
        self._workers[index] = worker
        self._respawns += 1
        for spec in self._store.specs():
            worker.call("publish", spec)

    def _watchdog_loop(self) -> None:
        """Heartbeat idle workers; kill and respawn any that fail to answer.

        Only *free* workers are pinged — a busy worker is covered by its
        dispatch timeout, and checking out through the free-list means the
        watchdog can never race a dispatcher for the same worker.
        """
        while not self._watchdog_stop.wait(self.heartbeat_interval_s):
            indices = []
            while True:
                try:
                    indices.append(self._free.get_nowait())
                except queue.Empty:
                    break
            for index in indices:
                if self._watchdog_stop.is_set():
                    self._free.put(index)
                    continue
                worker = self._workers[index]
                try:
                    if worker.dead or not worker.process.is_alive():
                        self._respawn(index)
                    else:
                        worker.call("ping", timeout=_PING_TIMEOUT_S)
                except BackendError:
                    try:
                        self._respawn(index)
                    except Exception:  # pragma: no cover - defensive
                        pass
                finally:
                    self._free.put(index)

    def _call(self, *msg, timeout: float | None = None):
        """Run one request on any free worker (blocks while all are busy)."""
        self._ensure_open()
        index = self._checkout()
        with self._busy_lock:
            self._busy += 1
        try:
            return self._workers[index].call(*msg, timeout=timeout)
        finally:
            with self._busy_lock:
                self._busy -= 1
            self._free.put(index)
        # A worker that died inside call() goes back on the free queue dead;
        # the next checkout respawns it with the store's models republished.

    def _predict_call(self, *msg, deadline: Deadline | None = None):
        """A `_call` that survives worker loss: kill, respawn, retry, backoff.

        Predict ops are idempotent (a span writes only its own output
        slice), so a lost worker just means the op runs again elsewhere.
        Worker-side *errors* (``("err", …)`` replies) are not retried — the
        worker is healthy and the failure is deterministic.  The deadline is
        checked before every attempt so expired work never dispatches.
        """
        attempt = 0
        while True:
            if deadline is not None:
                deadline.check("backend dispatch")
            try:
                return self._call(*msg, timeout=self.dispatch_timeout_s)
            except WorkerLost:
                if attempt >= self.retry.max_retries:
                    raise
                with self._busy_lock:
                    self._retries += 1
                self.retry.sleep(attempt, deadline)
                attempt += 1

    def _broadcast(self, *msg) -> None:
        """Send one request to every live worker (best-effort, e.g. drops).

        All sends go out before any reply is collected, so broadcast work
        (attaching a published model, warming a plan) runs concurrently
        across the worker processes instead of one worker at a time.
        """
        indices = [self._checkout() for _ in self._workers]
        sent = []
        try:
            for index in indices:
                worker = self._workers[index]
                try:
                    worker.conn.send(msg)
                    sent.append(index)
                except (OSError, BrokenPipeError):
                    worker.dead = True
            for index in sent:
                worker = self._workers[index]
                try:
                    worker.conn.recv()
                except (EOFError, OSError):
                    worker.dead = True
        finally:
            for index in indices:
                self._free.put(index)

    # ------------------------------------------------------------------ #
    # Generic dispatch
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable, items: Sequence, chunk_size: int | None = None) -> list:
        self._ensure_open()
        items = list(items)
        if not items:
            return []
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(items), self.num_workers)
        chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
        self._count_task(len(chunks))
        futures = [self._dispatcher.submit(self._call, "map_chunk", fn, chunk)
                   for chunk in chunks]
        results = []
        for future in futures:
            results.extend(future.result())
        return results

    # ------------------------------------------------------------------ #
    # Model store
    # ------------------------------------------------------------------ #
    def publish_model(self, key, model, cloud_filter=None, *, engine=None,
                      compile_plans: bool = True, plan_cache_size: int = 8,
                      warm_shapes: Sequence[tuple[int, ...]] = ()) -> ModelHandle:
        self._ensure_open()
        if engine is not None:
            plan_cache_size = engine.max_plans
        spec = self._store.publish(
            key, model, cloud_filter,
            plan_cache_size=plan_cache_size, warm_shapes=warm_shapes,
        )
        self._drop_io(key)
        self._broadcast("publish", spec)
        config = model.config
        handle = ModelHandle(key=key, num_classes=int(config.num_classes),
                             in_channels=int(config.in_channels))
        self._handles[key] = handle
        return handle

    def release_model(self, key) -> None:
        if key not in self._store:
            return
        self._drop_io(key)
        self._broadcast("release", key)
        self._store.release(key)
        self._handles.pop(key, None)

    def has_model(self, key) -> bool:
        return key in self._store

    def _drop_io(self, key) -> None:
        with self._io_lock:
            dropped = [k for k in self._io if k[0] == key]
            segments = [self._io.pop(k) for k in dropped]
        if segments:
            names = [name for seg in segments for name in seg.names]
            self._broadcast("drop_segments", names)
            for seg in segments:
                seg.destroy()

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, key, batch: np.ndarray, deadline: Deadline | None = None) -> np.ndarray:
        self._ensure_open()
        if key not in self._store:
            raise KeyError(key)
        self._count_task()
        # The trace id crosses the pipe with the batch and comes back echoed
        # in reply meta: the worker's compute time is attributed to *this*
        # request's collector, and the round trip itself is testable.
        return self._predict_call("predict_batch", key, np.ascontiguousarray(batch),
                                  current_trace_id(), deadline=deadline)

    def _io_for(self, key, stack: np.ndarray) -> tuple[_IOSegments, bool]:
        handle = self._handles[key]
        h, w = stack.shape[1:3]
        out_shape = (stack.shape[0], handle.num_classes, h, w)
        cache_key = (key, stack.shape, stack.dtype.str)
        created = False
        with self._io_lock:
            seg = self._io.get(cache_key)
            if seg is None:
                seg = _IOSegments(stack.shape, stack.dtype, out_shape)
                self._io[cache_key] = seg
                created = True
        return seg, created

    def predict_stack(self, key, stack: np.ndarray, batch_size: int,
                      copy: bool = True, deadline: Deadline | None = None) -> np.ndarray:
        """Zero-pickle stack prediction through the shared I/O arenas.

        With ``copy=False`` the returned array is the shared output arena
        itself — valid until the next call for the same key and stack shape.
        """
        self._ensure_open()
        if key not in self._store:
            raise KeyError(key)
        if deadline is not None:
            deadline.check("backend predict_stack")
        stack = np.asarray(stack)
        if stack.shape[0] == 0:
            handle = self._handles[key]
            return np.zeros((0, handle.num_classes) + stack.shape[1:3], dtype=np.float32)
        seg, created = self._io_for(key, stack)
        seg.in_view[...] = stack
        spans = [(start, min(start + batch_size, stack.shape[0]))
                 for start in range(0, stack.shape[0], batch_size)]
        if created:
            # First sight of this stack shape: bring every worker's plan(s)
            # fully hot (compiled *and* first-touched) before real spans are
            # dispatched, so no span — this call's or a later one's — lands
            # on a cold plan.
            for shape in sorted({(stop - start,) + stack.shape[1:] for start, stop in spans},
                                reverse=True):
                self._broadcast("warm", key, shape)
        self._count_task(len(spans))
        in_name, out_name = seg.names
        # Capture the trace id here, in the caller's thread — the dispatcher
        # threads running the spans have no collector of their own.
        trace_id = current_trace_id()
        submit = self._dispatcher.submit
        futures = [
            submit(
                lambda s=start, e=stop: self._predict_call(
                    "predict_span", key,
                    in_name, seg.in_view.shape, seg.in_dtype,
                    out_name, seg.out_view.shape, s, e, trace_id,
                    deadline=deadline,
                )
            )
            for start, stop in spans
        ]
        # Drain every span before raising, so no in-flight worker is still
        # writing into the shared arena when the caller sees the failure.
        errors = []
        for future in futures:
            try:
                future.result()
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise errors[0]
        return np.array(seg.out_view) if copy else seg.out_view

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def _busy_workers(self) -> int:
        with self._busy_lock:
            return self._busy

    def _model_keys(self) -> list:
        return self._store.keys()

    def occupancy(self) -> dict:
        info = super().occupancy()
        info["start_method"] = self.start_method
        info["alive_workers"] = sum(
            1 for w in self._workers if not w.dead and w.process.is_alive()
        )
        info["worker_pids"] = [
            w.process.pid for w in self._workers if not w.dead and w.process.is_alive()
        ]
        info["respawns"] = self._respawns
        with self._busy_lock:
            info["dispatch_retries"] = self._retries
        info["dispatch_timeout_s"] = self.dispatch_timeout_s
        info["heartbeat_interval_s"] = self.heartbeat_interval_s
        with self._io_lock:
            info["io_segments"] = 2 * len(self._io)
        return info
