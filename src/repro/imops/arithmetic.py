"""Pixel-wise arithmetic, bit-wise and normalisation operators.

These mirror the OpenCV primitives the paper's thin-cloud/shadow filter is
assembled from: saturating add/subtract, absolute difference, bit-wise
AND/OR/NOT with optional masks, and min–max normalisation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "saturating_add",
    "saturating_subtract",
    "absdiff",
    "bitwise_and",
    "bitwise_or",
    "bitwise_not",
    "apply_mask",
    "min_max_normalize",
    "scale_to_uint8",
]


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape and b.ndim != 0:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``cv2.add`` equivalent: element-wise addition clipped to the uint8 range."""
    a, b = _pair(a, b)
    out = a.astype(np.int32) + b.astype(np.int32)
    if a.dtype == np.uint8:
        return np.clip(out, 0, 255).astype(np.uint8)
    return out.astype(np.result_type(a, b))


def saturating_subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``cv2.subtract`` equivalent: element-wise subtraction clipped at zero for uint8."""
    a, b = _pair(a, b)
    out = a.astype(np.int32) - b.astype(np.int32)
    if a.dtype == np.uint8:
        return np.clip(out, 0, 255).astype(np.uint8)
    return out.astype(np.result_type(a, b))


def absdiff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Absolute per-pixel difference (``cv2.absdiff``)."""
    a, b = _pair(a, b)
    out = np.abs(a.astype(np.int32) - b.astype(np.int32))
    if a.dtype == np.uint8:
        return out.astype(np.uint8)
    return out.astype(np.result_type(a, b))


def _broadcast_mask(image: np.ndarray, mask: np.ndarray | None) -> np.ndarray | None:
    if mask is None:
        return None
    mask = np.asarray(mask)
    if mask.shape != image.shape[: mask.ndim]:
        raise ValueError(f"mask shape {mask.shape} incompatible with image {image.shape}")
    mask_bool = mask.astype(bool)
    if image.ndim == 3 and mask_bool.ndim == 2:
        mask_bool = mask_bool[..., None]
    return mask_bool


def bitwise_and(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Bit-wise AND of two images, optionally restricted to ``mask`` pixels."""
    a, b = _pair(a, b)
    out = np.bitwise_and(a.astype(np.uint8), np.asarray(b, dtype=np.uint8))
    mask_bool = _broadcast_mask(a, mask)
    if mask_bool is not None:
        out = np.where(mask_bool, out, 0).astype(np.uint8)
    return out


def bitwise_or(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Bit-wise OR of two images, optionally restricted to ``mask`` pixels."""
    a, b = _pair(a, b)
    out = np.bitwise_or(a.astype(np.uint8), np.asarray(b, dtype=np.uint8))
    mask_bool = _broadcast_mask(a, mask)
    if mask_bool is not None:
        out = np.where(mask_bool, out, 0).astype(np.uint8)
    return out


def bitwise_not(a: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Bit-wise NOT (255 - x for uint8), optionally restricted to ``mask`` pixels."""
    a = np.asarray(a)
    out = np.bitwise_not(a.astype(np.uint8))
    mask_bool = _broadcast_mask(a, mask)
    if mask_bool is not None:
        out = np.where(mask_bool, out, 0).astype(np.uint8)
    return out


def apply_mask(image: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero out every pixel where ``mask`` is falsy (``cv2.bitwise_and(img, img, mask=...)``)."""
    img = np.asarray(image)
    mask_bool = _broadcast_mask(img, mask)
    return np.where(mask_bool, img, 0).astype(img.dtype, copy=False)


def min_max_normalize(
    image: np.ndarray,
    new_min: float = 0.0,
    new_max: float = 255.0,
) -> np.ndarray:
    """Linearly rescale pixel values to ``[new_min, new_max]`` (``cv2.normalize`` MINMAX).

    A constant image maps to ``new_min`` everywhere.
    Returns float64; use :func:`scale_to_uint8` to quantise.
    """
    img = np.asarray(image, dtype=np.float64)
    lo = img.min() if img.size else 0.0
    hi = img.max() if img.size else 0.0
    if hi == lo:
        return np.full_like(img, new_min)
    return (img - lo) / (hi - lo) * (new_max - new_min) + new_min


def scale_to_uint8(image: np.ndarray) -> np.ndarray:
    """Round, clip to [0, 255] and cast to uint8."""
    return np.clip(np.round(np.asarray(image, dtype=np.float64)), 0, 255).astype(np.uint8)
