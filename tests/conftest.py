"""Shared fixtures for the test suite.

All fixtures are deliberately small (tiny scenes and tiles) so the whole
suite stays fast; the paper-scale paths are exercised by the benchmark
harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SceneSpec, build_dataset, synthesize_scene, train_test_split


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def clear_scene():
    """A small scene without clouds or shadows."""
    return synthesize_scene(SceneSpec(height=96, width=96, cloud_coverage=0.0, seed=7))


@pytest.fixture(scope="session")
def cloudy_scene():
    """A small scene with a substantial thin-cloud bank and shadows."""
    return synthesize_scene(
        SceneSpec(height=96, width=96, cloud_coverage=0.35, cloud_max_opacity=0.55, shadow_max_opacity=0.5, seed=11)
    )


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tile dataset of 2 small scenes cut into 32x32 tiles (8 tiles)."""
    return build_dataset(num_scenes=2, scene_size=64, tile_size=32, base_seed=3)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return train_test_split(tiny_dataset, test_fraction=0.25, seed=0)


@pytest.fixture(scope="session")
def rgb_image(rng) -> np.ndarray:
    """A random uint8 RGB image for generic image-op tests."""
    return rng.integers(0, 256, size=(40, 56, 3), dtype=np.uint8)


@pytest.fixture(scope="session")
def gray_image(rng) -> np.ndarray:
    return rng.integers(0, 256, size=(48, 40), dtype=np.uint8)
