"""Full-scene sea-ice classification (the inference workflow of Figure 9 / Figure 14).

Trains U-Net-Man (manual labels) and U-Net-Auto (auto-labels) on a synthetic
archive, classifies a held-out cloudy scene with both, and writes the scene,
its ground truth, and both predictions as PNG-like .npy arrays plus a text
report so the qualitative comparison of the paper's Figure 14 can be
inspected.

Run with:  python examples/classify_scene.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.classes import class_map_to_color
from repro.data import SceneSpec, synthesize_scene
from repro.metrics import accuracy_score, classification_report
from repro.unet import InferenceConfig, SceneClassifier
from repro.workflow import AccuracyExperimentConfig, run_accuracy_experiment

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    print("training U-Net-Man and U-Net-Auto on a small synthetic archive "
          "(this is the slow step, ~1-2 minutes) ...")
    config = AccuracyExperimentConfig(
        num_scenes=5, scene_size=96, tile_size=32, epochs=20, batch_size=8,
        unet_depth=2, unet_base_channels=8, unet_dropout=0.0, learning_rate=3e-3, seed=3,
    )
    experiment = run_accuracy_experiment(config)
    print("  Table IV style summary of the two models:")
    for row in experiment.table4_rows():
        print(f"    {row}")

    print("classifying a held-out cloudy scene (overlap-blended tiled inference) ...")
    scene = synthesize_scene(SceneSpec(height=128, width=128, cloud_coverage=0.35, seed=999))
    # Overlapping tiles are predicted as probability maps and blend-averaged
    # at the seams before the final argmax; num_workers > 1 fans prediction
    # batches out over a fork-based process pool on multi-core machines.
    inference = InferenceConfig(
        tile_size=config.tile_size, overlap=8, apply_cloud_filter=True, batch_size=8, num_workers=1
    )
    predictions = {
        "unet_man": SceneClassifier(model=experiment.unet_man, config=inference).classify_scene(scene.rgb),
        "unet_auto": SceneClassifier(model=experiment.unet_auto, config=inference).classify_scene(scene.rgb),
    }
    hard_tiles = InferenceConfig(tile_size=config.tile_size, apply_cloud_filter=True, batch_size=8)
    hard_map = SceneClassifier(model=experiment.unet_man, config=hard_tiles).classify_scene(scene.rgb)
    blend_agreement = accuracy_score(hard_map, predictions["unet_man"])
    print(f"  overlap-blended vs hard-tile U-Net-Man maps agree on {blend_agreement * 100:.2f}% of pixels")

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    np.save(os.path.join(OUTPUT_DIR, "scene_rgb.npy"), scene.rgb)
    np.save(os.path.join(OUTPUT_DIR, "ground_truth_rgb.npy"), class_map_to_color(scene.class_map))
    for name, prediction in predictions.items():
        np.save(os.path.join(OUTPUT_DIR, f"{name}_prediction_rgb.npy"), class_map_to_color(prediction))
        report = classification_report(scene.class_map, prediction, num_classes=3,
                                       class_names=["thick_ice", "thin_ice", "open_water"])
        print(f"  {name}: scene accuracy {report.accuracy * 100:.2f}%")
        print("    per-class accuracy: "
              + ", ".join(f"{n}={a * 100:.1f}%" for n, a in zip(["thick", "thin", "water"],
                                                                report.per_class_accuracy)))
    agreement = accuracy_score(predictions["unet_man"], predictions["unet_auto"])
    print(f"  U-Net-Man vs U-Net-Auto agreement: {agreement * 100:.2f}%")
    print(f"  label images written to {OUTPUT_DIR}/ (load with numpy; red=thick, blue=thin, green=water)")


if __name__ == "__main__":
    main()
