"""Sea-ice labeling: HSV colour-segmentation auto-labeling and simulated manual annotation."""

from .calibration import CalibrationResult, calibrate_hsv_ranges
from .autolabel import AutoLabelResult, ColorSegmentationLabeler, autolabel_batch, autolabel_tile
from .manual import ManualLabelSimulator, simulate_manual_labels

__all__ = [
    "CalibrationResult",
    "calibrate_hsv_ranges",
    "AutoLabelResult",
    "ColorSegmentationLabeler",
    "autolabel_batch",
    "autolabel_tile",
    "ManualLabelSimulator",
    "simulate_manual_labels",
]
