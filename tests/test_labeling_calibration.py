"""Tests for repro.labeling.calibration (HSV threshold calibration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classes import SeaIceClass
from repro.data import build_dataset
from repro.labeling import ColorSegmentationLabeler
from repro.labeling.calibration import calibrate_hsv_ranges
from repro.metrics import accuracy_score


@pytest.fixture(scope="module")
def calibration_dataset():
    # Clear scenes so the labelled pixels reflect clean per-class radiometry.
    return build_dataset(num_scenes=3, scene_size=64, tile_size=32, base_seed=31, cloudy_fraction=0.0)


class TestCalibration:
    def test_bands_cover_value_axis_and_do_not_overlap(self, calibration_dataset):
        result = calibrate_hsv_ranges(calibration_dataset.clean_images, calibration_dataset.labels)
        ranges = result.hsv_ranges
        assert set(ranges) == set(SeaIceClass)
        bands = sorted((r.lower[2], r.upper[2]) for r in ranges.values())
        assert bands[0][0] == 0 and bands[-1][1] == 255
        for (lo1, hi1), (lo2, _hi2) in zip(bands, bands[1:]):
            assert hi1 + 1 == lo2

    def test_calibrated_bands_close_to_paper_structure(self, calibration_dataset):
        """Calibrated on data whose radiometry follows the paper's bands, the
        recovered boundaries must separate water/thin/thick in the same order."""
        result = calibrate_hsv_ranges(calibration_dataset.clean_images, calibration_dataset.labels)
        ranges = result.hsv_ranges
        assert ranges[SeaIceClass.OPEN_WATER].upper[2] < ranges[SeaIceClass.THIN_ICE].upper[2]
        assert ranges[SeaIceClass.THIN_ICE].upper[2] < ranges[SeaIceClass.THICK_ICE].upper[2]
        assert ranges[SeaIceClass.OPEN_WATER].upper[2] < 80
        assert ranges[SeaIceClass.THICK_ICE].lower[2] > 150

    def test_labeler_with_calibrated_ranges_is_accurate(self, calibration_dataset):
        result = calibrate_hsv_ranges(calibration_dataset.clean_images, calibration_dataset.labels)
        labeler = ColorSegmentationLabeler(hsv_ranges=result.as_labeler_ranges(), apply_cloud_filter=False)
        predictions = labeler.label_batch(calibration_dataset.clean_images)
        assert accuracy_score(calibration_dataset.labels, predictions) > 0.97

    def test_single_tile_input(self, calibration_dataset):
        result = calibrate_hsv_ranges(
            calibration_dataset.clean_images[0], calibration_dataset.labels[0], min_samples_per_class=5
        )
        assert set(result.hsv_ranges) == set(SeaIceClass)

    def test_requires_all_classes(self):
        images = np.full((1, 32, 32, 3), 240, dtype=np.uint8)
        labels = np.zeros((1, 32, 32), dtype=np.uint8)  # only thick ice present
        with pytest.raises(ValueError):
            calibrate_hsv_ranges(images, labels)

    def test_rejects_mismatched_shapes(self, calibration_dataset):
        with pytest.raises(ValueError):
            calibrate_hsv_ranges(calibration_dataset.clean_images, calibration_dataset.labels[:1])

    def test_reports_statistics(self, calibration_dataset):
        result = calibrate_hsv_ranges(calibration_dataset.clean_images, calibration_dataset.labels)
        assert set(result.samples_per_class) == set(SeaIceClass)
        for cls, (lo, med, hi) in result.class_value_percentiles.items():
            assert lo <= med <= hi
