"""Parallel-performance metrics: speedup, efficiency, throughput, Amdahl fits.

These back the scaling tables of the paper (Tables I–III) and the ablation
benches: every table row is a (worker-count, time) pair turned into a
speedup / efficiency / throughput figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "speedup",
    "efficiency",
    "throughput",
    "amdahl_speedup",
    "fit_amdahl_serial_fraction",
    "ScalingPoint",
    "ScalingTable",
]


def speedup(serial_time: float, parallel_time: float) -> float:
    """Classic speedup ``S = T_serial / T_parallel``."""
    if serial_time <= 0 or parallel_time <= 0:
        raise ValueError("times must be positive")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, workers: int) -> float:
    """Parallel efficiency ``E = S / p``."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return speedup(serial_time, parallel_time) / workers


def throughput(items: int, elapsed: float) -> float:
    """Items processed per second (the paper's ``Data/s`` column in Table III)."""
    if elapsed <= 0:
        raise ValueError("elapsed time must be positive")
    if items < 0:
        raise ValueError("items must be non-negative")
    return items / elapsed


def amdahl_speedup(workers: int, serial_fraction: float) -> float:
    """Amdahl's-law speedup for a given serial fraction ``f``: ``1 / (f + (1-f)/p)``."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def fit_amdahl_serial_fraction(workers: np.ndarray, speedups: np.ndarray) -> float:
    """Least-squares fit of Amdahl's serial fraction from measured speedups.

    Solving ``1/S = f + (1-f)/p`` for ``f`` at each point and averaging gives
    a robust closed-form estimate (points at ``p == 1`` carry no information
    and are ignored).
    """
    w = np.asarray(workers, dtype=np.float64)
    s = np.asarray(speedups, dtype=np.float64)
    if w.shape != s.shape or w.size == 0:
        raise ValueError("workers and speedups must be equal-length non-empty arrays")
    mask = w > 1
    if not mask.any():
        raise ValueError("need at least one measurement with more than one worker")
    w, s = w[mask], s[mask]
    f = (1.0 / s - 1.0 / w) / (1.0 - 1.0 / w)
    return float(np.clip(f.mean(), 0.0, 1.0))


@dataclass
class ScalingPoint:
    """One row of a scaling table: a worker count with its measured wall time."""

    workers: int
    time: float
    items: int | None = None

    def speedup_vs(self, serial_time: float) -> float:
        return speedup(serial_time, self.time)

    def efficiency_vs(self, serial_time: float) -> float:
        return efficiency(serial_time, self.time, self.workers)

    def throughput_value(self) -> float | None:
        return None if self.items is None else throughput(self.items, self.time)


@dataclass
class ScalingTable:
    """A full strong-scaling experiment: one serial baseline plus measured points."""

    points: list[ScalingPoint]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a scaling table needs at least one point")
        self.points = sorted(self.points, key=lambda p: p.workers)

    @property
    def serial_time(self) -> float:
        """Wall time of the smallest worker count (the baseline row)."""
        return self.points[0].time

    def speedups(self) -> list[float]:
        base = self.serial_time
        return [p.speedup_vs(base) for p in self.points]

    def efficiencies(self) -> list[float]:
        base = self.serial_time
        return [p.efficiency_vs(base) for p in self.points]

    def serial_fraction(self) -> float:
        workers = np.array([p.workers for p in self.points], dtype=float)
        return fit_amdahl_serial_fraction(workers, np.array(self.speedups()))

    def rows(self) -> list[dict]:
        """Table rows ready for printing (mirrors the layout of Tables I and III)."""
        base = self.serial_time
        out = []
        for p in self.points:
            row = {
                "workers": p.workers,
                "time_s": round(p.time, 4),
                "speedup": round(p.speedup_vs(base), 3),
                "efficiency": round(p.efficiency_vs(base), 3),
            }
            tput = p.throughput_value()
            if tput is not None:
                row["items_per_s"] = round(tput, 2)
            out.append(row)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"== {self.label or 'scaling table'} =="
        lines = [header]
        for row in self.rows():
            lines.append("  " + "  ".join(f"{k}={v}" for k, v in row.items()))
        return "\n".join(lines)
