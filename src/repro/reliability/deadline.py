"""Deadlines: one monotonic expiry time carried through every serving layer.

A :class:`Deadline` is created once at the edge (the HTTP handler, a CLI
call) and handed down — into the micro-batcher queue entry, through the
classifier's prediction seam, and into the execution backend's span
dispatch.  Every stage *checks* it before doing work and drops the request
the moment it can no longer be answered in time: the batcher skips dead
entries at flush, the fork backend refuses to dispatch a span whose
deadline has passed.  Work for a caller who already timed out is the purest
form of waste — under saturation it is also what turns a latency blip into
a congestion collapse, because the queue fills with requests nobody is
waiting for.

``Deadline(None)`` is the unbounded deadline: ``remaining()`` is ``None``,
``expired`` is always ``False`` and ``check()`` never raises, so call sites
do not need to special-case "no deadline configured".
"""

from __future__ import annotations

import time

from ..obs.metrics import get_registry

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before (or while) serving it.

    Subclasses :class:`TimeoutError` so pre-deadline callers that catch
    timeouts keep working.  ``stage`` names where the deadline was noticed;
    ``stage_timings`` (attached by the serving layer) carries per-stage
    elapsed milliseconds for the 504 response body.
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage
        self.stage_timings: dict | None = None


class Deadline:
    """A wall-clock budget pinned to the monotonic clock at creation time."""

    __slots__ = ("started_at", "expires_at")

    def __init__(self, timeout_s: float | None) -> None:
        self.started_at = time.monotonic()
        if timeout_s is None:
            self.expires_at: float | None = None
        else:
            timeout_s = float(timeout_s)
            if timeout_s < 0:
                raise ValueError("deadline timeout_s must be >= 0 (or None for unbounded)")
            self.expires_at = self.started_at + timeout_s

    @classmethod
    def none(cls) -> "Deadline":
        """The unbounded deadline (never expires)."""
        return cls(None)

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0), or ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def elapsed_s(self) -> float:
        """Seconds since the deadline was created (request age)."""
        return time.monotonic() - self.started_at

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            get_registry().counter(
                "repro_deadline_exceeded_total",
                "Deadline expiries noticed, by the stage that caught them",
                ("stage",),
            ).inc(stage=stage or "unknown")
            where = f" at stage {stage!r}" if stage else ""
            raise DeadlineExceeded(
                f"deadline exceeded{where} after {self.elapsed_s() * 1e3:.1f} ms", stage=stage
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rem = self.remaining()
        return f"Deadline(remaining={'inf' if rem is None else f'{rem:.3f}s'})"
