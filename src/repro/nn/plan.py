"""Compiled inference plans: shape-specialised forward execution into one arena.

Serving traffic drives the same forward pass thousands of times per second at
a handful of fixed tile shapes, yet the generic ``Module.forward`` path pays
allocator and page-fault cost on every call: a fresh offset-GEMM scratch, a
fresh padded-input buffer and a fresh output tensor per convolution, plus
intermediate activations for every pool/upsample/concat.

This module provides the machinery to *compile* a model once per concrete
input shape instead:

* :class:`PlanBuilder` walks a layer graph at compile time, computing every
  intermediate shape, pre-packing convolution weights into their GEMM layout
  (one transpose/reshape at compile time instead of per call) and reserving
  every buffer — activations, padded inputs and a single shared offset-GEMM
  scratch — inside one flat float32 **workspace arena**;
* :meth:`PlanBuilder.finalize` materialises the arena with a single
  allocation and *binds* every execution step to concrete views into it, so
  :meth:`CompiledPlan.run` executes fused conv+bias(+ReLU) steps with
  ``np.matmul(..., out=...)`` and in-place ops, allocating nothing but the
  final output tensor;
* :class:`PlanCache` keeps an LRU cache of compiled plans keyed by input
  shape, so a serving process holds one warm plan per traffic shape.

Plans snapshot the weights they were compiled from (the GEMM pack is a
copy): mutating the model's parameters afterwards requires recompiling
(:meth:`PlanCache.clear`).  Running one plan is serialised by a per-plan
lock — concurrent callers of the *same* plan are safe but do not overlap;
distinct plans (distinct shapes) run fully in parallel.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

import numpy as np

from .im2col import conv_output_size

__all__ = [
    "Slot",
    "PlanBuilder",
    "CompiledPlan",
    "PlanCache",
    "pack_conv_weights",
]

_ALIGN = 16  # float32 elements (64 bytes) — keeps every buffer cache-line aligned.


def pack_conv_weights(conv) -> tuple[np.ndarray, np.ndarray | None]:
    """Pack a ``Conv2D`` layer's weights into their ``(offset, channel)`` GEMM layout.

    This is the exact packing :meth:`PlanBuilder.conv2d` performs at compile
    time — one transpose+reshape copy of the weight into the contiguous
    ``(F, k*k*C)`` GEMM operand plus a ``(F, 1)`` bias column.  It is exposed
    so a shared-memory model store can pack once in the parent process and
    have every worker's plan bind the *same* physical copy (the layout is
    input-shape independent, so one pack serves every compiled shape).
    """
    f = conv.out_channels
    # One transpose+reshape per *compile* instead of per call.  The explicit
    # copy matters twice over: it keeps the GEMM operand contiguous, and it
    # snapshots the weights (for 1×1 kernels the transpose+reshape would
    # otherwise be a live view of the parameter).
    w_mat = np.array(conv.weight.value.transpose(0, 2, 3, 1).reshape(f, -1), dtype=np.float32)
    # np.array (not ascontiguousarray): the bias is already contiguous, so
    # only an explicit copy snapshots it alongside the packed weights.
    bias = np.array(conv.bias.value, dtype=np.float32).reshape(f, 1) if conv.use_bias else None
    return w_mat, bias


class Slot:
    """Compile-time reservation of one buffer inside the workspace arena.

    ``channels`` restricts the view to ``[c0:c1)`` along axis 1 — that is how
    concatenation is fused away: the encoder's skip convolution and the
    decoder's up-convolution both write straight into their channel slice of
    the merged buffer, so no ``np.concatenate`` ever runs.
    """

    __slots__ = ("offset", "shape", "channels")

    def __init__(self, offset: int, shape: tuple[int, ...], channels: tuple[int, int] | None = None):
        self.offset = offset
        self.shape = shape
        self.channels = channels

    @property
    def view_shape(self) -> tuple[int, ...]:
        if self.channels is None:
            return self.shape
        c0, c1 = self.channels
        return self.shape[:1] + (c1 - c0,) + self.shape[2:]

    def slice(self, c0: int, c1: int) -> "Slot":
        """A channel-sliced alias of this slot (no new arena space)."""
        if self.channels is not None:
            raise ValueError("cannot slice an already-sliced slot")
        if not 0 <= c0 < c1 <= self.shape[1]:
            raise ValueError(f"channel slice [{c0}:{c1}) outside 0..{self.shape[1]}")
        return Slot(self.offset, self.shape, (c0, c1))

    def resolve(self, arena: np.ndarray) -> np.ndarray:
        size = 1
        for dim in self.shape:
            size *= dim
        view = arena[self.offset : self.offset + size].reshape(self.shape)
        if self.channels is not None:
            view = view[:, self.channels[0] : self.channels[1]]
        return view


#: Sentinel slot: the plan's external input array, supplied at run time.
INPUT = Slot(-1, ())


class _Step:
    """One bound execution step.  ``bind`` resolves slots to arena views once
    at finalize time; ``run`` only does assignments and in-place math."""

    def bind(self, resolve: Callable[[Slot], np.ndarray]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, x: np.ndarray):  # pragma: no cover - interface
        raise NotImplementedError


class _PadCopyStep(_Step):
    """Copy an activation into the interior of its pre-zeroed padded buffer."""

    def __init__(self, src: Slot, dst: Slot, pad: int, src_shape: tuple[int, ...]):
        self.src, self.dst, self.pad = src, dst, pad
        self.src_shape = src_shape

    def bind(self, resolve):
        p = self.pad
        h, w = self.src_shape[2:]
        self._src = None if self.src is INPUT else resolve(self.src)
        self._interior = resolve(self.dst)[:, :, p : p + h, p : p + w]

    def run(self, x):
        self._interior[...] = x if self._src is None else self._src


class _ConvStep(_Step):
    """Fused convolution + bias (+ ReLU) through one batched GEMM.

    The weight matrix is pre-packed in ``(offset, channel)`` order at compile
    time.  At bind time the per-offset source/destination views of the cols
    assembly are precomputed, so each call is: k² strided slice copies, one
    ``np.matmul(..., out=...)``, an in-place bias add and an in-place ReLU.
    """

    def __init__(self, src: Slot, cols: Slot | None, out: Slot,
                 w_mat: np.ndarray, bias: np.ndarray | None,
                 kernel: int, stride: int, relu: bool):
        self.src, self.cols, self.out = src, cols, out
        self.w_mat, self.bias = w_mat, bias
        self.kernel, self.stride, self.relu = kernel, stride, relu

    def bind(self, resolve):
        n, c = self.src.view_shape[:2]
        f = self.out.view_shape[1]
        oh, ow = self.out.view_shape[2:]
        k, s = self.kernel, self.stride
        src = resolve(self.src)
        self._copies: list[tuple[np.ndarray, np.ndarray]] = []
        if self.cols is None:  # pointwise 1x1/stride-1: the input is the cols matrix
            cols = src
        else:
            cols = resolve(self.cols)
            for i in range(k):
                for j in range(k):
                    base = (i * k + j) * c
                    self._copies.append((
                        cols[:, base : base + c],
                        src[:, :, i : i + s * oh : s, j : j + s * ow : s],
                    ))
        self._cols2 = cols.reshape(n, k * k * c, oh * ow)
        self._out2 = resolve(self.out).reshape(n, f, oh * ow)

    def run(self, x):
        for dst, src in self._copies:
            dst[...] = src
        np.matmul(self.w_mat, self._cols2, out=self._out2)
        if self.bias is not None:
            self._out2 += self.bias
        if self.relu:
            np.maximum(self._out2, np.float32(0.0), out=self._out2)


class _MaxPoolStep(_Step):
    """k×k max pooling reduced straight into the output view."""

    def __init__(self, src: Slot, out: Slot, pool: int):
        self.src, self.out, self.pool = src, out, pool

    def bind(self, resolve):
        n, c, h, w = self.src.view_shape
        k = self.pool
        self._windows = resolve(self.src).reshape(n, c, h // k, k, w // k, k)
        self._out = resolve(self.out)

    def run(self, x):
        self._windows.max(axis=(3, 5), out=self._out)


class _UpsamplePadStep(_Step):
    """2× nearest-neighbour upsampling fused with the (0, 1) edge padding the
    paper's up-convolution needs (even kernels cannot pad symmetrically)."""

    def __init__(self, src: Slot, dst: Slot):
        self.src, self.dst = src, dst

    def bind(self, resolve):
        h, w = self.src.view_shape[2:]
        src = resolve(self.src)
        dst = resolve(self.dst)
        up = dst[:, :, : 2 * h, : 2 * w]
        self._src = src
        self._quads = (up[:, :, 0::2, 0::2], up[:, :, 0::2, 1::2],
                       up[:, :, 1::2, 0::2], up[:, :, 1::2, 1::2])
        self._edge_row, self._edge_row_src = dst[:, :, 2 * h, : 2 * w], dst[:, :, 2 * h - 1, : 2 * w]
        self._edge_col, self._edge_col_src = dst[:, :, :, 2 * w], dst[:, :, :, 2 * w - 1]

    def run(self, x):
        for quad in self._quads:
            quad[...] = self._src
        self._edge_row[...] = self._edge_row_src
        # Column after row so the bottom-right corner replicates correctly.
        self._edge_col[...] = self._edge_col_src


class _SoftmaxStep(_Step):
    """Channel softmax of the logits — the plan's one fresh allocation.

    With ``run_into`` the fresh allocation disappears too: the softmax is
    computed straight into a caller-provided buffer (e.g. a shared-memory
    output arena) with the exact operation sequence of
    :func:`repro.nn.losses.softmax`, so the results stay bit-identical.
    """

    def __init__(self, src: Slot):
        self.src = src

    def bind(self, resolve):
        self._logits = resolve(self.src)

    def run(self, x):
        from .losses import softmax

        return softmax(self._logits, axis=1)

    def run_into(self, x, out: np.ndarray) -> np.ndarray:
        # Mirrors losses.softmax op for op (max-subtract, exp, normalise) so
        # every float matches the allocating path bit for bit.
        np.subtract(self._logits, self._logits.max(axis=1, keepdims=True), out=out)
        np.exp(out, out=out)
        out /= out.sum(axis=1, keepdims=True)
        return out


class CompiledPlan:
    """One compiled, shape-specialised forward pass over a workspace arena."""

    def __init__(self, input_shape: tuple[int, ...], output_shape: tuple[int, ...],
                 arena: np.ndarray, steps: list[_Step]):
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(output_shape)
        self._arena = arena
        self._steps = steps
        self._lock = threading.Lock()
        #: per-step ``{"step", "calls", "total_ms"}`` accumulators while
        #: profiling is enabled; ``None`` (the default) keeps :meth:`run`'s
        #: hot path at a single ``is None`` branch
        self._profile: list[dict] | None = None

    @property
    def arena_nbytes(self) -> int:
        """Total bytes of the preallocated workspace arena."""
        return self._arena.nbytes

    def enable_profiling(self, enabled: bool = True) -> None:
        """Toggle per-step wall-time accumulation (resets prior samples)."""
        with self._lock:
            if enabled:
                self._profile = [
                    {"step": type(step).__name__.lstrip("_"), "calls": 0, "total_ms": 0.0}
                    for step in self._steps
                ]
            else:
                self._profile = None

    def profile_info(self) -> list[dict]:
        """Accumulated per-step timings (``[]`` unless profiling is enabled)."""
        with self._lock:
            cells = self._profile
            if cells is None:
                return []
            return [
                {
                    "index": index,
                    "step": cell["step"],
                    "calls": cell["calls"],
                    "total_ms": round(cell["total_ms"], 3),
                    "mean_ms": round(cell["total_ms"] / cell["calls"], 4) if cell["calls"] else 0.0,
                }
                for index, cell in enumerate(cells)
            ]

    def run(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Execute the plan on ``x`` (must match the compiled input shape).

        Serialised per plan: the steps write into shared arena views, so two
        concurrent runs of the same plan must not interleave.  With ``out``
        (a float32 array of the plan's output shape) the final softmax writes
        straight into the caller's buffer — the zero-copy seam the
        shared-memory fork backend uses to land probabilities in a shared
        output arena — producing bit-identical values to the allocating path.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.input_shape:
            raise ValueError(f"plan compiled for input {self.input_shape}, got {x.shape}")
        if out is not None and (out.shape != self.output_shape or out.dtype != np.float32):
            raise ValueError(
                f"plan output buffer must be float32 {self.output_shape}, "
                f"got {out.dtype} {out.shape}"
            )
        with self._lock:
            if self._profile is not None:
                return self._run_profiled(x, out)
            for step in self._steps[:-1]:
                step.run(x)
            last = self._steps[-1]
            if out is not None:
                return last.run_into(x, out)
            return last.run(x)

    def _run_profiled(self, x: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """The :meth:`run` body with per-step timing; caller holds ``_lock``."""
        result = None
        last_index = len(self._steps) - 1
        for index, step in enumerate(self._steps):
            start = time.perf_counter()
            if index == last_index and out is not None:
                result = step.run_into(x, out)
            else:
                result = step.run(x)
            cell = self._profile[index]
            cell["calls"] += 1
            cell["total_ms"] += (time.perf_counter() - start) * 1e3
        return result


class PlanBuilder:
    """Reserve buffers and record steps, then :meth:`finalize` into a plan.

    The builder is model-agnostic: it knows how to pad, convolve, pool and
    upsample between arena slots.  Model-specific compilers (e.g.
    :func:`repro.unet.compiled.compile_unet_plan`) walk their layer graph and
    drive these primitives.
    """

    def __init__(self, input_shape: tuple[int, ...], packed_weights: dict | None = None):
        if len(input_shape) != 4 or min(input_shape) < 1:
            raise ValueError(f"expected a concrete (N, C, H, W) input shape, got {input_shape}")
        self.input_shape = tuple(int(d) for d in input_shape)
        self._total = 0
        self._scratch_size = 0  # shared offset-GEMM cols region, sized to the largest conv
        self._scratch_slots: list[Slot] = []
        self._steps: list[_Step] = []
        #: ``{layer name: (w_mat, bias)}`` of externally pre-packed GEMM
        #: weights (see :func:`pack_conv_weights`) bound zero-copy instead of
        #: re-packing — this is how N fork workers share one physical copy.
        self._packed_weights = packed_weights or {}

    # ------------------------------------------------------------------ #
    # Arena reservation
    # ------------------------------------------------------------------ #
    def reserve(self, shape: tuple[int, ...]) -> Slot:
        """Reserve a dedicated float32 buffer of ``shape`` in the arena."""
        size = 1
        for dim in shape:
            size *= int(dim)
        slot = Slot(self._total, tuple(int(d) for d in shape))
        self._total += -(-size // _ALIGN) * _ALIGN
        return slot

    def _reserve_scratch(self, shape: tuple[int, ...]) -> Slot:
        """Reserve a view of the *shared* cols scratch (transient per step)."""
        size = 1
        for dim in shape:
            size *= int(dim)
        self._scratch_size = max(self._scratch_size, size)
        slot = Slot(-2, tuple(int(d) for d in shape))  # offset patched at finalize
        self._scratch_slots.append(slot)
        return slot

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    def conv2d(self, src: Slot, conv, relu: bool = False, out: Slot | None = None,
               name: str | None = None) -> Slot:
        """Append a convolution of ``src`` by a ``Conv2D`` layer.

        Pads into a dedicated pre-zeroed buffer when the layer pads, packs the
        weights into their ``(offset, channel)`` GEMM layout, and routes the
        GEMM output into ``out`` (e.g. a channel slice of a merged buffer)
        or a freshly reserved activation.  Returns the output slot.

        ``name`` keys the layer into the builder's ``packed_weights`` map:
        when a pre-packed ``(w_mat, bias)`` pair was supplied for it (e.g.
        views into a shared-memory weight arena) the step binds that pair
        directly instead of packing a private copy.
        """
        n, c, h, w = (self.input_shape if src is INPUT else src.view_shape)
        if c != conv.in_channels:
            raise ValueError(f"conv expects {conv.in_channels} channels, got {c}")
        k, s, p = conv.kernel_size, conv.stride, conv.padding
        oh = conv_output_size(h, k, s, p)
        ow = conv_output_size(w, k, s, p)

        if p > 0:
            padded = self.reserve((n, c, h + 2 * p, w + 2 * p))
            self._steps.append(_PadCopyStep(src, padded, p, (n, c, h, w)))
            src = padded
        elif src is INPUT:
            # Unpadded external input still needs a stable arena copy so the
            # cols views can be pre-bound.
            copied = self.reserve((n, c, h, w))
            self._steps.append(_PadCopyStep(INPUT, copied, 0, (n, c, h, w)))
            src = copied

        f = conv.out_channels
        packed = self._packed_weights.get(name) if name is not None else None
        if packed is not None:
            w_mat, bias = packed
            if w_mat.shape != (f, k * k * c):
                raise ValueError(
                    f"pre-packed weights for {name!r} have shape {w_mat.shape}, "
                    f"expected {(f, k * k * c)}"
                )
            if (bias is None) != (not conv.use_bias):
                raise ValueError(f"pre-packed bias for {name!r} does not match use_bias")
        else:
            w_mat, bias = pack_conv_weights(conv)

        cols = None if (k == 1 and s == 1) else self._reserve_scratch((n, k * k * c, oh, ow))
        if out is None:
            out = self.reserve((n, f, oh, ow))
        if out.view_shape != (n, f, oh, ow):
            raise ValueError(f"conv output {(n, f, oh, ow)} does not fit slot {out.view_shape}")
        self._steps.append(_ConvStep(src, cols, out, w_mat, bias, k, s, relu))
        return out

    def maxpool(self, src: Slot, pool: int) -> Slot:
        n, c, h, w = src.view_shape
        if h % pool or w % pool:
            raise ValueError(f"spatial size ({h}, {w}) not divisible by pool size {pool}")
        out = self.reserve((n, c, h // pool, w // pool))
        self._steps.append(_MaxPoolStep(src, out, pool))
        return out

    def upsample_pad(self, src: Slot) -> Slot:
        """2× upsample plus bottom/right edge padding (up-convolution input)."""
        n, c, h, w = src.view_shape
        out = self.reserve((n, c, 2 * h + 1, 2 * w + 1))
        self._steps.append(_UpsamplePadStep(src, out))
        return out

    def softmax_output(self, src: Slot) -> None:
        """Terminal step: channel softmax returned as a fresh tensor."""
        self._steps.append(_SoftmaxStep(src))
        self._output_shape = src.view_shape

    # ------------------------------------------------------------------ #
    def finalize(self) -> CompiledPlan:
        """Allocate the arena (one ``np.zeros``) and bind every step to it.

        Zero-initialising the arena is what makes padding free at run time:
        pad-buffer borders are written exactly once, here, and every other
        byte is overwritten by the steps on each call.
        """
        if not self._steps or not isinstance(self._steps[-1], _SoftmaxStep):
            raise RuntimeError("finalize requires a terminal softmax_output step")
        scratch_offset = self._total
        for slot in self._scratch_slots:
            slot.offset = scratch_offset
        total = self._total + self._scratch_size
        arena = np.zeros(total, dtype=np.float32)
        for step in self._steps:
            step.bind(lambda slot: slot.resolve(arena))
        return CompiledPlan(self.input_shape, self._output_shape, arena, self._steps)


class PlanCache:
    """Thread-safe LRU cache of :class:`CompiledPlan` keyed by input shape.

    ``compile_fn(shape)`` builds a plan on a miss; the least recently used
    plan is dropped once ``max_plans`` distinct shapes are live.  Counters
    (:meth:`info`) expose hit/miss/eviction behaviour for tests and ``/stats``.
    """

    def __init__(self, compile_fn: Callable[[tuple[int, ...]], CompiledPlan], max_plans: int = 8):
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self._compile_fn = compile_fn
        self.max_plans = int(max_plans)
        self._plans: "OrderedDict[tuple[int, ...], CompiledPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, shape: tuple[int, ...]) -> CompiledPlan:
        shape = tuple(int(d) for d in shape)
        with self._lock:
            plan = self._plans.get(shape)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(shape)
                return plan
            # Compile under the lock: a second thread racing the same shape
            # must not build (and allocate an arena for) a duplicate plan.
            self.misses += 1
            plan = self._compile_fn(shape)
            self._plans[shape] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
            return plan

    def shapes(self) -> list[tuple[int, ...]]:
        """Cached shapes, least recently used first."""
        with self._lock:
            return list(self._plans)

    def items(self) -> list[tuple[tuple[int, ...], CompiledPlan]]:
        """``(shape, plan)`` snapshot, least recently used first."""
        with self._lock:
            return list(self._plans.items())

    def clear(self) -> None:
        """Drop every cached plan (required after mutating model weights)."""
        with self._lock:
            self._plans.clear()

    def info(self) -> dict:
        with self._lock:
            return {
                "plans": len(self._plans),
                "max_plans": self.max_plans,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "arena_bytes": sum(p.arena_nbytes for p in self._plans.values()),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
