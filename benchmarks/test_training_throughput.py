"""Training-step throughput — cache-lean offset-GEMM engine vs the seed path.

The seed repo trained through an im2col convolution that pinned the full
``(N*out_h*out_w, C*k*k)`` unrolled matrix per layer, a max-pool that cached
a full-resolution boolean mask plus a tie-count tensor, a loss that upcast
every logit batch to float64, float64 dropout draws, and an Adam step that
allocated fresh temporaries per parameter.  This benchmark reconstructs that
exact path (im2col/mask engines plus faithful replicas of the seed loss,
dropout, ReLU and Adam below) and races it against the current engine on a
depth-3 U-Net train step, reporting img/s and the bytes each layer type pins
between forward and backward.  Results land in
``BENCH_training_throughput.json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.distributed import DGXTrainingModel, PipeRingAllReducer
from repro.nn import Adam, CategoricalCrossEntropy, Conv2D, MaxPool2D, workspace_nbytes
from repro.nn.layers import Dropout, ReLU, UpSample2D
from repro.unet import UNet, UNetConfig
from repro.unet.trainer import UNetTrainer

from conftest import BENCH_SMOKE, print_rows, update_bench_json, write_bench_json

DEPTH = 3
BASE_CHANNELS = 16
TILE = 32 if BENCH_SMOKE else 64
BATCH = 4 if BENCH_SMOKE else 8
ROUNDS = 2 if BENCH_SMOKE else 8
MIN_CACHE_RATIO = 4.0


# --------------------------------------------------------------------------- #
# Faithful replicas of the seed training path (v0 git tree), swapped into the
# reference model so the race measures the seed step, not a hybrid.
# --------------------------------------------------------------------------- #
def seed_softmax(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=axis, keepdims=True)
    exp = np.exp(z)
    return (exp / exp.sum(axis=axis, keepdims=True)).astype(np.float32)


class SeedCategoricalCrossEntropy(CategoricalCrossEntropy):
    """Seed loss: float64 softmax, open-mesh fancy indexing, dense onehot."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        n, _, h, w = logits.shape
        target_idx = np.asarray(targets).astype(np.intp)
        probs = seed_softmax(logits, axis=1)
        n_idx = np.arange(n)[:, None, None]
        h_idx = np.arange(h)[None, :, None]
        w_idx = np.arange(w)[None, None, :]
        picked = np.clip(probs[n_idx, target_idx, h_idx, w_idx], 1e-12, 1.0)
        weights = np.ones_like(picked, dtype=np.float32)
        self._cache = (probs, target_idx, weights)
        return float(-(weights * np.log(picked)).sum() / weights.sum())

    def backward(self) -> np.ndarray:
        probs, target_idx, weights = self._cache
        n, _, h, w = probs.shape
        onehot = np.zeros_like(probs)
        n_idx = np.arange(n)[:, None, None]
        h_idx = np.arange(h)[None, :, None]
        w_idx = np.arange(w)[None, None, :]
        onehot[n_idx, target_idx, h_idx, w_idx] = 1.0
        grad = (probs - onehot) * weights[:, None, :, :]
        return (grad / weights.sum()).astype(np.float32)


class SeedReLU(ReLU):
    """Seed ReLU: extra float32 cast copy on the backward pass."""

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, 0.0).astype(np.float32)


class SeedDropout(Dropout):
    """Seed dropout: float64 uniforms, bool compare, cast, divide."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep).astype(np.float32) / keep
        return x * self._mask


class SeedUpSample2D(UpSample2D):
    """Seed up-sampling: two chained ``repeat`` materialisations."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._input_shape = x.shape
        return x.repeat(self.factor, axis=2).repeat(self.factor, axis=3)


class SeedAdam(Adam):
    """Seed Adam: fresh temporaries for every moment update and step."""

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SeedTrainer(UNetTrainer):
    """Seed train step: always back-propagates all the way to the input tensor
    (the seed had no way to skip the unused first-layer input gradient)."""

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.train()
        logits = self.model.forward(x)
        loss = self.loss_fn.forward(logits, y)
        self.optimizer.zero_grad()
        self.model.backward(self.loss_fn.backward(), need_input_grad=True)
        self.optimizer.step()
        return loss


def build_trainer(seed_path: bool, dropout: float = 0.1) -> UNetTrainer:
    model = UNet(UNetConfig(depth=DEPTH, base_channels=BASE_CHANNELS, dropout=dropout, seed=3))
    if seed_path:
        for module in model.modules():
            if isinstance(module, Conv2D):
                module.engine = "im2col"
            elif isinstance(module, MaxPool2D):
                module.engine = "mask"
            elif isinstance(module, ReLU):
                module.__class__ = SeedReLU
            elif isinstance(module, Dropout):
                module.__class__ = SeedDropout
            elif isinstance(module, UpSample2D):
                module.__class__ = SeedUpSample2D
    optimizer_cls = SeedAdam if seed_path else Adam
    trainer_cls = SeedTrainer if seed_path else UNetTrainer
    trainer = trainer_cls(model=model, optimizer=optimizer_cls(model.parameters(), lr=1e-3))
    if seed_path:
        trainer.loss_fn = SeedCategoricalCrossEntropy()
    return trainer


def layer_cache_bytes(model: UNet) -> dict[str, int]:
    """Bytes pinned per layer type after a forward/backward pair."""
    totals: dict[str, int] = {}
    for module in model.modules():
        name = type(module).__name__.replace("Seed", "")
        totals[name] = totals.get(name, 0) + module.cache_nbytes(recurse=False)
    return {name: size for name, size in totals.items() if size}


@pytest.mark.benchmark(group="training")
def test_training_throughput_fast_vs_seed_path():
    """The offset-GEMM training step must beat the seed im2col step >= 2x in
    img/s while pinning >= 4x fewer bytes in Conv2D and MaxPool2D caches."""
    rng = np.random.default_rng(42)
    x = rng.random((BATCH, 3, TILE, TILE), dtype=np.float32)
    y = rng.integers(0, 3, size=(BATCH, TILE, TILE))

    trainers = {"seed": build_trainer(seed_path=True), "fast": build_trainer(seed_path=False)}
    losses = {name: trainer.train_step(x, y) for name, trainer in trainers.items()}  # warmup
    caches = {name: layer_cache_bytes(trainer.model) for name, trainer in trainers.items()}

    # Interleave the timed rounds so machine noise hits both paths equally,
    # and score each path by its best round.
    best = {name: float("inf") for name in trainers}
    for _ in range(ROUNDS):
        for name, trainer in trainers.items():
            start = time.perf_counter()
            losses[name] = trainer.train_step(x, y)
            best[name] = min(best[name], time.perf_counter() - start)

    img_s = {name: BATCH / elapsed for name, elapsed in best.items()}
    speedup = img_s["fast"] / img_s["seed"]
    conv_ratio = caches["seed"]["Conv2D"] / caches["fast"]["Conv2D"]
    pool_ratio = caches["seed"]["MaxPool2D"] / caches["fast"]["MaxPool2D"]

    rows = [
        {"path": name, "step_ms": round(best[name] * 1000, 1), "img_per_s": round(img_s[name], 2),
         "conv_cache_mb": round(caches[name]["Conv2D"] / 1e6, 2),
         "pool_cache_mb": round(caches[name]["MaxPool2D"] / 1e6, 3),
         "total_cache_mb": round(sum(caches[name].values()) / 1e6, 2)}
        for name in ("seed", "fast")
    ]
    print_rows(
        f"U-Net train step (depth {DEPTH}, {BASE_CHANNELS} base ch, batch {BATCH} of {TILE}x{TILE}): "
        f"speedup {speedup:.2f}x, conv cache /{conv_ratio:.1f}, pool cache /{pool_ratio:.1f}",
        rows,
    )
    write_bench_json("training_throughput", {
        "config": {"depth": DEPTH, "base_channels": BASE_CHANNELS, "tile": TILE,
                   "batch": BATCH, "rounds": ROUNDS, "smoke": BENCH_SMOKE},
        "img_per_s": {name: round(value, 3) for name, value in img_s.items()},
        "step_seconds": {name: round(value, 5) for name, value in best.items()},
        "speedup": round(speedup, 3),
        "cached_bytes_per_layer": caches,
        "cache_reduction": {"Conv2D": round(conv_ratio, 2), "MaxPool2D": round(pool_ratio, 2)},
        "shared_workspace_bytes": workspace_nbytes(),
        "loss": {name: round(value, 5) for name, value in losses.items()},
    })

    assert conv_ratio >= MIN_CACHE_RATIO, f"Conv2D cache only dropped {conv_ratio:.2f}x"
    assert pool_ratio >= MIN_CACHE_RATIO, f"MaxPool2D cache only dropped {pool_ratio:.2f}x"
    # Shared CI runners are too noisy to gate on a timing ratio — the smoke
    # run only records the numbers; the full-scale run enforces the 2x gate.
    if not BENCH_SMOKE:
        assert speedup >= 2.0, (
            f"fast path reached {img_s['fast']:.2f} img/s vs seed {img_s['seed']:.2f} img/s "
            f"({speedup:.2f}x < 2.0x)"
        )


@pytest.mark.benchmark(group="training")
def test_training_step_equivalence_fast_vs_seed_path():
    """With dropout disabled both paths are the same function: per-step losses
    must track to float32 GEMM-order noise across several optimisation steps."""
    rng = np.random.default_rng(7)
    x = rng.random((2, 3, TILE, TILE), dtype=np.float32)
    y = rng.integers(0, 3, size=(2, TILE, TILE))
    seed_tr = build_trainer(seed_path=True, dropout=0.0)
    fast_tr = build_trainer(seed_path=False, dropout=0.0)
    for step in range(3):
        loss_seed = seed_tr.train_step(x, y)
        loss_fast = fast_tr.train_step(x, y)
        assert loss_fast == pytest.approx(loss_seed, abs=1e-4), f"diverged at step {step}"


# --------------------------------------------------------------------------- #
# Multi-process all-reduce vs the DGX performance model
# --------------------------------------------------------------------------- #
ALLREDUCE_ROUNDS = 2 if BENCH_SMOKE else 4
ALLREDUCE_SMALL = 20_000    # float64 elements
ALLREDUCE_LARGE = 200_000


def _measure_pipe_ring(workers: int, elements: int, rounds: int) -> float:
    """Best-of-N wall time of one PipeRingAllReducer.allreduce call."""
    rng = np.random.default_rng(workers * 1000 + elements)
    buffers = [rng.normal(size=(elements,)) for _ in range(workers)]
    reducer = PipeRingAllReducer(workers, timeout_s=60.0)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        results = reducer.allreduce(buffers)
        best = min(best, time.perf_counter() - start)
    np.testing.assert_allclose(results[0], np.mean(buffers, axis=0), rtol=1e-9)
    return best


@pytest.mark.benchmark(group="training")
def test_allreduce_cost_matches_perfmodel():
    """Calibrate the DGX model's communication term from real multi-process
    ring all-reduces at p=2 (two buffer sizes isolate bandwidth from fixed
    overhead), predict the p=4 cost, and validate against a p=4 measurement.
    The measured/predicted ratio lands in BENCH_training_throughput.json."""
    t_small = _measure_pipe_ring(2, ALLREDUCE_SMALL, ALLREDUCE_ROUNDS)
    t_large = _measure_pipe_ring(2, ALLREDUCE_LARGE, ALLREDUCE_ROUNDS)

    # At p=2 the ring model is t = S/BW + 2L (S = buffer bytes): two sizes
    # give effective bandwidth (pickling + pipes included) and fixed latency.
    small_bytes = ALLREDUCE_SMALL * 8
    large_bytes = ALLREDUCE_LARGE * 8
    bandwidth = (large_bytes - small_bytes) / max(t_large - t_small, 1e-9)
    latency = max((t_small - small_bytes / bandwidth) / 2.0, 1e-6)

    model = DGXTrainingModel(
        model_megabytes=large_bytes / 1e6,
        interconnect_gb_per_s=bandwidth / 1e9,
        allreduce_latency_s=latency,
    )
    predicted = model.allreduce_time_per_step(4)
    measured = _measure_pipe_ring(4, ALLREDUCE_LARGE, ALLREDUCE_ROUNDS)
    ratio = measured / predicted

    print_rows(
        f"pipe-ring all-reduce vs perf model ({ALLREDUCE_LARGE} float64, "
        f"bw {bandwidth / 1e6:.0f} MB/s, latency {latency * 1e3:.1f} ms)",
        [{"workers": 2, "measured_ms": round(t_large * 1e3, 2)},
         {"workers": 4, "measured_ms": round(measured * 1e3, 2),
          "predicted_ms": round(predicted * 1e3, 2),
          "measured_over_predicted": round(ratio, 3)}],
    )
    update_bench_json("training_throughput", "allreduce_perfmodel", {
        "elements": ALLREDUCE_LARGE,
        "rounds": ALLREDUCE_ROUNDS,
        "smoke": BENCH_SMOKE,
        "calibration": {
            "p2_small_s": round(t_small, 5),
            "p2_large_s": round(t_large, 5),
            "effective_bandwidth_gb_per_s": round(bandwidth / 1e9, 4),
            "fixed_latency_s": round(latency, 5),
        },
        "p4_measured_s": round(measured, 5),
        "p4_predicted_s": round(predicted, 5),
        "measured_over_predicted": round(ratio, 3),
    })

    # Process spawn / teardown noise dominates at this scale, so the gate is
    # deliberately loose: the model must be right to within an order of
    # magnitude, which still catches a broken cost formula outright.
    assert predicted > 0
    if not BENCH_SMOKE:
        assert 0.05 <= ratio <= 20.0, (
            f"perf model off by more than an order of magnitude: measured "
            f"{measured * 1e3:.2f} ms vs predicted {predicted * 1e3:.2f} ms"
        )
