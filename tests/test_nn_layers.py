"""Tests for repro.nn layers: gradient checks and behavioural properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2D,
    Concat,
    Conv2D,
    Dropout,
    MaxPool2D,
    ReLU,
    UpConv2D,
    UpSample2D,
    check_layer_gradients,
    im2col,
    col2im,
    conv_output_size,
)


class TestGradientChecks:
    """Analytic backward passes must match central finite differences."""

    def test_conv2d(self):
        check_layer_gradients(Conv2D(2, 3, kernel_size=3, seed=1), (2, 2, 6, 6))

    def test_conv2d_stride_and_no_bias(self):
        check_layer_gradients(Conv2D(1, 2, kernel_size=3, stride=2, padding=1, use_bias=False, seed=2), (1, 1, 7, 7))

    def test_conv2d_1x1(self):
        check_layer_gradients(Conv2D(3, 2, kernel_size=1, padding=0, seed=3), (2, 3, 4, 4))

    def test_relu(self):
        check_layer_gradients(ReLU(), (2, 3, 5, 5))

    def test_maxpool(self):
        check_layer_gradients(MaxPool2D(2), (2, 2, 6, 6))

    def test_upsample(self):
        check_layer_gradients(UpSample2D(2), (1, 2, 4, 4))

    def test_upconv(self):
        check_layer_gradients(UpConv2D(2, 1, seed=4), (1, 2, 4, 4))

    def test_batchnorm(self):
        check_layer_gradients(BatchNorm2D(3), (4, 3, 5, 5), tolerance=5e-2)


class TestEngineParity:
    """The offset-GEMM training engine must reproduce the im2col/col2im
    reference — outputs and every gradient — across conv geometries."""

    CONFIGS = [
        # (kernel, stride, padding, input_shape)
        (1, 1, 0, (2, 3, 6, 6)),
        (1, 2, 0, (2, 2, 8, 8)),
        (2, 1, 0, (1, 2, 7, 7)),
        (2, 2, 0, (2, 2, 8, 8)),
        (3, 1, 0, (2, 2, 7, 7)),
        (3, 1, "same", (2, 3, 6, 6)),
        (3, 2, 1, (1, 3, 9, 9)),
        (3, 2, "same", (2, 2, 8, 8)),
    ]

    @pytest.mark.parametrize("kernel,stride,padding,shape", CONFIGS)
    def test_offset_matches_im2col_reference(self, kernel, stride, padding, shape):
        rng = np.random.default_rng(kernel * 100 + stride * 10 + shape[1])
        fast = Conv2D(shape[1], 4, kernel_size=kernel, stride=stride, padding=padding,
                      seed=11, engine="offset")
        ref = Conv2D(shape[1], 4, kernel_size=kernel, stride=stride, padding=padding,
                     seed=11, engine="im2col")
        x = rng.normal(size=shape).astype(np.float32)
        out_fast, out_ref = fast(x), ref(x)
        np.testing.assert_allclose(out_fast, out_ref, atol=1e-5)

        upstream = rng.normal(size=out_fast.shape).astype(np.float32)
        grad_fast, grad_ref = fast.backward(upstream), ref.backward(upstream)
        # Tensor-scale relative error: float32 GEMM-order noise on individual
        # near-zero entries must not mask a genuine mismatch elsewhere.
        for a, b in ((grad_fast, grad_ref),
                     (fast.weight.grad, ref.weight.grad),
                     (fast.bias.grad, ref.bias.grad)):
            scale = max(float(np.abs(b).max()), 1e-8)
            assert float(np.abs(a - b).max()) / scale <= 1e-4

    @pytest.mark.parametrize("kernel,stride,padding,shape", CONFIGS)
    def test_offset_gradcheck(self, kernel, stride, padding, shape):
        layer = Conv2D(shape[1], 3, kernel_size=kernel, stride=stride, padding=padding, seed=2)
        # h=1e-2 keeps the float32 central differences out of cancellation
        # noise across every geometry (the engines themselves agree to 1e-6).
        check_layer_gradients(layer, shape, seed=1, h=1e-2)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, engine="winograd")
        with pytest.raises(ValueError):
            MaxPool2D(2, engine="bitmask")

    def test_skip_input_grad_still_accumulates_parameter_grads(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        full = Conv2D(2, 3, seed=5)
        skip = Conv2D(2, 3, seed=5)
        upstream = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        full(x)
        skip(x)
        assert full.backward(upstream, need_input_grad=True) is not None
        assert skip.backward(upstream, need_input_grad=False) is None
        np.testing.assert_allclose(skip.weight.grad, full.weight.grad, atol=1e-6)
        np.testing.assert_allclose(skip.bias.grad, full.bias.grad, atol=1e-6)

    def test_maxpool_engines_agree_without_ties(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        fast, ref = MaxPool2D(2), MaxPool2D(2, engine="mask")
        np.testing.assert_array_equal(fast(x), ref(x))
        upstream = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(fast.backward(upstream), ref.backward(upstream), atol=1e-6)

    def test_maxpool_tie_breaking_routes_to_first_maximum(self):
        """Ties send the whole gradient to the first maximum in row-major
        window order (the index engine's contract); the seed mask engine
        split it evenly instead."""
        x = np.array([[[[1.0, 1.0], [0.0, 1.0]]]], dtype=np.float32)
        upstream = np.array([[[[3.0]]]], dtype=np.float32)

        pool = MaxPool2D(2)
        assert pool(x)[0, 0, 0, 0] == 1.0
        grad = pool.backward(upstream)
        np.testing.assert_array_equal(grad[0, 0], [[3.0, 0.0], [0.0, 0.0]])

        legacy = MaxPool2D(2, engine="mask")
        legacy(x)
        np.testing.assert_allclose(legacy.backward(upstream)[0, 0],
                                   [[1.0, 1.0], [0.0, 1.0]])


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 2, 2, 0) == 4
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 3, stride=1, pad=1)
        assert cols.shape == (2 * 6 * 6, 3 * 3 * 3)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, stride=1, pad=1)).sum())
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_col2im_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            col2im(np.zeros((4, 4)), (1, 1, 5, 5), 3, 3)


class TestConvBehaviour:
    def test_same_padding_preserves_size(self):
        conv = Conv2D(3, 8, kernel_size=3, padding="same")
        out = conv(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 16, 16)

    def test_identity_kernel(self):
        conv = Conv2D(1, 1, kernel_size=1, padding=0, use_bias=False)
        conv.weight.value[...] = 1.0
        x = np.random.default_rng(0).normal(size=(1, 1, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(conv(x), x, rtol=1e-6)

    def test_bias_adds_constant(self):
        conv = Conv2D(1, 1, kernel_size=1, padding=0)
        conv.weight.value[...] = 0.0
        conv.bias.value[...] = 2.5
        out = conv(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert np.all(out == 2.5)

    def test_rejects_wrong_channel_count(self):
        conv = Conv2D(3, 4)
        with pytest.raises(ValueError):
            conv(np.zeros((1, 2, 8, 8), dtype=np.float32))

    def test_rejects_bad_padding_string(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, padding="valid-ish")

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Conv2D(1, 1).backward(np.zeros((1, 1, 3, 3), dtype=np.float32))


class TestSimpleLayers:
    def test_relu_clips_negative(self):
        out = ReLU()(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2D(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2)(np.zeros((1, 1, 5, 5), dtype=np.float32))

    def test_upsample_repeats(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = UpSample2D(2)(x)
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == 1.0 and out[0, 0, 0, 1] == 1.0

    def test_upconv_doubles_spatial_size(self):
        out = UpConv2D(4, 2)(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 2, 16, 16)

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.5, seed=0)
        layer.training = False
        x = np.ones((2, 3, 4, 4), dtype=np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_preserves_expectation_in_train(self):
        layer = Dropout(0.3, seed=1)
        x = np.ones((1, 1, 64, 64), dtype=np.float32)
        out = layer(x)
        assert abs(out.mean() - 1.0) < 0.1
        assert (out == 0).any()

    def test_dropout_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_mask_is_float32_single_scale(self):
        layer = Dropout(0.4, seed=2)
        x = np.ones((2, 3, 16, 16), dtype=np.float32)
        out = layer(x)
        assert out.dtype == np.float32
        assert layer._mask.dtype == np.float32
        # Inverted dropout: surviving values are exactly x / keep.
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.6, rtol=1e-6)

    def test_dropout_backward_routes_through_mask(self):
        layer = Dropout(0.5, seed=3)
        x = np.ones((1, 1, 32, 32), dtype=np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_concat_and_backward_split(self):
        concat = Concat()
        a = np.ones((1, 2, 4, 4), dtype=np.float32)
        b = np.zeros((1, 3, 4, 4), dtype=np.float32)
        merged = concat(a, b)
        assert merged.shape == (1, 5, 4, 4)
        ga, gb = concat.backward(np.ones_like(merged))
        assert ga.shape == a.shape and gb.shape == b.shape

    def test_concat_rejects_mismatched_spatial(self):
        with pytest.raises(ValueError):
            Concat()(np.zeros((1, 2, 4, 4)), np.zeros((1, 2, 8, 8)))

    def test_batchnorm_normalises(self):
        layer = BatchNorm2D(2)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(8, 2, 6, 6)).astype(np.float32)
        out = layer(x)
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1

    def test_batchnorm_eval_uses_running_stats(self):
        layer = BatchNorm2D(1)
        rng = np.random.default_rng(1)
        for _ in range(20):
            layer(rng.normal(2.0, 1.0, size=(4, 1, 4, 4)).astype(np.float32))
        layer.training = False
        out = layer(np.full((1, 1, 4, 4), 2.0, dtype=np.float32))
        assert abs(out.mean()) < 0.5
