"""Tests for the HTTP serving front-end (in-process ThreadingHTTPServer)."""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.serving import InferenceService, ModelRegistry, ServiceConfig, make_server
from repro.unet import InferenceConfig, SceneClassifier, UNet, UNetConfig


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live service on an ephemeral port, backed by a one-model registry."""
    root = tmp_path_factory.mktemp("registry")
    model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=17))
    registry = ModelRegistry(str(root))
    registry.publish("seaice", 1, model,
                     inference=InferenceConfig(tile_size=32, apply_cloud_filter=False))
    service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.002))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1], service, model
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, served):
        port, _, _ = served
        status, payload = _request(port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == ["seaice"]
        assert payload["uptime_s"] >= 0

    def test_models_listing(self, served):
        port, _, _ = served
        status, payload = _request(port, "GET", "/models")
        assert status == 200
        assert payload["models"][0]["name"] == "seaice"
        assert payload["models"][0]["latest"] == 1

    def test_predict_single_tile_matches_engine(self, served, rng):
        port, _, model = served
        tile = rng.integers(0, 255, size=(32, 32, 3), dtype=np.uint8)
        status, payload = _request(port, "POST", "/predict",
                                   {"model": "seaice", "tile": tile.tolist()})
        assert status == 200
        assert payload["model"] == "seaice" and payload["version"] == 1
        expected = SceneClassifier(
            model=model, config=InferenceConfig(tile_size=32, apply_cloud_filter=False)
        ).classify_tiles(tile[None])[0]
        np.testing.assert_array_equal(np.asarray(payload["class_map"], dtype=np.uint8), expected)
        assert sum(payload["class_counts"].values()) == 32 * 32

    def test_predict_batch_and_default_model(self, served, rng):
        port, _, _ = served
        tiles = rng.integers(0, 255, size=(3, 16, 16, 3), dtype=np.uint8)
        # Single registered model → "model" key may be omitted.
        status, payload = _request(port, "POST", "/predict", {"tiles": tiles.tolist()})
        assert status == 200
        assert payload["num_tiles"] == 3
        maps = np.asarray(payload["class_map"], dtype=np.uint8)
        assert maps.shape == (3, 16, 16)

    def test_predict_proba_payload(self, served, rng):
        port, _, _ = served
        tile = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
        status, payload = _request(port, "POST", "/predict",
                                   {"tile": tile.tolist(), "proba": True})
        assert status == 200
        proba = np.asarray(payload["proba"], dtype=np.float32)
        assert proba.shape == (3, 16, 16)
        np.testing.assert_allclose(proba.sum(axis=0), 1.0, atol=1e-4)

    def test_concurrent_clients_coalesce_into_batches(self, served, rng):
        port, service, _ = served
        tiles = rng.integers(0, 255, size=(12, 16, 16, 3), dtype=np.uint8)
        results: list[int] = []

        def client(i: int) -> None:
            status, _ = _request(port, "POST", "/predict", {"tile": tiles[i].tolist()})
            results.append(status)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(len(tiles))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [200] * len(tiles)
        stats = service.batcher_stats()["seaice/1"]
        assert stats["requests"] >= len(tiles)

    def test_stats_endpoint(self, served):
        port, _, _ = served
        status, payload = _request(port, "GET", "/stats")
        assert status == 200
        assert "batchers" in payload


class TestErrorHandling:
    def test_unknown_path_404(self, served):
        port, _, _ = served
        assert _request(port, "GET", "/nope")[0] == 404
        assert _request(port, "POST", "/nope")[0] == 404

    def test_unknown_model_400(self, served, rng):
        port, _, _ = served
        tile = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8).tolist()
        status, payload = _request(port, "POST", "/predict", {"model": "ghost", "tile": tile})
        assert status == 400
        assert "unknown model" in payload["error"]

    def test_missing_tile_400(self, served):
        port, _, _ = served
        status, payload = _request(port, "POST", "/predict", {"model": "seaice"})
        assert status == 400
        assert "tile" in payload["error"]

    def test_both_tile_and_tiles_400(self, served, rng):
        port, _, _ = served
        tile = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8).tolist()
        status, _ = _request(port, "POST", "/predict", {"tile": tile, "tiles": [tile]})
        assert status == 400

    def test_malformed_json_400(self, served):
        port, _, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("POST", "/predict", body="{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_bad_tile_shape_400(self, served):
        port, _, _ = served
        status, payload = _request(port, "POST", "/predict", {"tile": [[1, 2], [3, 4]]})
        assert status == 400

    def test_out_of_range_pixels_400(self, served):
        if np.lib.NumpyVersion(np.__version__) < "2.0.0":
            pytest.skip("NumPy < 2 silently wraps out-of-range uint8 values")
        port, _, _ = served
        status, payload = _request(port, "POST", "/predict",
                                   {"tile": [[[256, 0, 0], [0, -1, 0]]]})
        assert status == 400
        assert "uint8" in payload["error"]


class TestHotSwapEviction:
    def test_superseded_batcher_and_warm_model_retired(self, tmp_path, rng):
        """An unversioned request after a version bump stops serving the old
        version: its micro-batcher is closed and its warm model dropped."""
        model = UNet(UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=23))
        registry = ModelRegistry(str(tmp_path / "reg"))
        inference = InferenceConfig(tile_size=16, apply_cloud_filter=False)
        registry.publish("m", 1, model, inference=inference)
        service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.0))
        try:
            tile = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8)
            assert service.predict_payload({"tile": tile.tolist()})["version"] == 1
            assert list(service.batcher_stats()) == ["m/1"]

            registry.publish("m", 2, model, inference=inference)
            assert service.predict_payload({"tile": tile.tolist()})["version"] == 2
            stats = service.batcher_stats()
            assert "m/2" in stats and "m/1" not in stats
            assert registry.loaded_versions("m") == [("m", 2)]

            # Pinning the old version still works (reloaded on demand).
            pinned = service.predict_payload({"tile": tile.tolist(), "version": 1})
            assert pinned["version"] == 1
        finally:
            service.close()


class TestServiceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"batch_window_s": -0.1}, {"request_timeout_s": 0},
    ])
    def test_rejects_bad_options(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestWarmModelStats:
    def test_stats_reports_warm_occupancy_and_eviction(self, tmp_path, rng):
        registry = ModelRegistry(str(tmp_path / "reg"), max_warm=1)
        inference = InferenceConfig(tile_size=16, apply_cloud_filter=False)
        for name in ("a", "b"):
            model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=ord(name)))
            registry.publish(name, 1, model, inference=inference)
        service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.0))
        try:
            tile = rng.integers(0, 255, size=(16, 16, 3), dtype=np.uint8).tolist()
            assert service.predict_payload({"tile": tile, "model": "a"})["model"] == "a"
            payload = service.stats_payload()
            assert payload["warm_models"] == {"count": 1, "max_warm": 1, "loaded": ["a/1"]}

            # Serving model b evicts a (max_warm=1) and closes a's batcher.
            assert service.predict_payload({"tile": tile, "model": "b"})["model"] == "b"
            payload = service.stats_payload()
            assert payload["warm_models"]["loaded"] == ["b/1"]
            assert list(payload["batchers"]) == ["b/1"]
        finally:
            service.close()

    def test_closed_service_stops_listening_for_evictions(self, tmp_path, rng):
        registry = ModelRegistry(str(tmp_path / "reg"), max_warm=1)
        inference = InferenceConfig(tile_size=16, apply_cloud_filter=False)
        for name in ("a", "b"):
            model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=ord(name)))
            registry.publish(name, 1, model, inference=inference)
        service = InferenceService(registry, ServiceConfig(port=0, batch_window_s=0.0))
        service.close()
        assert registry._evict_listeners == []
        # Evictions after close never touch the dead service.
        registry.classifier("a")
        registry.classifier("b")
        assert registry.loaded_versions() == [("b", 1)]
