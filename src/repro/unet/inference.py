"""U-Net inference workflow (paper §III-C.2, Figure 9).

A trained model classifies new Sentinel-2 scenes by: splitting the big scene
into 256×256 tiles, optionally running the thin-cloud/shadow filter on each
tile, predicting per-pixel classes, and stitching the tile predictions back
into a full-scene classification map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cloudshadow import CloudShadowFilter
from ..data.loader import image_to_tensor
from ..imops.resize import assemble_from_tiles, split_into_tiles
from .model import UNet

__all__ = ["InferenceConfig", "SceneClassifier", "predict_tiles"]


@dataclass(frozen=True)
class InferenceConfig:
    """Options of the scene-inference pipeline."""

    tile_size: int = 256
    apply_cloud_filter: bool = True
    batch_size: int = 8


def predict_tiles(
    model: UNet,
    tiles: np.ndarray,
    batch_size: int = 8,
    cloud_filter: CloudShadowFilter | None = None,
) -> np.ndarray:
    """Predict class maps for a ``(N, H, W, 3)`` uint8 tile stack.

    When ``cloud_filter`` is given each tile is filtered before prediction,
    which is the paper's recommended inference configuration.
    """
    stack = np.asarray(tiles)
    if stack.ndim != 4 or stack.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")

    outputs = []
    for start in range(0, stack.shape[0], batch_size):
        batch = stack[start : start + batch_size]
        if cloud_filter is not None:
            batch = cloud_filter.apply_batch(batch)
        x = image_to_tensor(batch)
        outputs.append(model.predict(x))
    return np.concatenate(outputs, axis=0)


@dataclass
class SceneClassifier:
    """Classifies whole scenes with a trained U-Net (tile → filter → predict → stitch)."""

    model: UNet
    config: InferenceConfig = field(default_factory=InferenceConfig)
    cloud_filter: CloudShadowFilter = field(default_factory=CloudShadowFilter)

    def classify_scene(self, scene_rgb: np.ndarray) -> np.ndarray:
        """Return the per-pixel class map of a full ``(H, W, 3)`` scene."""
        scene = np.asarray(scene_rgb)
        if scene.ndim != 3 or scene.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) scene, got shape {scene.shape}")
        tiles, grid = split_into_tiles(scene, tile_size=self.config.tile_size)
        filt = self.cloud_filter if self.config.apply_cloud_filter else None
        predictions = predict_tiles(self.model, tiles, batch_size=self.config.batch_size, cloud_filter=filt)
        stitched = assemble_from_tiles(predictions, grid)
        return stitched[: scene.shape[0], : scene.shape[1]]

    def classify_tiles(self, tiles: np.ndarray) -> np.ndarray:
        """Classify an already-tiled stack."""
        filt = self.cloud_filter if self.config.apply_cloud_filter else None
        return predict_tiles(self.model, tiles, batch_size=self.config.batch_size, cloud_filter=filt)
