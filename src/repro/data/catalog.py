"""Tile catalog: scene → 256×256 tiles, metadata, and dataset splits.

The paper's training corpus is 66 large scenes split into 4224 tiles of
256×256 pixels, divided 80/20 into training and test sets, and further
split by cloud/shadow coverage (more/less than about 10 %) for Table V.
This module reproduces that bookkeeping for synthetic scenes of any size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imops.resize import split_into_tiles
from .scene import Scene, synthesize_scenes

__all__ = ["TileRecord", "TileDataset", "build_dataset", "train_test_split"]


@dataclass
class TileRecord:
    """Metadata of a single tile within its parent scene."""

    scene_index: int
    tile_index: int
    cloud_shadow_fraction: float


@dataclass
class TileDataset:
    """A set of tiles with observed imagery, clean imagery and ground truth.

    Attributes
    ----------
    images:
        ``(N, T, T, 3)`` uint8 observed (possibly cloudy) RGB tiles.
    clean_images:
        ``(N, T, T, 3)`` uint8 cloud/shadow-free RGB tiles.
    labels:
        ``(N, T, T)`` uint8 ground-truth class maps (the "manual labels").
    records:
        Per-tile metadata aligned with the arrays.
    """

    images: np.ndarray
    clean_images: np.ndarray
    labels: np.ndarray
    records: list[TileRecord]

    def __post_init__(self) -> None:
        n = len(self.records)
        if not (self.images.shape[0] == self.clean_images.shape[0] == self.labels.shape[0] == n):
            raise ValueError("images, clean_images, labels and records must have equal length")

    def __len__(self) -> int:
        return len(self.records)

    @property
    def tile_size(self) -> int:
        return int(self.images.shape[1])

    @property
    def cloud_shadow_fractions(self) -> np.ndarray:
        return np.array([r.cloud_shadow_fraction for r in self.records])

    def subset(self, indices: "np.ndarray | list[int]") -> "TileDataset":
        """Return a new dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.intp)
        return TileDataset(
            images=self.images[idx],
            clean_images=self.clean_images[idx],
            labels=self.labels[idx],
            records=[self.records[i] for i in idx],
        )

    def split_by_cloud_coverage(self, threshold: float = 0.10) -> tuple["TileDataset", "TileDataset"]:
        """Split into (more cloudy than threshold, less cloudy) — the Table V split."""
        fractions = self.cloud_shadow_fractions
        cloudy_idx = np.flatnonzero(fractions > threshold)
        clear_idx = np.flatnonzero(fractions <= threshold)
        return self.subset(cloudy_idx), self.subset(clear_idx)

    def class_distribution(self) -> np.ndarray:
        """Fraction of pixels per class over the whole dataset."""
        counts = np.bincount(self.labels.ravel(), minlength=3).astype(np.float64)
        return counts / counts.sum()


def tiles_from_scenes(scenes: list[Scene], tile_size: int = 256) -> TileDataset:
    """Cut every scene into tiles and collect them into one :class:`TileDataset`."""
    if not scenes:
        raise ValueError("need at least one scene")
    images, cleans, labels, records = [], [], [], []
    for s_idx, scene in enumerate(scenes):
        obs_tiles, _ = split_into_tiles(scene.rgb, tile_size)
        clean_tiles, _ = split_into_tiles(scene.clean_rgb, tile_size)
        label_tiles, _ = split_into_tiles(scene.class_map, tile_size)
        affected_tiles, _ = split_into_tiles(scene.veil.affected_mask.astype(np.uint8), tile_size)
        for t_idx in range(obs_tiles.shape[0]):
            images.append(obs_tiles[t_idx])
            cleans.append(clean_tiles[t_idx])
            labels.append(label_tiles[t_idx])
            records.append(
                TileRecord(
                    scene_index=s_idx,
                    tile_index=t_idx,
                    cloud_shadow_fraction=float(affected_tiles[t_idx].mean()),
                )
            )
    return TileDataset(
        images=np.stack(images),
        clean_images=np.stack(cleans),
        labels=np.stack(labels),
        records=records,
    )


def build_dataset(
    num_scenes: int = 4,
    scene_size: int = 512,
    tile_size: int = 256,
    base_seed: int = 0,
    cloudy_fraction: float = 0.5,
) -> TileDataset:
    """Synthesise scenes and cut them into a tile dataset in one call.

    The paper-scale configuration is ``num_scenes=66, scene_size=2048,
    tile_size=256`` which yields exactly 4224 tiles; the defaults are small
    so tests and examples stay fast.
    """
    scenes = synthesize_scenes(num_scenes, height=scene_size, width=scene_size, base_seed=base_seed,
                               cloudy_fraction=cloudy_fraction)
    return tiles_from_scenes(scenes, tile_size=tile_size)


def train_test_split(
    dataset: TileDataset,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[TileDataset, TileDataset]:
    """Random 80/20 train/test split of tiles (paper §IV-A)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    if train_idx.size == 0:
        raise ValueError("dataset too small for the requested split")
    return dataset.subset(train_idx), dataset.subset(test_idx)
