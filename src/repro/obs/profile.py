"""Profiling hooks: per-layer timers, latency percentiles, profile runners.

Two opt-in instrumentation seams live elsewhere and report here:

* :class:`~repro.nn.plan.CompiledPlan` records per-step wall time when
  ``enable_profiling()`` is on (one branch on the hot path when off);
* :class:`~repro.unet.trainer.UNetTrainer` records per-phase
  (forward/loss/backward/optimizer) and per-layer timings per epoch.

:class:`LayerTimer` is the shared per-layer mechanism: it patches the
``forward``/``backward`` of named modules with accumulating wrappers and
restores the originals on removal — no permanent cost in the layer code.

:func:`profile_inference` and :func:`profile_training` are the runners the
``repro-seaice profile`` CLI command drives; their payloads are JSON-safe so
they drop straight into ``BENCH_*.json`` files.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "LayerTimer",
    "latency_percentiles",
    "profile_inference",
    "profile_training",
]


class LayerTimer:
    """Accumulate per-layer forward/backward wall time by patching modules.

    ``install()`` replaces each named module's ``forward`` (and ``backward``
    when present) with a timing wrapper writing into this timer;
    ``remove()`` restores the original bound methods.  Use as a context
    manager for exception safety.
    """

    def __init__(self, named_modules: Iterable[tuple[str, object]]) -> None:
        self._modules = list(named_modules)
        self._originals: list[tuple[object, str, object]] = []
        self.stats: dict[str, dict[str, float]] = {}

    def _cell(self, name: str) -> dict[str, float]:
        cell = self.stats.get(name)
        if cell is None:
            cell = self.stats[name] = {"forward_ms": 0.0, "backward_ms": 0.0, "calls": 0}
        return cell

    def _wrap(self, module: object, attr: str, name: str, key: str):
        original = getattr(module, attr)
        # Was the attribute instance-level before us?  Usually not (methods
        # live on the class), in which case removal must *delete* our shadow
        # rather than pin a bound method onto the instance.
        had_instance_attr = attr in vars(module)

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return original(*args, **kwargs)
            finally:
                cell = self._cell(name)
                cell[key] += (time.perf_counter() - start) * 1e3
                if key == "forward_ms":
                    cell["calls"] += 1

        self._originals.append((module, attr, original if had_instance_attr else None))
        setattr(module, attr, timed)

    def install(self) -> "LayerTimer":
        if self._originals:
            raise RuntimeError("LayerTimer is already installed")
        for name, module in self._modules:
            self._wrap(module, "forward", name, "forward_ms")
            if hasattr(module, "backward"):
                self._wrap(module, "backward", name, "backward_ms")
        return self

    def remove(self) -> None:
        for module, attr, original in reversed(self._originals):
            if original is None:
                delattr(module, attr)
            else:
                setattr(module, attr, original)
        self._originals = []

    def __enter__(self) -> "LayerTimer":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.remove()

    def to_dict(self) -> dict:
        return {
            name: {key: (round(value, 3) if isinstance(value, float) else value)
                   for key, value in cell.items()}
            for name, cell in self.stats.items()
        }


def latency_percentiles(samples_ms: Sequence[float],
                        qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
    """Exact percentiles of a latency sample list: ``{"p50_ms": ..., ...}``."""
    if not len(samples_ms):
        return {f"p{int(q * 100)}_ms": None for q in qs}
    arr = np.asarray(samples_ms, dtype=np.float64)
    return {
        f"p{int(q * 100)}_ms": round(float(np.quantile(arr, q)), 3)
        for q in qs
    }


def _named_top_blocks(model) -> list[tuple[str, object]]:
    """The per-layer granularity the trainer and profiler time: top-level blocks."""
    blocks: list[tuple[str, object]] = []
    for i, encoder in enumerate(getattr(model, "encoders", [])):
        blocks.append((f"enc{i}", encoder))
    if hasattr(model, "bottleneck"):
        blocks.append(("bottleneck", model.bottleneck))
    for i, decoder in enumerate(getattr(model, "decoders", [])):
        blocks.append((f"dec{i}", decoder))
    if hasattr(model, "head"):
        blocks.append(("head", model.head))
    return blocks


def profile_inference(model, batch_shape: tuple[int, int, int] = (1, 32, 32),
                      iterations: int = 50, warmup: int = 5, seed: int = 0) -> dict:
    """Per-step compiled-plan timings + end-to-end latency percentiles.

    ``batch_shape`` is ``(N, H, W)``; the input channel count comes from the
    model.  The plan is compiled and first-touched during warmup, so the
    measured iterations are the serving steady state.
    """
    from ..unet.compiled import CompiledUNet

    n, h, w = (int(d) for d in batch_shape)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, model.config.in_channels, h, w)).astype(np.float32)

    engine = CompiledUNet(model, max_plans=2)
    plan = engine.warm(x.shape)
    for _ in range(max(1, warmup)):
        plan.run(x)
    plan.enable_profiling()
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        plan.run(x)
        samples.append((time.perf_counter() - start) * 1e3)
    steps = plan.profile_info()
    plan.enable_profiling(False)
    return {
        "input_shape": list(x.shape),
        "iterations": iterations,
        "latency": latency_percentiles(samples),
        "mean_ms": round(float(np.mean(samples)), 3),
        "steps": steps,
        "plan_arena_bytes": plan.arena_nbytes,
    }


def profile_training(model=None, epochs: int = 2, batches: int = 4, batch_size: int = 4,
                     tile: int = 16, seed: int = 0) -> dict:
    """Per-epoch, per-phase and per-layer training timings on synthetic tiles."""
    from ..data.loader import BatchLoader
    from ..unet.model import UNet, UNetConfig
    from ..unet.trainer import UNetTrainer

    if model is None:
        model = UNet(UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=seed))
    rng = np.random.default_rng(seed)
    count = batches * batch_size
    images = rng.integers(0, 255, size=(count, tile, tile, 3), dtype=np.uint8)
    labels = rng.integers(0, model.config.num_classes, size=(count, tile, tile), dtype=np.uint8)
    loader = BatchLoader(images, labels, batch_size=batch_size, shuffle=False, augment=False)

    trainer = UNetTrainer(model=model)
    trainer.enable_profiling()
    trainer.fit(loader, epochs=epochs)
    return {
        "epochs": epochs,
        "batches_per_epoch": batches,
        "batch_size": batch_size,
        "tile": tile,
        "per_epoch": [
            {
                "epoch": stats.epoch,
                "time_s": round(stats.time_s, 4),
                "images_per_s": round(stats.images_per_s, 2),
                "phases_ms": stats.profile.get("phases_ms") if stats.profile else None,
                "layers": stats.profile.get("layers") if stats.profile else None,
            }
            for stats in trainer.history.epochs
        ],
    }
