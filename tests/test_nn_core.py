"""Tests for repro.nn core: module system, losses, optimizers, serialization."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CategoricalCrossEntropy,
    CheckpointError,
    Conv2D,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    load_checkpoint,
    load_weights,
    numerical_gradient,
    save_checkpoint,
    save_weights,
    softmax,
)


class TestModuleSystem:
    def test_parameter_registration(self):
        conv = Conv2D(2, 3)
        names = set(conv.named_parameters())
        assert names == {"weight", "bias"}
        assert conv.num_parameters() == 3 * 2 * 3 * 3 + 3

    def test_nested_modules(self):
        model = Sequential(Conv2D(1, 2, seed=0), ReLU(), Conv2D(2, 1, seed=1))
        names = set(model.named_parameters())
        assert "0.weight" in names and "2.bias" in names
        assert len(model) == 3
        assert isinstance(model[1], ReLU)

    def test_train_eval_propagates(self):
        model = Sequential(Conv2D(1, 1), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        conv = Conv2D(1, 1)
        conv.weight.grad += 3.0
        conv.zero_grad()
        assert np.all(conv.weight.grad == 0)

    def test_state_dict_round_trip(self):
        a = Sequential(Conv2D(1, 2, seed=0), Conv2D(2, 1, seed=1))
        b = Sequential(Conv2D(1, 2, seed=7), Conv2D(2, 1, seed=9))
        b.load_state_dict(a.state_dict())
        for (ka, pa), (kb, pb) in zip(a.named_parameters().items(), b.named_parameters().items()):
            assert ka == kb
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_load_state_dict_rejects_mismatch(self):
        model = Sequential(Conv2D(1, 1))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})

    def test_load_state_dict_rejects_wrong_shape(self):
        model = Sequential(Conv2D(1, 1))
        state = model.state_dict()
        state["0.bias"] = np.zeros((5,))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_sequential_forward_backward(self):
        model = Sequential(Conv2D(1, 2, seed=0), ReLU(), Conv2D(2, 1, seed=1))
        x = np.random.default_rng(0).normal(size=(2, 1, 8, 8)).astype(np.float32)
        out = model(x)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_parameter_repr_and_props(self):
        p = Parameter(np.zeros((2, 3)))
        assert p.shape == (2, 3) and p.size == 6

    def test_register_rejects_wrong_types(self):
        m = Module()
        with pytest.raises(TypeError):
            m.register_parameter("x", np.zeros(3))
        with pytest.raises(TypeError):
            m.register_module("x", object())


class TestSoftmaxAndLoss:
    def test_softmax_normalises(self):
        logits = np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32)
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        assert probs.min() >= 0

    def test_softmax_invariant_to_shift(self):
        logits = np.random.default_rng(1).normal(size=(1, 3, 2, 2)).astype(np.float32)
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0), atol=1e-5)

    def test_loss_perfect_prediction_is_small(self):
        logits = np.full((1, 3, 2, 2), -20.0, dtype=np.float32)
        targets = np.zeros((1, 2, 2), dtype=np.int64)
        logits[:, 0] = 20.0
        loss = CategoricalCrossEntropy()(logits, targets)
        assert loss < 1e-3

    def test_loss_uniform_prediction_is_log_k(self):
        logits = np.zeros((1, 3, 4, 4), dtype=np.float32)
        targets = np.random.default_rng(0).integers(0, 3, size=(1, 4, 4))
        assert CategoricalCrossEntropy()(logits, targets) == pytest.approx(np.log(3), rel=1e-4)

    def test_loss_accepts_onehot_targets(self):
        logits = np.random.default_rng(2).normal(size=(2, 3, 4, 4)).astype(np.float32)
        targets = np.random.default_rng(3).integers(0, 3, size=(2, 4, 4))
        onehot = np.zeros_like(logits)
        for n in range(2):
            for i in range(4):
                for j in range(4):
                    onehot[n, targets[n, i, j], i, j] = 1.0
        loss_int = CategoricalCrossEntropy()(logits, targets)
        loss_onehot = CategoricalCrossEntropy()(logits, onehot)
        assert loss_int == pytest.approx(loss_onehot, rel=1e-6)

    def test_loss_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(1, 3, 3, 3)).astype(np.float64)
        targets = rng.integers(0, 3, size=(1, 3, 3))
        loss_fn = CategoricalCrossEntropy()
        loss_fn(logits.astype(np.float32), targets)
        analytic = loss_fn.backward()

        def f(values):
            return CategoricalCrossEntropy()(values.astype(np.float32), targets)

        numeric = numerical_gradient(f, logits.copy(), h=1e-4)
        # float32 forward passes limit the attainable agreement
        assert np.max(np.abs(analytic - numeric)) < 3e-3

    def test_class_weights_change_loss(self):
        logits = np.zeros((1, 3, 2, 2), dtype=np.float32)
        targets = np.zeros((1, 2, 2), dtype=np.int64)
        unweighted = CategoricalCrossEntropy()(logits, targets)
        weighted = CategoricalCrossEntropy(class_weights=np.array([2.0, 1.0, 1.0]))(logits, targets)
        assert unweighted == pytest.approx(weighted)  # single-class targets: weights cancel

    def test_loss_rejects_bad_targets(self):
        logits = np.zeros((1, 3, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            CategoricalCrossEntropy()(logits, np.zeros((1, 3, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            CategoricalCrossEntropy()(logits, np.full((1, 2, 2), 5, dtype=np.int64))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CategoricalCrossEntropy().backward()


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_descends_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            p.zero_grad()
            p.grad += 2 * p.value  # d/dx of x^2
            opt.step()
        assert np.all(np.abs(p.value) < 1e-3)

    def test_sgd_momentum_faster_than_plain(self):
        p1, p2 = self._quadratic_param(), self._quadratic_param()
        plain, mom = SGD([p1], lr=0.02), SGD([p2], lr=0.02, momentum=0.9)
        for _ in range(30):
            for p, opt in ((p1, plain), (p2, mom)):
                p.zero_grad()
                p.grad += 2 * p.value
                opt.step()
        assert np.abs(p2.value).sum() < np.abs(p1.value).sum()

    def test_adam_descends_quadratic(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.zero_grad()
            p.grad += 2 * p.value
            opt.step()
        assert np.all(np.abs(p.value) < 1e-2)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(10):
            p.zero_grad()
            opt.step()
        assert p.value[0] < 1.0

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_state_dicts(self):
        p = Parameter(np.zeros(2))
        assert "lr" in SGD([p], lr=0.1).state_dict()
        adam = Adam([p], lr=0.1)
        adam.step()
        assert adam.state_dict()["t"] == 1

    @staticmethod
    def _run_steps(param: Parameter, opt, steps: int) -> None:
        for _ in range(steps):
            param.zero_grad()
            param.grad += 2 * param.value
            opt.step()

    def test_sgd_state_dict_round_trip_continues_trajectory(self):
        p1 = Parameter(np.array([4.0, -2.0], dtype=np.float32))
        opt1 = SGD([p1], lr=0.05, momentum=0.9, weight_decay=0.01)
        self._run_steps(p1, opt1, 5)
        state = opt1.state_dict()
        assert any(key.startswith("velocity.") for key in state)

        p2 = Parameter(p1.value.copy())
        opt2 = SGD([p2], lr=0.9)  # wrong hyper-params on purpose
        opt2.load_state_dict(state)
        assert opt2.momentum == 0.9 and opt2.lr == 0.05 and opt2.weight_decay == 0.01
        self._run_steps(p1, opt1, 5)
        self._run_steps(p2, opt2, 5)
        np.testing.assert_array_equal(p1.value, p2.value)

    def test_adam_state_dict_round_trip_continues_trajectory(self):
        p1 = Parameter(np.array([4.0, -2.0], dtype=np.float32))
        opt1 = Adam([p1], lr=0.1, weight_decay=0.02)
        self._run_steps(p1, opt1, 5)
        state = opt1.state_dict()
        for key in ("t", "beta1", "beta2", "eps", "weight_decay", "m.0", "v.0"):
            assert key in state

        p2 = Parameter(p1.value.copy())
        opt2 = Adam([p2], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2._t == 5 and opt2.lr == 0.1 and opt2.weight_decay == 0.02
        self._run_steps(p1, opt1, 5)
        self._run_steps(p2, opt2, 5)
        np.testing.assert_allclose(p1.value, p2.value, atol=1e-7)

    def test_load_state_dict_rejects_bad_slots(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        state = opt.state_dict()
        state.pop("m.0")
        with pytest.raises(KeyError):
            Adam([Parameter(np.zeros(2))], lr=0.1).load_state_dict(state)
        state = opt.state_dict()
        state["m.0"] = np.zeros(5)
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.1).load_state_dict(state)


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        model = Sequential(Conv2D(1, 2, seed=0), Conv2D(2, 1, seed=1))
        path = save_weights(model, tmp_path / "model")
        clone = Sequential(Conv2D(1, 2, seed=5), Conv2D(2, 1, seed=6))
        load_weights(clone, path)
        for pa, pb in zip(model.parameters(), clone.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_save_appends_npz_suffix(self, tmp_path):
        model = Sequential(Conv2D(1, 1))
        path = save_weights(model, tmp_path / "weights")
        assert path.endswith(".npz")

    def test_load_missing_file_raises(self, tmp_path):
        model = Sequential(Conv2D(1, 1))
        with pytest.raises(FileNotFoundError):
            load_weights(model, tmp_path / "nope.npz")

    @staticmethod
    def _train_steps(model, opt, steps, seed=0):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
            out = model(x)
            opt.zero_grad()
            model.backward(np.ones_like(out))
            opt.step()

    def test_checkpoint_resume_matches_uninterrupted_run(self, tmp_path):
        """Saving and resuming mid-run must continue the exact trajectory —
        including the Adam moments, which plain weight checkpoints lose."""
        model = Sequential(Conv2D(1, 2, seed=0), ReLU(), Conv2D(2, 1, seed=1))
        opt = Adam(model.parameters(), lr=1e-2)
        self._train_steps(model, opt, 4, seed=0)
        path = save_checkpoint(model, opt, tmp_path / "ckpt")

        resumed = Sequential(Conv2D(1, 2, seed=7), ReLU(), Conv2D(2, 1, seed=8))
        resumed_opt = Adam(resumed.parameters(), lr=0.7)
        load_checkpoint(resumed, resumed_opt, path)
        assert resumed_opt._t == opt._t and resumed_opt.lr == opt.lr

        self._train_steps(model, opt, 4, seed=1)
        self._train_steps(resumed, resumed_opt, 4, seed=1)
        for pa, pb in zip(model.parameters(), resumed.parameters()):
            np.testing.assert_allclose(pa.value, pb.value, atol=1e-7)

    def test_load_checkpoint_rejects_weights_only_archive(self, tmp_path):
        model = Sequential(Conv2D(1, 1))
        path = save_weights(model, tmp_path / "weights")
        with pytest.raises(CheckpointError):
            load_checkpoint(model, Adam(model.parameters(), lr=0.1), path)

    def test_load_checkpoint_rejects_truncated_archive(self, tmp_path):
        """A torn write (crash mid-checkpoint) must surface as CheckpointError,
        not leak zipfile/KeyError internals to the resume logic."""
        model = Sequential(Conv2D(1, 2, seed=0))
        opt = Adam(model.parameters(), lr=1e-2)
        path = save_checkpoint(model, opt, tmp_path / "ckpt")
        with open(path, "r+b") as fh:
            fh.truncate(max(1, os.path.getsize(path) // 2))
        with pytest.raises(CheckpointError):
            load_checkpoint(model, opt, path)

    def test_checkpoint_extra_state_roundtrip(self, tmp_path):
        model = Sequential(Conv2D(1, 1, seed=0))
        opt = Adam(model.parameters(), lr=1e-2)
        extra = {"epoch": 3, "cursor": [1, 2], "nested": {"rng": "state"}}
        path = save_checkpoint(model, opt, tmp_path / "ckpt", extra_state=extra)
        assert load_checkpoint(model, opt, path) == extra
        # Archives without extra state load as an empty dict.
        plain = save_checkpoint(model, opt, tmp_path / "plain")
        assert load_checkpoint(model, opt, plain) == {}
