"""Tables IV, V and Figure 13 — U-Net-Man vs U-Net-Auto classification accuracy.

Paper results (Ross Sea summer archive):

* Table IV — original images: 91.39 % (U-Net-Man) vs 90.18 % (U-Net-Auto);
  thin-cloud/shadow-filtered images: 98.40 % vs 98.97 %.
* Table V — the filtered-vs-original gap widens on the >10 % cloud-cover
  subset (88.74/79.91 % → 98.91/99.28 %) and narrows on the <10 % subset.
* Figure 13 — per-class confusion matrices: ≈98 % diagonals on filtered data;
  on cloudy originals thick ice is confused with thin ice (shadows) and
  thin ice / open water with brighter classes (clouds).

The shared ``accuracy_experiment`` fixture trains both models on a synthetic
archive; the three tests below print and sanity-check each artefact.
"""

from __future__ import annotations

import pytest

from conftest import print_paper_vs_measured

PAPER_TABLE4 = [
    {"dataset": "Original S2 images", "unet_man_accuracy_pct": 91.39, "unet_auto_accuracy_pct": 90.18},
    {
        "dataset": "S2 images with thin cloud and shadow filtered",
        "unet_man_accuracy_pct": 98.40,
        "unet_auto_accuracy_pct": 98.97,
    },
]

PAPER_TABLE5 = [
    {"dataset": "More than ~10% cloud and shadow cover", "images": "original images", "unet_man_accuracy_pct": 88.74, "unet_auto_accuracy_pct": 79.91},
    {"dataset": "More than ~10% cloud and shadow cover", "images": "filtered images", "unet_man_accuracy_pct": 98.91, "unet_auto_accuracy_pct": 99.28},
    {"dataset": "Less than ~10% cloud and shadow cover", "images": "original images", "unet_man_accuracy_pct": 92.27, "unet_auto_accuracy_pct": 93.60},
    {"dataset": "Less than ~10% cloud and shadow cover", "images": "filtered images", "unet_man_accuracy_pct": 98.23, "unet_auto_accuracy_pct": 98.87},
]


@pytest.mark.benchmark(group="table4")
def test_table4_overall_accuracy(benchmark, accuracy_experiment):
    """Table IV: overall accuracy of both models on original vs filtered validation tiles."""
    rows = benchmark.pedantic(accuracy_experiment.table4_rows, rounds=1, iterations=1)
    print_paper_vs_measured("Table IV: U-Net sea-ice classification accuracy", PAPER_TABLE4, rows)

    original, filtered = rows[0], rows[1]
    # Shape: filtering improves both models; the two models stay close on filtered data.
    assert filtered["unet_man_accuracy_pct"] > original["unet_man_accuracy_pct"]
    assert filtered["unet_auto_accuracy_pct"] > original["unet_auto_accuracy_pct"]
    assert filtered["unet_auto_accuracy_pct"] > 90.0
    assert abs(filtered["unet_auto_accuracy_pct"] - filtered["unet_man_accuracy_pct"]) < 8.0


@pytest.mark.benchmark(group="table5")
def test_table5_cloud_coverage_split(benchmark, accuracy_experiment):
    """Table V: accuracy split by cloud/shadow coverage of the validation tiles."""
    rows = benchmark.pedantic(accuracy_experiment.table5_rows, rounds=1, iterations=1)
    print_paper_vs_measured("Table V: accuracy vs cloud/shadow coverage", PAPER_TABLE5, rows)

    by_key = {(r["dataset"].startswith("More"), r["images"]): r for r in rows}
    cloudy_orig = by_key.get((True, "original images"))
    cloudy_filt = by_key.get((True, "filtered images"))
    clear_orig = by_key.get((False, "original images"))
    if cloudy_orig and cloudy_filt:
        # The filter's benefit is largest on heavily clouded tiles (the paper's ~10-20% jump).
        assert cloudy_filt["unet_auto_accuracy_pct"] > cloudy_orig["unet_auto_accuracy_pct"] + 3.0
    if cloudy_orig and clear_orig:
        assert clear_orig["unet_auto_accuracy_pct"] > cloudy_orig["unet_auto_accuracy_pct"]


@pytest.mark.benchmark(group="fig13")
def test_fig13_confusion_matrices(benchmark, accuracy_experiment):
    """Figure 13: per-class confusion matrices of both models on original and filtered data."""
    matrices = benchmark.pedantic(accuracy_experiment.confusion_matrices, rounds=1, iterations=1)
    class_names = ["thick_ice", "thin_ice", "open_water"]
    for name, matrix in matrices.items():
        print(f"\n== Figure 13 confusion matrix ({name}), rows = truth, % ==")
        print("            " + "  ".join(f"{c:>10s}" for c in class_names))
        for cls, row in zip(class_names, matrix):
            print(f"  {cls:>10s} " + "  ".join(f"{value:10.2f}" for value in row))

    # Shape: filtered confusion matrices are more diagonal than the original ones.
    for model in ("man", "auto"):
        diag_filtered = matrices[f"{model}_filtered"].diagonal().mean()
        diag_original = matrices[f"{model}_original"].diagonal().mean()
        assert diag_filtered >= diag_original - 1.0
        assert diag_filtered > 85.0
