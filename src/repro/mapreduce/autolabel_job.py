"""The distributed auto-labeling job (paper §III-B(b)) on the sparklite engine.

Mirrors the paper's PySpark implementation: load the tile stack into a
distributed dataset, register the auto-label UDF as a map transformation,
then collect (reduce) the labelled tiles back on the driver.  Runs on any
executor backend and reports the per-phase timings of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..labeling.autolabel import autolabel_tile
from .cluster import ClusterShape, GCDClusterModel
from .dataset import JobTimings, SparkLiteContext, udf

__all__ = ["MapReduceAutoLabelResult", "run_mapreduce_autolabel", "mapreduce_scaling_sweep"]


@udf
def autolabel_udf(tile: np.ndarray) -> np.ndarray:
    """The auto-labeling UDF registered on the distributed dataset."""
    return autolabel_tile(tile, apply_cloud_filter=True)


@udf
def autolabel_udf_unfiltered(tile: np.ndarray) -> np.ndarray:
    """Auto-labeling without the cloud/shadow filter (ablation variant)."""
    return autolabel_tile(tile, apply_cloud_filter=False)


@dataclass
class MapReduceAutoLabelResult:
    """Labels plus the per-phase timings of one distributed auto-label job."""

    labels: np.ndarray
    timings: JobTimings
    num_partitions: int
    executor_kind: str


def run_mapreduce_autolabel(
    tiles: np.ndarray,
    executor: str = "processes",
    parallelism: int = 4,
    num_partitions: int | None = None,
    apply_cloud_filter: bool = True,
) -> MapReduceAutoLabelResult:
    """Auto-label a tile stack with the sparklite map-reduce engine.

    This is the *real* execution path (it produces labels identical to the
    serial labeler); the simulated-cluster sweep below only predicts times.
    """
    stack = np.asarray(tiles)
    if stack.ndim != 4 or stack.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")

    context = SparkLiteContext(executor=executor, parallelism=parallelism)
    dataset = context.read_image_stack(stack, num_partitions=num_partitions)
    func = autolabel_udf if apply_cloud_filter else autolabel_udf_unfiltered
    labelled = dataset.map(func)
    labels = labelled.collect()
    return MapReduceAutoLabelResult(
        labels=np.stack(labels),
        timings=context.last_timings,
        num_partitions=dataset.num_partitions(),
        executor_kind=executor,
    )


def mapreduce_scaling_sweep(
    tiles: np.ndarray | None = None,
    model: GCDClusterModel | None = None,
    shapes: "list[ClusterShape] | None" = None,
) -> list[dict]:
    """Produce the Table II sweep.

    When ``tiles`` is given, a single-core sparklite job is run first and the
    cluster model is re-calibrated so its 1×1 row equals the measured local
    cost; otherwise the paper-calibrated defaults are used.
    """
    if model is None:
        if tiles is not None:
            stack = np.asarray(tiles)
            measured = run_mapreduce_autolabel(stack, executor="serial", parallelism=1)
            reduce_time = max(measured.timings.reduce_time, 1e-4)
            # The local "load" is an in-memory hand-off (the tiles are already
            # synthesised), unlike the paper's read of the image archive from
            # cloud storage.  When the measured load is negligible, model the
            # storage read with the paper's observed load-to-label cost ratio
            # so the load column of the sweep remains meaningful.
            load_time = measured.timings.load_time
            if load_time < 0.05 * reduce_time:
                load_time = reduce_time * (108.0 / 390.0)
            model = GCDClusterModel.calibrated_from_measurement(
                num_images=stack.shape[0],
                measured_load_time=load_time,
                measured_reduce_time=reduce_time,
            )
        else:
            model = GCDClusterModel()
    return model.sweep(shapes)
