"""Full synthetic Sentinel-2 scene synthesis.

A scene is built in three steps, mirroring the physical layering of the real
imagery:

1. an ice-field class map (thick ice / thin ice / open water) derived from a
   fractal noise field thresholded at the requested class fractions — this
   produces large coherent floes, leads and open-water areas with sharp
   boundaries;
2. clean surface radiometry rendered from the class map
   (:mod:`repro.data.radiometry`);
3. smooth thin-cloud and shadow veils blended on top
   (:mod:`repro.data.clouds`).

The generator keeps the exact class map and veil fields, which play the role
of the paper's manual labels and visually assessed cloud coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..classes import SeaIceClass
from .clouds import CloudShadowField, generate_cloud_shadow_pair
from .noise import fractal_noise, spectral_noise
from .radiometry import (
    CLOUD_CONTAMINANT_RGB,
    SHADOW_CONTAMINANT_RGB,
    mix_contaminant,
    render_class_map,
)

__all__ = ["SceneSpec", "Scene", "synthesize_scene", "synthesize_scenes"]


@dataclass(frozen=True)
class SceneSpec:
    """Parameters of one synthetic Sentinel-2 scene.

    The defaults correspond to a typical Antarctic Ross Sea summer scene:
    mostly consolidated pack ice with leads of young ice and some open
    water, and a moderate chance of thin-cloud banks.
    """

    height: int = 512
    width: int = 512
    #: Target area fractions of (thick ice, thin ice, open water); they are
    #: normalised if they do not already sum to one.
    class_fractions: tuple[float, float, float] = (0.55, 0.30, 0.15)
    #: Fraction of the scene covered by the thin-cloud bank (0 disables clouds).
    cloud_coverage: float = 0.25
    #: Peak opacity of the thin-cloud veil.
    cloud_max_opacity: float = 0.55
    #: Peak opacity of the shadow veil.
    shadow_max_opacity: float = 0.5
    #: Spatial scale of the ice floes (spectral slope of the class field).
    floe_beta: float = 3.0
    #: Random seed for full reproducibility of the scene.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height < 8 or self.width < 8:
            raise ValueError("scene must be at least 8x8 pixels")
        if any(f < 0 for f in self.class_fractions) or sum(self.class_fractions) <= 0:
            raise ValueError("class fractions must be non-negative and not all zero")
        if not 0.0 <= self.cloud_coverage <= 1.0:
            raise ValueError("cloud_coverage must be in [0, 1]")

    @property
    def normalized_fractions(self) -> tuple[float, float, float]:
        total = sum(self.class_fractions)
        return tuple(f / total for f in self.class_fractions)  # type: ignore[return-value]


@dataclass
class Scene:
    """One synthesised scene with every intermediate product kept for scoring."""

    spec: SceneSpec
    rgb: np.ndarray  #: observed RGB image with clouds and shadows, uint8
    clean_rgb: np.ndarray  #: cloud/shadow-free RGB image, uint8
    class_map: np.ndarray  #: ground-truth per-pixel classes, uint8
    veil: CloudShadowField = field(repr=False)  #: cloud/shadow opacity fields

    @property
    def cloud_shadow_fraction(self) -> float:
        """Fraction of pixels affected by clouds or shadows (Table V split key)."""
        return self.veil.affected_fraction

    @property
    def shape(self) -> tuple[int, int]:
        return self.class_map.shape


def _class_map_from_field(field_values: np.ndarray, fractions: tuple[float, float, float]) -> np.ndarray:
    """Turn a continuous field into a class map with the requested area fractions.

    The brightest quantile becomes thick ice, the middle band thin ice and
    the darkest quantile open water, so class regions inherit the field's
    spatial coherence.
    """
    thick_frac, thin_frac, _water_frac = fractions
    hi_cut = np.quantile(field_values, 1.0 - thick_frac)
    lo_cut = np.quantile(field_values, 1.0 - thick_frac - thin_frac)
    class_map = np.full(field_values.shape, int(SeaIceClass.OPEN_WATER), dtype=np.uint8)
    class_map[field_values >= lo_cut] = int(SeaIceClass.THIN_ICE)
    class_map[field_values >= hi_cut] = int(SeaIceClass.THICK_ICE)
    return class_map


def synthesize_scene(spec: SceneSpec) -> Scene:
    """Generate one scene from its spec (deterministic given ``spec.seed``)."""
    rng = np.random.default_rng(spec.seed)
    shape = (spec.height, spec.width)

    floe_field = spectral_noise(shape, beta=spec.floe_beta, rng=rng)
    class_map = _class_map_from_field(floe_field, spec.normalized_fractions)

    texture = fractal_noise(shape, octaves=4, rng=rng)
    clean_rgb = render_class_map(class_map, texture=texture, rng=rng)

    veil = generate_cloud_shadow_pair(
        shape,
        cloud_coverage=spec.cloud_coverage,
        cloud_max_opacity=spec.cloud_max_opacity,
        shadow_max_opacity=spec.shadow_max_opacity,
        rng=rng,
    )
    observed = mix_contaminant(clean_rgb, veil.cloud_alpha, CLOUD_CONTAMINANT_RGB)
    observed = mix_contaminant(observed, veil.shadow_alpha, SHADOW_CONTAMINANT_RGB)

    return Scene(spec=spec, rgb=observed, clean_rgb=clean_rgb, class_map=class_map, veil=veil)


def synthesize_scenes(
    num_scenes: int,
    height: int = 512,
    width: int = 512,
    base_seed: int = 0,
    cloudy_fraction: float = 0.5,
    rng: np.random.Generator | None = None,
) -> list[Scene]:
    """Generate a varied collection of scenes, as the paper's 66-scene archive.

    ``cloudy_fraction`` of the scenes get substantial cloud banks; the rest
    are essentially cloud-free (mirroring the paper's split of the archive
    into cloudy-shadowy and clear images).  Scene composition (ice vs water
    fractions) is also varied from scene to scene.
    """
    if num_scenes < 1:
        raise ValueError("num_scenes must be >= 1")
    rng = rng or np.random.default_rng(base_seed)
    scenes = []
    for index in range(num_scenes):
        cloudy = rng.uniform() < cloudy_fraction
        thick = float(rng.uniform(0.35, 0.65))
        thin = float(rng.uniform(0.15, min(0.45, 0.95 - thick)))
        water = max(0.05, 1.0 - thick - thin)
        spec = SceneSpec(
            height=height,
            width=width,
            class_fractions=(thick, thin, water),
            cloud_coverage=float(rng.uniform(0.2, 0.5)) if cloudy else float(rng.uniform(0.0, 0.04)),
            cloud_max_opacity=float(rng.uniform(0.45, 0.68)) if cloudy else 0.25,
            shadow_max_opacity=float(rng.uniform(0.4, 0.62)) if cloudy else 0.2,
            seed=base_seed + 1000 + index,
        )
        scenes.append(synthesize_scene(spec))
    return scenes
