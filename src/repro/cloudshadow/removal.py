"""Thin-cloud and shadow *removal* (veil estimation and inversion).

Thin clouds and cloud shadows act, to first order, as a linear mixture of
the true surface colour with a contaminant colour (white scattered light
for clouds, dark blue ambient skylight for shadows)::

    observed = (1 - alpha) * surface + alpha * contaminant

This is the standard linear mixing model of optical remote sensing, and it
is also exactly how the synthetic data substrate composes its veils, so the
filter genuinely inverts the physics rather than pattern-matching the
generator's output.  The surface colour is unknown, but over polar sea ice
it is well approximated by one of a small set of class reference colours
(the same observation that makes the paper's HSV auto-labeling work).  The
filter therefore

1. hypothesises every (surface class, contaminant) pair for every pixel,
2. solves the per-pixel least-squares opacity ``alpha`` for each hypothesis,
3. keeps the hypothesis with the smallest residual (with a small penalty on
   ``alpha`` so clean pixels are preferred when the evidence is ambiguous),
4. optionally smooths the opacity field (veils are spatially smooth), and
5. inverts the mixing model to recover the surface colour.

In a deployment on real Sentinel-2 data the reference colours would be
calibrated per region/season exactly as the paper calibrates its HSV
thresholds "through a process of trial and error".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.radiometry import CLOUD_CONTAMINANT_RGB, SHADOW_CONTAMINANT_RGB, prototype_array
from ..imops import gaussian_blur

__all__ = ["VeilEstimate", "ThinCloudShadowRemover"]


@dataclass
class VeilEstimate:
    """Per-pixel veil estimate produced by :class:`ThinCloudShadowRemover`."""

    cloud_alpha: np.ndarray
    shadow_alpha: np.ndarray
    surface_class: np.ndarray  #: index of the best-fitting surface prototype

    @property
    def affected_fraction(self) -> float:
        return float(((self.cloud_alpha > 0.05) | (self.shadow_alpha > 0.05)).mean())


@dataclass
class ThinCloudShadowRemover:
    """Removes thin clouds and shadows from RGB sea-ice imagery.

    Parameters
    ----------
    surface_prototypes:
        ``(K, 3)`` reference RGB colours of the plausible surfaces.  Defaults
        to the thick-ice / thin-ice / open-water prototypes.
    cloud_color, shadow_color:
        Contaminant colours of the two veil types.
    alpha_penalty:
        Penalty (in RGB distance units) added per unit of opacity when
        scoring hypotheses; biases ambiguous pixels toward "clean".
    max_alpha:
        Upper bound on recoverable opacity; beyond this the veil is treated
        as opaque (the paper explicitly does not handle thick clouds).
    min_alpha:
        Opacities below this are treated as zero.  Because the least-squares
        fit has one extra degree of freedom per hypothesis it can always
        absorb a little sensor noise into a tiny spurious opacity; the floor
        keeps genuinely clean pixels untouched.
    smooth_ksize:
        Gaussian kernel size used to smooth the opacity fields (0 disables).
    score_smooth_ksize:
        Gaussian kernel size used to aggregate hypothesis scores over a
        neighbourhood before choosing the winner.  Both the surface classes
        and the veils are regionally coherent, so pooling evidence spatially
        resolves pixels where two (surface, contaminant) explanations are
        nearly collinear in RGB space (e.g. cloud-over-water versus
        shadow-over-thin-ice).  0 disables pooling.
    """

    surface_prototypes: np.ndarray = field(default_factory=prototype_array)
    cloud_color: tuple[float, float, float] = CLOUD_CONTAMINANT_RGB
    shadow_color: tuple[float, float, float] = SHADOW_CONTAMINANT_RGB
    alpha_penalty: float = 6.0
    max_alpha: float = 0.75
    min_alpha: float = 0.04
    smooth_ksize: int = 5
    score_smooth_ksize: int = 11

    def __post_init__(self) -> None:
        self.surface_prototypes = np.asarray(self.surface_prototypes, dtype=np.float64)
        if self.surface_prototypes.ndim != 2 or self.surface_prototypes.shape[1] != 3:
            raise ValueError("surface_prototypes must be a (K, 3) array")
        if not 0.0 < self.max_alpha < 1.0:
            raise ValueError("max_alpha must be in (0, 1)")

    # ------------------------------------------------------------------ #
    # Veil estimation
    # ------------------------------------------------------------------ #
    def estimate(self, rgb: np.ndarray) -> VeilEstimate:
        """Estimate per-pixel cloud and shadow opacity for an RGB image."""
        img = np.asarray(rgb)
        if img.ndim != 3 or img.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) RGB image, got shape {img.shape}")
        data = img.astype(np.float64)
        h, w, _ = data.shape

        prototypes = self.surface_prototypes  # (K, 3)
        contaminants = np.array([self.cloud_color, self.shadow_color], dtype=np.float64)  # (2, 3)
        num_k = prototypes.shape[0]
        num_m = contaminants.shape[0]

        # Hypothesis axes: k (surface), m (contaminant).
        # diff[..., k, :] = I - J_k
        diff = data[:, :, None, :] - prototypes[None, None, :, :]  # (H, W, K, 3)
        direction = contaminants[None, :, :] - prototypes[:, None, :]  # (K, M, 3)
        dir_norm_sq = np.maximum(np.sum(direction * direction, axis=-1), 1e-9)  # (K, M)

        # alpha[..., k, m] = <I - J_k, C_m - J_k> / ||C_m - J_k||^2, clipped.
        alpha = np.einsum("hwkc,kmc->hwkm", diff, direction) / dir_norm_sq[None, None, :, :]
        alpha = np.clip(alpha, 0.0, self.max_alpha)

        # residual = || (I - J_k) - alpha * (C_m - J_k) ||
        recon = alpha[..., None] * direction[None, None, :, :, :]  # (H, W, K, M, 3)
        resid = diff[:, :, :, None, :] - recon
        residual = np.sqrt(np.sum(resid * resid, axis=-1))  # (H, W, K, M)

        score = residual + self.alpha_penalty * alpha

        # Decide the contaminant type (cloud vs shadow) from spatially pooled
        # evidence: veils are regionally coherent, so the per-pixel best-class
        # score of each contaminant is smoothed before the argmin.  The
        # surface class itself is then chosen per pixel (class boundaries are
        # sharp and must not be blurred across).
        contaminant_score = score.min(axis=2)  # (H, W, M)
        if self.score_smooth_ksize and self.score_smooth_ksize >= 3:
            pooled = np.empty_like(contaminant_score)
            for m in range(num_m):
                pooled[:, :, m] = gaussian_blur(contaminant_score[:, :, m], ksize=self.score_smooth_ksize)
            contaminant_score = pooled
        best_m = np.argmin(contaminant_score, axis=-1)  # (H, W)

        rows = np.arange(h)[:, None]
        cols = np.arange(w)[None, :]
        score_for_m = score[rows, cols, :, best_m]  # (H, W, K)
        best_k = np.argmin(score_for_m, axis=-1)
        best_alpha = alpha[rows, cols, best_k, best_m]

        cloud_alpha = np.where(best_m == 0, best_alpha, 0.0)
        shadow_alpha = np.where(best_m == 1, best_alpha, 0.0)

        if self.smooth_ksize and self.smooth_ksize >= 3:
            cloud_alpha = gaussian_blur(cloud_alpha, ksize=self.smooth_ksize)
            shadow_alpha = gaussian_blur(shadow_alpha, ksize=self.smooth_ksize)
            cloud_alpha = np.clip(cloud_alpha, 0.0, self.max_alpha)
            shadow_alpha = np.clip(shadow_alpha, 0.0, self.max_alpha)

        # Suppress the tiny spurious opacities that the extra least-squares
        # degree of freedom extracts from sensor noise on clean pixels.
        cloud_alpha = np.where(cloud_alpha >= self.min_alpha, cloud_alpha, 0.0)
        shadow_alpha = np.where(shadow_alpha >= self.min_alpha, shadow_alpha, 0.0)

        return VeilEstimate(
            cloud_alpha=cloud_alpha,
            shadow_alpha=shadow_alpha,
            surface_class=best_k.astype(np.uint8),
        )

    # ------------------------------------------------------------------ #
    # Veil inversion
    # ------------------------------------------------------------------ #
    def remove(self, rgb: np.ndarray, estimate: VeilEstimate | None = None) -> np.ndarray:
        """Return the cloud/shadow-filtered RGB image (uint8)."""
        img = np.asarray(rgb)
        est = estimate or self.estimate(img)
        data = img.astype(np.float64)

        # Invert the shadow veil first (it is composited on top of the cloud
        # veil by the atmosphere: the shadowed surface may itself be cloudy).
        shadow = np.asarray(self.shadow_color, dtype=np.float64).reshape(1, 1, 3)
        a_s = np.clip(est.shadow_alpha, 0.0, self.max_alpha)[..., None]
        data = (data - a_s * shadow) / np.maximum(1.0 - a_s, 1.0 - self.max_alpha)

        cloud = np.asarray(self.cloud_color, dtype=np.float64).reshape(1, 1, 3)
        a_c = np.clip(est.cloud_alpha, 0.0, self.max_alpha)[..., None]
        data = (data - a_c * cloud) / np.maximum(1.0 - a_c, 1.0 - self.max_alpha)

        return np.clip(np.round(data), 0, 255).astype(np.uint8)

    def __call__(self, rgb: np.ndarray) -> np.ndarray:
        """Alias for :meth:`remove` so the remover composes as a plain function."""
        return self.remove(rgb)
