"""HSV threshold calibration from labelled samples.

The paper fixes its HSV colour ranges "through a process of trial and error"
for the Ross Sea summer season and notes that *"the same color limits may not
work for different regions of sea ice labeling, and a manual color limit
setup may be needed in those cases"*.  This module implements that future-work
item: given a (small) set of labelled tiles from a new region or season, it
derives per-class value-channel bands automatically from the per-class HSV
value distributions, producing a drop-in replacement for
:data:`repro.classes.HSV_RANGES`.

The calibration is deliberately simple and transparent — per-class value
percentiles with the band boundaries placed at the midpoints between adjacent
classes — because the downstream labeler only thresholds the V channel, and
simple percentile statistics are robust to the small labelled sample a
scientist would realistically provide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classes import NUM_CLASSES, HSVRange, SeaIceClass
from ..imops import rgb_to_hsv

__all__ = ["CalibrationResult", "calibrate_hsv_ranges"]


@dataclass
class CalibrationResult:
    """Calibrated per-class HSV ranges plus the statistics they came from."""

    hsv_ranges: dict
    class_value_percentiles: dict
    samples_per_class: dict

    def as_labeler_ranges(self) -> dict:
        """The mapping to pass as ``ColorSegmentationLabeler(hsv_ranges=...)``."""
        return dict(self.hsv_ranges)


def _class_value_stats(
    images: np.ndarray,
    labels: np.ndarray,
    lower_percentile: float,
    upper_percentile: float,
) -> tuple[dict, dict]:
    values = rgb_to_hsv(images.reshape(-1, 1, 3)).reshape(-1, 3)[:, 2].astype(np.float64)
    flat_labels = labels.reshape(-1)
    percentiles: dict = {}
    counts: dict = {}
    for cls in SeaIceClass:
        mask = flat_labels == int(cls)
        counts[cls] = int(mask.sum())
        if counts[cls] == 0:
            continue
        class_values = values[mask]
        percentiles[cls] = (
            float(np.percentile(class_values, lower_percentile)),
            float(np.median(class_values)),
            float(np.percentile(class_values, upper_percentile)),
        )
    return percentiles, counts


def calibrate_hsv_ranges(
    images: np.ndarray,
    labels: np.ndarray,
    lower_percentile: float = 2.0,
    upper_percentile: float = 98.0,
    min_samples_per_class: int = 50,
) -> CalibrationResult:
    """Derive per-class HSV value bands from labelled RGB samples.

    Parameters
    ----------
    images:
        ``(N, H, W, 3)`` uint8 tiles (or a single ``(H, W, 3)`` tile).
    labels:
        Matching ``(N, H, W)`` integer class maps.
    lower_percentile, upper_percentile:
        Percentiles of each class's V distribution used as its core band;
        the final band boundaries are the midpoints between adjacent classes'
        core bands, so the bands are contiguous and non-overlapping.
    min_samples_per_class:
        Calibration refuses to run when any class has fewer labelled pixels.

    Returns
    -------
    CalibrationResult
        With ``hsv_ranges`` covering the full 0–255 value axis: the darkest
        class starts at 0 and the brightest ends at 255, exactly like the
        paper's published bands.
    """
    imgs = np.asarray(images)
    labs = np.asarray(labels)
    if imgs.ndim == 3:
        imgs = imgs[None]
        labs = labs[None]
    if imgs.ndim != 4 or imgs.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) images, got shape {np.asarray(images).shape}")
    if labs.shape != imgs.shape[:3]:
        raise ValueError("labels must match the image stack shape")

    percentiles, counts = _class_value_stats(imgs, labs, lower_percentile, upper_percentile)
    missing = [cls for cls in SeaIceClass if counts.get(cls, 0) < min_samples_per_class]
    if missing:
        raise ValueError(
            f"not enough labelled pixels to calibrate classes {[c.name for c in missing]} "
            f"(need at least {min_samples_per_class} each)"
        )

    # Order the classes by their median V (dark -> bright) and place the band
    # boundaries midway between adjacent classes' core bands.
    ordered = sorted(SeaIceClass, key=lambda cls: percentiles[cls][1])
    boundaries = [0]
    for darker, brighter in zip(ordered, ordered[1:]):
        upper_of_darker = percentiles[darker][2]
        lower_of_brighter = percentiles[brighter][0]
        boundary = int(round((upper_of_darker + lower_of_brighter) / 2.0))
        boundary = int(np.clip(boundary, boundaries[-1] + 1, 254))
        boundaries.append(boundary)
    boundaries.append(255)

    hsv_ranges: dict = {}
    for index, cls in enumerate(ordered):
        lower_v = boundaries[index] if index == 0 else boundaries[index] + 1
        upper_v = boundaries[index + 1]
        hsv_ranges[cls] = HSVRange(lower=(0, 0, int(lower_v)), upper=(185, 255, int(upper_v)))

    if len(hsv_ranges) != NUM_CLASSES:
        raise RuntimeError("calibration produced an incomplete range set")
    return CalibrationResult(
        hsv_ranges=hsv_ranges,
        class_value_percentiles=percentiles,
        samples_per_class=counts,
    )
