"""Executor backends that run partition tasks for the sparklite engine.

Three interchangeable backends, each a thin adapter over the unified
execution-backend seam (:mod:`repro.backend`):

* :class:`SerialExecutor` — runs partitions one after another in-process
  (the 1-executor / 1-core baseline and the reference for correctness tests);
* :class:`ThreadPoolExecutorBackend` — thread-level parallelism, appropriate
  when the per-partition work releases the GIL (NumPy-heavy UDFs largely do);
* :class:`ProcessPoolExecutorBackend` — process-level parallelism, the local
  stand-in for the paper's multi-node Dataproc executors.

Every backend exposes the same ``run(partitions, task)`` interface, where
``task`` is a picklable callable applied to each partition's item list.  The
workers themselves — lifecycle, chunking, crash handling — live in the
backend seam; this layer only maps partitions onto :meth:`Backend.map`.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..backend.process import ProcessBackend
from ..backend.serial import SerialBackend
from ..backend.thread import ThreadBackend
from .partition import Partition

__all__ = [
    "ExecutorBackend",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "make_executor",
]


class ExecutorBackend(Protocol):
    """Common interface of all executor backends."""

    #: number of concurrent execution slots the backend provides
    parallelism: int

    def run(self, partitions: Sequence[Partition], task: Callable[[list], list]) -> list[list]:
        """Apply ``task`` to every partition's items, returning per-partition outputs in order."""
        ...  # pragma: no cover - protocol definition


def _run_on_backend(backend, partitions: Sequence[Partition], task) -> list[list]:
    """Map ``task`` over partition item lists, one partition per task message."""
    with backend:
        return backend.map(task, [list(p.items) for p in partitions], chunk_size=1)


class SerialExecutor:
    """Runs every partition in the driver process, one at a time."""

    parallelism = 1

    def run(self, partitions: Sequence[Partition], task: Callable[[list], list]) -> list[list]:
        return _run_on_backend(SerialBackend(), partitions, task)


class ThreadPoolExecutorBackend:
    """Thread-based backend (shared memory; good for GIL-releasing NumPy UDFs)."""

    def __init__(self, num_threads: int = 4) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.parallelism = num_threads

    def run(self, partitions: Sequence[Partition], task: Callable[[list], list]) -> list[list]:
        return _run_on_backend(ThreadBackend(num_workers=self.parallelism), partitions, task)


class ProcessPoolExecutorBackend:
    """Process-based backend: each partition task runs in a worker process."""

    def __init__(self, num_processes: int = 4, start_method: str | None = None) -> None:
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        self.parallelism = num_processes
        if start_method is None:
            import multiprocessing as mp

            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._start_method = start_method

    def run(self, partitions: Sequence[Partition], task: Callable[[list], list]) -> list[list]:
        if not partitions:
            return []
        backend = ProcessBackend(num_workers=self.parallelism, start_method=self._start_method)
        return _run_on_backend(backend, partitions, task)


def make_executor(kind: str = "serial", parallelism: int = 4) -> ExecutorBackend:
    """Build an executor backend by name (``"serial"``, ``"threads"`` or ``"processes"``)."""
    kind = kind.lower()
    if kind == "serial":
        return SerialExecutor()
    if kind == "threads":
        return ThreadPoolExecutorBackend(parallelism)
    if kind == "processes":
        return ProcessPoolExecutorBackend(parallelism)
    raise ValueError(f"unknown executor kind {kind!r}; expected serial / threads / processes")
