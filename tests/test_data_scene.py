"""Tests for repro.data.scene (scene synthesis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classes import NUM_CLASSES, SeaIceClass
from repro.data import Scene, SceneSpec, synthesize_scene, synthesize_scenes


class TestSceneSpec:
    def test_defaults_valid(self):
        spec = SceneSpec()
        assert sum(spec.normalized_fractions) == pytest.approx(1.0)

    def test_rejects_tiny_scene(self):
        with pytest.raises(ValueError):
            SceneSpec(height=4, width=4)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            SceneSpec(class_fractions=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            SceneSpec(class_fractions=(-0.1, 0.5, 0.6))

    def test_rejects_bad_cloud_coverage(self):
        with pytest.raises(ValueError):
            SceneSpec(cloud_coverage=1.4)

    def test_fraction_normalisation(self):
        spec = SceneSpec(class_fractions=(2.0, 1.0, 1.0))
        assert spec.normalized_fractions == pytest.approx((0.5, 0.25, 0.25))


class TestSynthesizeScene:
    def test_shapes_and_dtypes(self, cloudy_scene):
        assert cloudy_scene.rgb.shape == (96, 96, 3)
        assert cloudy_scene.rgb.dtype == np.uint8
        assert cloudy_scene.clean_rgb.shape == (96, 96, 3)
        assert cloudy_scene.class_map.shape == (96, 96)
        assert set(np.unique(cloudy_scene.class_map)).issubset(set(range(NUM_CLASSES)))

    def test_deterministic_given_seed(self):
        spec = SceneSpec(height=48, width=48, seed=9)
        a, b = synthesize_scene(spec), synthesize_scene(spec)
        np.testing.assert_array_equal(a.rgb, b.rgb)
        np.testing.assert_array_equal(a.class_map, b.class_map)

    def test_class_fractions_respected(self):
        spec = SceneSpec(height=128, width=128, class_fractions=(0.6, 0.25, 0.15), cloud_coverage=0.0, seed=1)
        scene = synthesize_scene(spec)
        fractions = np.bincount(scene.class_map.ravel(), minlength=3) / scene.class_map.size
        assert abs(fractions[int(SeaIceClass.THICK_ICE)] - 0.6) < 0.03
        assert abs(fractions[int(SeaIceClass.OPEN_WATER)] - 0.15) < 0.03

    def test_clear_scene_has_no_veil(self, clear_scene):
        assert clear_scene.cloud_shadow_fraction == 0.0
        np.testing.assert_array_equal(clear_scene.rgb, clear_scene.clean_rgb)

    def test_cloudy_scene_differs_from_clean(self, cloudy_scene):
        assert cloudy_scene.cloud_shadow_fraction > 0.05
        assert not np.array_equal(cloudy_scene.rgb, cloudy_scene.clean_rgb)

    def test_clouds_brighten_and_shadows_darken(self, cloudy_scene):
        veil = cloudy_scene.veil
        clean = cloudy_scene.clean_rgb.astype(int).mean(axis=-1)
        observed = cloudy_scene.rgb.astype(int).mean(axis=-1)
        cloud_only = (veil.cloud_alpha > 0.2) & (veil.shadow_alpha < 0.02)
        shadow_only = (veil.shadow_alpha > 0.2) & (veil.cloud_alpha < 0.02)
        if cloud_only.any():
            assert (observed - clean)[cloud_only].mean() > 0
        if shadow_only.any():
            assert (observed - clean)[shadow_only].mean() < 0

    def test_scene_shape_property(self, clear_scene):
        assert clear_scene.shape == (96, 96)


class TestSynthesizeScenes:
    def test_count_and_variety(self):
        scenes = synthesize_scenes(5, height=64, width=64, base_seed=0, cloudy_fraction=0.6)
        assert len(scenes) == 5
        fractions = [s.cloud_shadow_fraction for s in scenes]
        assert max(fractions) > min(fractions)

    def test_all_are_scene_instances(self):
        scenes = synthesize_scenes(2, height=32, width=32)
        assert all(isinstance(s, Scene) for s in scenes)

    def test_cloudy_fraction_zero_gives_mostly_clear(self):
        scenes = synthesize_scenes(4, height=64, width=64, base_seed=2, cloudy_fraction=0.0)
        assert all(s.cloud_shadow_fraction < 0.15 for s in scenes)

    def test_rejects_zero_scenes(self):
        with pytest.raises(ValueError):
            synthesize_scenes(0)

    def test_reproducible(self):
        a = synthesize_scenes(2, height=32, width=32, base_seed=11)
        b = synthesize_scenes(2, height=32, width=32, base_seed=11)
        np.testing.assert_array_equal(a[0].rgb, b[0].rgb)
        np.testing.assert_array_equal(a[1].class_map, b[1].class_map)
