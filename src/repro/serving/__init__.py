"""Long-lived model-serving subsystem (registry, micro-batching, streaming, HTTP).

Layering (stdlib + NumPy only):

* :mod:`repro.serving.registry` — name/version → ``.npz`` archive → warm
  :class:`~repro.unet.SceneClassifier`, with hot-swap on version bump.
* :mod:`repro.serving.batching` — queue + deadline/size micro-batcher that
  coalesces concurrent single-tile requests into batched forward passes.
* :mod:`repro.serving.streaming` — row-band streaming classification of
  scenes larger than memory, bit-identical to the whole-scene engine.
* :mod:`repro.serving.service` — JSON endpoints (``/healthz``, ``/models``,
  ``/predict``) over ``http.server``; ``repro-seaice serve`` is the CLI.

Reliability (deadlines, load shedding, circuit breakers, fault injection)
lives in :mod:`repro.reliability` and is threaded through every layer here:
requests carry a :class:`~repro.reliability.Deadline` from the HTTP edge
into backend dispatch, saturation sheds with 503 + ``Retry-After``, and
expired work answers 504 with per-stage timings.
"""

from .batching import BatcherStats, MicroBatcher, PendingPrediction
from .registry import ModelRecord, ModelRegistry
from .service import InferenceService, ServiceConfig, make_server, run_service
from .streaming import StreamingSceneClassifier

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "PendingPrediction",
    "ModelRecord",
    "ModelRegistry",
    "InferenceService",
    "ServiceConfig",
    "make_server",
    "run_service",
    "StreamingSceneClassifier",
]
