"""Tests for repro.imops.threshold."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imops import (
    ThresholdType,
    adaptive_mean_threshold,
    otsu_threshold,
    threshold,
    threshold_binary,
    threshold_binary_inv,
    threshold_tozero,
    threshold_tozero_inv,
    threshold_truncate,
)


class TestFixedThreshold:
    def test_binary(self, gray_image):
        out = threshold_binary(gray_image, 127)
        assert set(np.unique(out)).issubset({0, 255})
        np.testing.assert_array_equal(out == 255, gray_image > 127)

    def test_binary_inv_is_complement(self, gray_image):
        a = threshold_binary(gray_image, 100)
        b = threshold_binary_inv(gray_image, 100)
        assert np.all((a == 255) ^ (b == 255))

    def test_truncate_clamps_upper(self, gray_image):
        out = threshold_truncate(gray_image, 90)
        assert out.max() <= 90
        np.testing.assert_array_equal(out[gray_image <= 90], gray_image[gray_image <= 90])

    def test_tozero(self, gray_image):
        out = threshold_tozero(gray_image, 120)
        assert np.all(out[gray_image <= 120] == 0)
        np.testing.assert_array_equal(out[gray_image > 120], gray_image[gray_image > 120])

    def test_tozero_inv(self, gray_image):
        out = threshold_tozero_inv(gray_image, 120)
        assert np.all(out[gray_image > 120] == 0)
        np.testing.assert_array_equal(out[gray_image <= 120], gray_image[gray_image <= 120])

    def test_threshold_returns_level(self, gray_image):
        level, _ = threshold(gray_image, 42, kind=ThresholdType.BINARY)
        assert level == 42.0

    def test_rejects_multichannel(self, rgb_image):
        with pytest.raises(ValueError):
            threshold_binary(rgb_image, 127)

    def test_preserves_dtype(self, gray_image):
        assert threshold_truncate(gray_image, 90).dtype == gray_image.dtype

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(dtype=np.uint8, shape=st.tuples(st.integers(1, 12), st.integers(1, 12))),
        st.integers(0, 255),
    )
    def test_binary_partition_property(self, img, level):
        out = threshold_binary(img, level)
        assert np.count_nonzero(out == 255) + np.count_nonzero(out == 0) == img.size


class TestOtsu:
    def test_separates_bimodal_image(self):
        rng = np.random.default_rng(0)
        dark = rng.normal(40, 5, size=500)
        bright = rng.normal(200, 5, size=500)
        img = np.clip(np.concatenate([dark, bright]).reshape(40, 25), 0, 255).astype(np.uint8)
        level, out = otsu_threshold(img)
        assert 60 < level < 180
        # Essentially all bright pixels above, dark below.
        assert np.mean(out[img > 180] == 255) > 0.99
        assert np.mean(out[img < 60] == 0) > 0.99

    def test_constant_image_does_not_crash(self):
        img = np.full((8, 8), 77, dtype=np.uint8)
        level, out = otsu_threshold(img)
        assert level == 77.0
        assert out.shape == img.shape

    def test_empty_image_raises(self):
        with pytest.raises(ValueError):
            otsu_threshold(np.zeros((0, 0), dtype=np.uint8))

    def test_otsu_level_between_min_and_max(self, gray_image):
        level, _ = otsu_threshold(gray_image)
        assert gray_image.min() <= level <= gray_image.max()


class TestAdaptive:
    def test_detects_local_bright_spot_under_gradient(self):
        # A global threshold cannot separate a faint spot on a strong ramp.
        ramp = np.tile(np.linspace(0, 200, 64, dtype=np.uint8), (64, 1))
        img = ramp.copy()
        img[30:34, 10:14] = np.minimum(img[30:34, 10:14] + 40, 255)
        out = adaptive_mean_threshold(img, block_size=11, offset=5)
        assert out[31, 11] == 255

    def test_rejects_even_block_size(self, gray_image):
        with pytest.raises(ValueError):
            adaptive_mean_threshold(gray_image, block_size=4)

    def test_output_is_binary(self, gray_image):
        out = adaptive_mean_threshold(gray_image, block_size=9)
        assert set(np.unique(out)).issubset({0, 255})
