"""Admission control: bounded concurrency with immediate load shedding.

An unbounded server does not degrade under overload — it collapses: queues
grow without limit, every request's latency blows past its deadline, memory
climbs, and throughput *drops* because all the work being done is for
callers who already gave up.  The fix is to bound the work accepted and
reject the excess instantly: a shed request costs microseconds and tells
the client exactly when to retry (``Retry-After``), while an accepted
request is one the server can actually finish in time.

:class:`AdmissionController` is a non-blocking semaphore around the serving
hot path plus the shed/admit counters ``/stats`` and ``/healthz`` report.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..obs.metrics import get_registry

__all__ = ["AdmissionController", "OverloadedError"]


class OverloadedError(RuntimeError):
    """The service is past its high-water mark; the request was shed."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class AdmissionController:
    """Service-level concurrency limit with shed accounting.

    ``max_concurrent=None`` disables the limit but keeps the counters, so
    ``/stats`` stays meaningful either way.
    """

    def __init__(self, max_concurrent: int | None = 64, retry_after_s: float = 1.0) -> None:
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 (or None for unlimited)")
        self.max_concurrent = max_concurrent
        self.retry_after_s = float(retry_after_s)
        self._lock = threading.Lock()
        self._active = 0
        self._admitted = 0
        self._shed = 0
        self._peak_active = 0
        self._last_shed_at = 0.0
        self._m_outcomes = get_registry().counter(
            "repro_admission_total",
            "Admission-controller decisions (admitted vs shed)",
            ("outcome",),
        )
        self._m_active = get_registry().gauge(
            "repro_admission_active",
            "Requests currently inside the admission gate",
        )

    @contextmanager
    def acquire(self):
        """Admit one request for the duration of the block, or shed it now."""
        with self._lock:
            if self.max_concurrent is not None and self._active >= self.max_concurrent:
                self._shed += 1
                self._last_shed_at = time.monotonic()
                self._m_outcomes.inc(outcome="shed")
                raise OverloadedError(
                    f"service saturated ({self._active}/{self.max_concurrent} in flight); "
                    "request shed",
                    retry_after_s=self.retry_after_s,
                )
            self._active += 1
            self._admitted += 1
            self._peak_active = max(self._peak_active, self._active)
            self._m_outcomes.inc(outcome="admitted")
            self._m_active.set(self._active)
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
                self._m_active.set(self._active)

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    def recently_shed(self, window_s: float = 5.0) -> bool:
        """Whether a request was shed inside the last ``window_s`` seconds."""
        with self._lock:
            return self._shed > 0 and (time.monotonic() - self._last_shed_at) < window_s

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "max_concurrent": self.max_concurrent,
                "active": self._active,
                "peak_active": self._peak_active,
                "admitted": self._admitted,
                "shed": self._shed,
            }
