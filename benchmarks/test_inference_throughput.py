"""Scene-inference engine throughput — seed path vs the execution backends.

The seed repo classified scenes by looping tile batches through a model whose
layers unconditionally cached their backward state (im2col matrices, pooling
argmax masks), then stitched hard argmax labels.  The engine predicts
probability maps through a cache-free inference path and blend-stitches them,
dispatching tile batches through one of the unified execution backends
(``serial`` in-process, ``thread`` pool, ``fork`` workers attached to the
shared-memory model store).  This benchmark measures warm steady-state
tiles/sec of each arm on a 1024×1024 synthetic scene and checks the engine's
overlap-blended output agrees with the non-overlap output away from tile
seams.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backend import available_backends
from repro.data import SceneSpec, synthesize_scene
from repro.data.loader import image_to_tensor
from repro.imops.resize import assemble_from_tiles, split_into_tiles
from repro.nn.losses import softmax
from repro.parallel import available_cpu_count
from repro.unet import CompiledUNet, InferenceConfig, SceneClassifier, UNet, UNetConfig
from repro.unet.inference import predict_batch_probabilities

from conftest import BENCH_SMOKE, print_rows, update_bench_json

TILE = 256
SCENE = 512 if BENCH_SMOKE else 1024


@pytest.fixture(scope="module")
def big_scene():
    return synthesize_scene(SceneSpec(height=SCENE, width=SCENE, cloud_coverage=0.25, seed=42))


@pytest.fixture(scope="module")
def model():
    # dropout=0 so training-mode forward (the seed-equivalent path below)
    # computes exactly the same function as eval-mode forward.
    return UNet(UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=5))


def _seed_style_classify(model: UNet, scene_rgb: np.ndarray, batch_size: int = 8) -> np.ndarray:
    """The seed inference path, reproduced for comparison.

    The seed's layers cached backward state on every forward regardless of
    train/eval mode; running the (dropout-free) model in training mode *on
    the im2col/mask reference engines* reproduces that exact per-batch cost
    (training mode alone no longer does — the offset engine made the training
    forward fast too).  Tiles are predicted in the seed's default batches of
    8 and stitched as hard argmax labels.
    """
    from repro.nn import Conv2D, MaxPool2D

    engines = []
    for module in model.modules():
        if isinstance(module, (Conv2D, MaxPool2D)):
            engines.append((module, module.engine))
            module.engine = "im2col" if isinstance(module, Conv2D) else "mask"
    model.train()
    try:
        tiles, grid = split_into_tiles(scene_rgb, TILE)
        outputs = []
        for start in range(0, tiles.shape[0], batch_size):
            x = image_to_tensor(tiles[start : start + batch_size])
            outputs.append(softmax(model.forward(x), axis=1).argmax(axis=1).astype(np.uint8))
        stitched = assemble_from_tiles(np.concatenate(outputs, axis=0), (grid[0], grid[1]))
        return stitched[: scene_rgb.shape[0], : scene_rgb.shape[1]]
    finally:
        model.eval()
        for module, engine in engines:
            module.engine = engine


def _timed(func, *args):
    start = time.perf_counter()
    out = func(*args)
    return out, time.perf_counter() - start


@pytest.mark.benchmark(group="inference")
def test_inference_throughput_seed_vs_backends(model, big_scene):
    """Warm steady-state scene throughput of every execution backend.

    Each backend arm is measured the way the serving tier actually runs it:
    one persistent :class:`SceneClassifier` whose backend stays up across
    scenes — workers forked once, packed weights published once into the
    shared-memory store, plans compiled and I/O arenas allocated on a warm-up
    scene — then best-of-``repeats`` over the timed scenes.  Gates (full
    scale only, smoke runners are too noisy): the batched engine must be
    >= 2x the seed path, and the fork backend must not fall below the
    single-process batched arm — persistence + shared memory must at least
    pay for the worker round trips, and on multi-core hosts beat them.
    """
    scene = big_scene.rgb
    n_tiles = (SCENE // TILE) ** 2
    workers = max(2, min(4, available_cpu_count()))
    repeats = 1 if BENCH_SMOKE else 5
    # Smoke scale has only (512/256)² = 4 tiles; batch 2 keeps at least two
    # spans in flight so the fan-out backends still have work to overlap.
    batch = 2 if BENCH_SMOKE else 4

    model.predict_proba(image_to_tensor(np.zeros((1, TILE, TILE, 3), np.uint8)))  # warmup

    seed_map, t_seed = _timed(_seed_style_classify, model, scene)

    backends = ["serial", "thread"]
    if "fork" in available_backends():
        backends.append("fork")
    round_times: dict[str, list[float]] = {backend: [] for backend in backends}
    arm_maps: dict[str, np.ndarray] = {}
    classifiers: dict[str, SceneClassifier] = {}
    try:
        for backend in backends:
            config = InferenceConfig(
                tile_size=TILE, overlap=0, apply_cloud_filter=False, batch_size=batch,
                backend=backend, num_workers=1 if backend == "serial" else workers,
            )
            classifiers[backend] = SceneClassifier(model=model, config=config)
            classifiers[backend].classify_scene(scene)  # warm-up: fork, publish, compile
        # Timed rounds interleave the arms so load drift on a shared runner
        # lands on every backend equally rather than biasing whole arms.
        for _ in range(repeats):
            for backend in backends:
                arm_maps[backend], elapsed = _timed(classifiers[backend].classify_scene, scene)
                round_times[backend].append(elapsed)
    finally:
        for classifier in classifiers.values():
            classifier.close()
    arm_times = {backend: min(times) for backend, times in round_times.items()}

    t_batched = arm_times["serial"]
    labels = {"serial": f"engine batched (batch {batch})",
              "thread": f"engine + thread backend ({workers} workers)",
              "fork": f"engine + fork backend ({workers} workers)"}
    rows = [
        {"path": "seed serial (caching, batch 8)", "time_s": round(t_seed, 2),
         "tiles_per_s": round(n_tiles / t_seed, 2), "speedup": 1.0},
    ]
    for backend in backends:
        rows.append({
            "path": labels[backend], "time_s": round(arm_times[backend], 2),
            "tiles_per_s": round(n_tiles / arm_times[backend], 2),
            "speedup": round(t_seed / arm_times[backend], 2),
        })
    print_rows(f"Scene inference throughput ({n_tiles} tiles of {TILE}x{TILE}, "
               f"{available_cpu_count()} CPUs available, best of {repeats} warm runs)", rows)
    # Merge-write per section so a partial run (e.g. only this test) cannot
    # wipe the "compiled" section the CI regression guard reads.
    update_bench_json("inference_throughput", "config", {
        "tile": TILE, "scene": SCENE, "n_tiles": n_tiles, "batch": batch,
        "workers": workers, "repeats": repeats, "smoke": BENCH_SMOKE,
    })
    update_bench_json("inference_throughput", "rows", rows)
    # Keyed per backend for the CI fork-vs-batched regression guard.
    update_bench_json("inference_throughput", "backends", {
        backend: {"time_s": round(arm_times[backend], 4),
                  "tiles_per_s": round(n_tiles / arm_times[backend], 2)}
        for backend in backends
    })

    # Hard argmax stitching and probability stitching agree for disjoint tiles
    # up to prediction ties; the model is shared, so any mismatch is a seam bug.
    assert arm_maps["serial"].shape == scene.shape[:2]
    assert np.mean(arm_maps["serial"] == seed_map) > 0.999
    # Every backend arm must be *bit-identical* — same prediction seam, same
    # compiled plans, only the execution vehicle differs.
    for backend in backends[1:]:
        np.testing.assert_array_equal(arm_maps[backend], arm_maps["serial"])

    # Shared CI runners are too noisy to gate on a timing ratio — the smoke
    # run only records the numbers; the full-scale run enforces the gates.
    if not BENCH_SMOKE:
        best = max(n_tiles / t for t in arm_times.values())
        assert best >= 2.0 * (n_tiles / t_seed), (
            f"engine reached {best:.2f} tiles/s vs seed {n_tiles / t_seed:.2f} tiles/s"
        )
        if "fork" in arm_times:
            # On a single-CPU host the fork arm has nothing to parallelise, so
            # holding level with the in-process arm (shared memory paying for
            # the process hop) is the win condition.  Ambient load on a shared
            # runner is one-sided — it only ever *adds* time — but a single
            # contaminated round still poisons either arm's best (observed
            # per-round ratio spreads of 0.4x-1.8x on shared hosts).  Score
            # the pair two ways — best round vs best round, and the median of
            # the interleaved per-round ratios (immune to any one bad round) —
            # and gate on whichever is cleaner, with a 10% floor for jitter
            # that survives both estimators.
            best_ratio = min(round_times["fork"]) / min(round_times["serial"])
            pair_ratios = sorted(
                fork / serial
                for fork, serial in zip(round_times["fork"], round_times["serial"])
            )
            median_ratio = pair_ratios[len(pair_ratios) // 2]
            ratio = min(best_ratio, median_ratio)
            assert ratio <= 1.10, (
                f"fork backend ran {ratio:.2f}x the single-process batched arm "
                f"(best-round ratio {best_ratio:.2f}, per-round ratios "
                f"{[round(r, 2) for r in pair_ratios]})"
            )


@pytest.mark.benchmark(group="inference")
def test_compiled_plan_fixed_shape_serving_throughput(model):
    """Compiled plans must beat the generic eval forward on the fixed-shape
    single-tile serving workload, with near-zero steady-state allocations.

    The serving subsystem re-runs the same ``(1, 32, 32, 3)`` forward for
    every micro-batched request (PR 3's serving benchmark shape); this arm
    measures exactly that hot path — generic layer walk vs the arena-backed
    compiled plan — through the shared prediction seam, and records per-call
    allocation behaviour under ``tracemalloc``.
    """
    import tracemalloc

    serve_tile = 32
    iters = 60 if BENCH_SMOKE else 300
    rng = np.random.default_rng(11)
    tile = rng.integers(0, 255, size=(1, serve_tile, serve_tile, 3), dtype=np.uint8)
    engine = CompiledUNet(model)

    def uncompiled() -> np.ndarray:
        return predict_batch_probabilities(tile, model, None)

    def compiled() -> np.ndarray:
        return predict_batch_probabilities(tile, model, None, engine=engine)

    ref, out = uncompiled(), compiled()  # warm both paths (plan compiles here)
    np.testing.assert_allclose(out, ref, atol=1e-6)
    assert np.array_equal(out.argmax(axis=1), ref.argmax(axis=1))

    results = {}
    for path_name, fn in (("uncompiled", uncompiled), ("compiled", compiled)):
        fn()
        tracemalloc.start()
        base = tracemalloc.get_traced_memory()[0]
        start = time.perf_counter()
        for _ in range(iters):
            probs = fn()
        elapsed = time.perf_counter() - start
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        results[path_name] = {
            "path": path_name,
            "tiles_per_s": round(iters / elapsed, 2),
            "time_s": round(elapsed, 3),
            "peak_alloc_bytes": int(peak - base),
            "output_nbytes": int(probs.nbytes),
        }

    speedup = results["compiled"]["tiles_per_s"] / results["uncompiled"]["tiles_per_s"]
    # Steady-state allocations above the returned probability tensors
    # themselves (two generations are alive at the tracemalloc peak).
    overhead = results["compiled"]["peak_alloc_bytes"] - 2 * results["compiled"]["output_nbytes"]
    rows = list(results.values())
    for row in rows:
        row["speedup"] = round(row["tiles_per_s"] / results["uncompiled"]["tiles_per_s"], 2)
    print_rows(
        f"Fixed-shape serving forward ({iters} calls of 1x{serve_tile}x{serve_tile}, "
        f"arena {engine.cache_info()['arena_bytes']} B)", rows)
    update_bench_json("inference_throughput", "compiled", {
        "config": {"serve_tile": serve_tile, "iters": iters, "smoke": BENCH_SMOKE},
        "rows": rows,
        "alloc_overhead_bytes": int(overhead),
        "plan_cache": engine.cache_info(),
    })

    # The compiled arm must allocate (far) less than the generic walk; the
    # throughput gate runs only at full scale (smoke runners are too noisy).
    assert results["compiled"]["peak_alloc_bytes"] < results["uncompiled"]["peak_alloc_bytes"]
    assert overhead < 256 * 1024, f"compiled path allocates {overhead} B/call beyond its output"
    if not BENCH_SMOKE:
        assert speedup >= 1.3, f"compiled plan reached only {speedup:.2f}x over the generic forward"


class _PixelwiseModel:
    """Stub model whose per-pixel probabilities depend only on that pixel.

    Tiling-invariant by construction: any tile layout predicts the same
    probability vector for a given pixel, so stitched outputs must agree no
    matter how the scene was cut — which isolates the blending machinery.
    """

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        # x: (N, 3, H, W) in [0, 1]; three smooth, well-separated channel scores.
        r, g, b = x[:, 0], x[:, 1], x[:, 2]
        logits = np.stack([3.0 * r - g, 2.0 * g - 0.5 * b, 1.5 * b + 0.25 * r], axis=1)
        return softmax(logits.astype(np.float32), axis=1)


@pytest.mark.benchmark(group="inference")
def test_overlap_blend_matches_non_overlap_on_interiors(big_scene):
    """Blended overlap inference must reproduce the non-overlap output exactly
    wherever predictions are tiling-invariant (tile interiors and seams alike
    for a pixelwise model)."""
    scene = big_scene.rgb[:512, :768]
    stub = _PixelwiseModel()

    def run(overlap: int) -> tuple[np.ndarray, np.ndarray]:
        config = InferenceConfig(tile_size=TILE, overlap=overlap, apply_cloud_filter=False, batch_size=4)
        classifier = SceneClassifier(model=stub, config=config)  # type: ignore[arg-type]
        probs = classifier.classify_scene_proba(scene)
        return probs, probs.argmax(axis=-1).astype(np.uint8)

    probs0, map0 = run(0)
    probs64, map64 = run(64)

    assert probs0.shape == probs64.shape == scene.shape[:2] + (3,)
    np.testing.assert_allclose(probs64, probs0, atol=1e-6)
    np.testing.assert_array_equal(map64, map0)
    # Blended probabilities must still be normalised.
    np.testing.assert_allclose(probs64.sum(axis=-1), 1.0, atol=1e-6)
