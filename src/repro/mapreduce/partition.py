"""Partitions: the unit of distribution in the sparklite map-reduce engine.

A dataset is split into partitions; transformations are applied per
partition by an executor backend, and actions combine the per-partition
results.  This mirrors how a PySpark dataframe distributes S2 tiles over
the Google Cloud Dataproc cluster in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Partition", "partition_items", "default_num_partitions"]


@dataclass
class Partition:
    """One partition: an index plus the items it holds."""

    index: int
    items: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


def default_num_partitions(num_items: int, parallelism: int, partitions_per_slot: int = 2) -> int:
    """Pick a partition count: a couple of partitions per execution slot, capped by item count."""
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if num_items <= 0:
        return 1
    return max(1, min(num_items, parallelism * partitions_per_slot))


def partition_items(items: Sequence, num_partitions: int) -> list[Partition]:
    """Split ``items`` into ``num_partitions`` contiguous, balanced partitions."""
    items = list(items)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = len(items)
    num_partitions = min(num_partitions, max(1, n)) if n else 1
    partitions: list[Partition] = []
    base = n // num_partitions
    extra = n % num_partitions
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < extra else 0)
        partitions.append(Partition(index=index, items=items[start : start + size]))
        start += size
    return partitions
