"""Pure-NumPy image operations (the repo's OpenCV substitute).

Every classical transform the paper's thin-cloud/shadow filter and
colour-segmentation auto-labeler rely on is implemented here:

* :mod:`repro.imops.color` — RGB↔HSV/grayscale conversion (OpenCV uint8 conventions)
* :mod:`repro.imops.threshold` — binary / truncated / to-zero / Otsu / adaptive thresholding
* :mod:`repro.imops.filters` — Gaussian, box, median and bilateral filtering
* :mod:`repro.imops.arithmetic` — saturating add/subtract, absdiff, bit-wise ops, min-max normalisation
* :mod:`repro.imops.morphology` — erosion, dilation, opening, closing, small-object removal
* :mod:`repro.imops.resize` — nearest / bilinear resize, scene tiling and reassembly
"""

from .arithmetic import (
    absdiff,
    apply_mask,
    bitwise_and,
    bitwise_not,
    bitwise_or,
    min_max_normalize,
    saturating_add,
    saturating_subtract,
    scale_to_uint8,
)
from .color import (
    gray_to_rgb,
    hsv_to_rgb,
    merge_channels,
    rgb_to_gray,
    rgb_to_hsv,
    split_channels,
)
from .filters import bilateral_filter, box_filter, gaussian_blur, gaussian_kernel1d, median_blur
from .morphology import (
    dilate,
    erode,
    fill_holes,
    morph_close,
    morph_open,
    remove_small_objects,
    structuring_element,
)
from .resize import (
    TileGrid,
    assemble_from_tiles,
    blend_window,
    pad_to_multiple,
    resize_bilinear,
    resize_nearest,
    split_into_tiles,
)
from .threshold import (
    ThresholdType,
    adaptive_mean_threshold,
    otsu_threshold,
    threshold,
    threshold_binary,
    threshold_binary_inv,
    threshold_tozero,
    threshold_tozero_inv,
    threshold_truncate,
)

__all__ = [
    "absdiff",
    "apply_mask",
    "bitwise_and",
    "bitwise_not",
    "bitwise_or",
    "min_max_normalize",
    "saturating_add",
    "saturating_subtract",
    "scale_to_uint8",
    "gray_to_rgb",
    "hsv_to_rgb",
    "merge_channels",
    "rgb_to_gray",
    "rgb_to_hsv",
    "split_channels",
    "bilateral_filter",
    "box_filter",
    "gaussian_blur",
    "gaussian_kernel1d",
    "median_blur",
    "dilate",
    "erode",
    "fill_holes",
    "morph_close",
    "morph_open",
    "remove_small_objects",
    "structuring_element",
    "TileGrid",
    "assemble_from_tiles",
    "blend_window",
    "pad_to_multiple",
    "resize_bilinear",
    "resize_nearest",
    "split_into_tiles",
    "ThresholdType",
    "adaptive_mean_threshold",
    "otsu_threshold",
    "threshold",
    "threshold_binary",
    "threshold_binary_inv",
    "threshold_tozero",
    "threshold_tozero_inv",
    "threshold_truncate",
]
