"""Tests for repro.imops.resize (resizing, tiling, reassembly)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imops import (
    assemble_from_tiles,
    pad_to_multiple,
    resize_bilinear,
    resize_nearest,
    split_into_tiles,
)


class TestResize:
    def test_nearest_shape(self, rgb_image):
        out = resize_nearest(rgb_image, (20, 30))
        assert out.shape == (20, 30, 3)
        assert out.dtype == rgb_image.dtype

    def test_nearest_identity(self, gray_image):
        np.testing.assert_array_equal(resize_nearest(gray_image, gray_image.shape), gray_image)

    def test_nearest_preserves_label_values(self):
        labels = np.random.default_rng(0).integers(0, 3, size=(16, 16)).astype(np.uint8)
        out = resize_nearest(labels, (32, 32))
        assert set(np.unique(out)).issubset(set(np.unique(labels)))

    def test_bilinear_shape_and_dtype(self, rgb_image):
        out = resize_bilinear(rgb_image, (80, 112))
        assert out.shape == (80, 112, 3)
        assert out.dtype == np.uint8

    def test_bilinear_constant_image(self):
        img = np.full((10, 10), 77, dtype=np.uint8)
        out = resize_bilinear(img, (23, 17))
        assert np.all(out == 77)

    def test_bilinear_upscale_within_range(self, gray_image):
        out = resize_bilinear(gray_image, (96, 80))
        assert out.min() >= gray_image.min()
        assert out.max() <= gray_image.max()

    def test_rejects_nonpositive_target(self, gray_image):
        with pytest.raises(ValueError):
            resize_nearest(gray_image, (0, 10))
        with pytest.raises(ValueError):
            resize_bilinear(gray_image, (10, 0))


class TestPadAndTiles:
    def test_pad_to_multiple(self):
        img = np.ones((30, 45), dtype=np.uint8)
        out = pad_to_multiple(img, 16)
        assert out.shape == (32, 48)

    def test_pad_noop_when_already_multiple(self, gray_image):
        out = pad_to_multiple(gray_image, 8)
        assert out.shape == gray_image.shape

    def test_split_grid_and_count(self):
        img = np.arange(64 * 96 * 3, dtype=np.uint8).reshape(64, 96, 3)
        tiles, grid = split_into_tiles(img, 32)
        assert grid == (2, 3)
        assert tiles.shape == (6, 32, 32, 3)

    def test_split_assemble_round_trip_rgb(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 255, size=(64, 64, 3), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 16)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_split_assemble_round_trip_gray(self):
        rng = np.random.default_rng(3)
        img = rng.integers(0, 255, size=(48, 80), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 16)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_split_pads_non_multiple_scene(self):
        img = np.zeros((70, 50), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 32)
        assert grid == (3, 2)
        assert tiles.shape[0] == 6

    def test_assemble_rejects_wrong_count(self):
        tiles = np.zeros((5, 8, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            assemble_from_tiles(tiles, (2, 3))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.sampled_from([8, 16]))
    def test_round_trip_property(self, rows, cols, tile):
        rng = np.random.default_rng(rows * 17 + cols)
        img = rng.integers(0, 255, size=(rows * tile, cols * tile), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, tile)
        assert grid == (rows, cols)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_paper_tile_count(self):
        """66 scenes of 2048x2048 split into 256-pixel tiles give 4224 tiles (paper §IV-A)."""
        tiles_per_scene = (2048 // 256) ** 2
        assert 66 * tiles_per_scene == 4224
