"""Tests for the unified execution-backend seam (serial / thread / fork).

The load-bearing properties: every backend produces **bit-identical**
probability maps (they all execute the same prediction seam), the fork
backend's shared-memory segments are cleaned up in every exit path
(close, release, re-publish, worker crash), and a killed worker surfaces
as a :class:`BackendError` then respawns with its models republished.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.backend import (
    BackendError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    resolve_backend_name,
)
from repro.backend.store import SEGMENT_PREFIX, SharedModelStore, attach_model
from repro.cloudshadow import CloudShadowFilter
from repro.unet import InferenceConfig, SceneClassifier, UNet, tiny_unet_config
from repro.unet.inference import predict_batch_probabilities

BACKENDS = ["serial", "thread", "fork"]

pytestmark = pytest.mark.skipif(
    "fork" not in available_backends(), reason="fork start method unavailable"
)


def _segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith(SEGMENT_PREFIX)]


@pytest.fixture(scope="module")
def model():
    return UNet(tiny_unet_config(seed=3))


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(11)
    return rng.integers(0, 256, size=(9, 32, 32, 3), dtype=np.uint8)


def _build(name: str):
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(num_workers=2)
    return ProcessBackend(num_workers=2)


class TestResolution:
    def test_explicit_names_resolve_to_themselves(self):
        for name in BACKENDS:
            assert resolve_backend_name(name, 1) == name

    def test_auto_uses_num_workers_heuristic(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name("auto", 1) == "serial"
        assert resolve_backend_name("auto", 4) == "fork"

    def test_auto_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert resolve_backend_name("auto", 8) == "thread"
        assert resolve_backend_name(None, 1) == "thread"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name("dask", 1)

    def test_fork_rejected_without_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setattr("repro.backend.base._fork_available", lambda: False)
        with pytest.raises(ValueError, match="fork"):
            resolve_backend_name("fork", 4)
        assert resolve_backend_name("auto", 4) == "serial"

    def test_make_backend_builds_each_kind(self):
        for name, cls in [("serial", SerialBackend), ("thread", ThreadBackend),
                          ("fork", ProcessBackend)]:
            backend = make_backend(name, num_workers=2)
            assert isinstance(backend, cls)
            backend.close()


class TestCrossBackendParity:
    def test_predict_stack_bit_identical(self, model, stack):
        reference = None
        for name in BACKENDS:
            with _build(name) as backend:
                backend.publish_model("m", model, CloudShadowFilter())
                probs = backend.predict_stack("m", stack, batch_size=4)
            if reference is None:
                reference = probs
            else:
                assert np.array_equal(reference, probs), name
        # ... and identical to the raw compiled-plan seam run in-process.
        expected = np.concatenate([
            predict_batch_probabilities(stack[i : i + 4], model, CloudShadowFilter())
            for i in range(0, stack.shape[0], 4)
        ])
        assert np.array_equal(reference, expected)

    def test_predict_single_batch_bit_identical(self, model, stack):
        results = []
        for name in BACKENDS:
            with _build(name) as backend:
                backend.publish_model("m", model)
                results.append(backend.predict("m", stack[:3]))
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_map_preserves_order_everywhere(self):
        items = list(range(23))
        for name in BACKENDS:
            with _build(name) as backend:
                assert backend.map(_square, items, chunk_size=4) == [i * i for i in items]

    def test_scene_classifier_parity(self, model):
        rng = np.random.default_rng(5)
        scene = rng.integers(0, 256, size=(96, 96, 3), dtype=np.uint8)
        maps = {}
        for name in BACKENDS:
            config = InferenceConfig(tile_size=32, batch_size=2, backend=name, num_workers=2)
            with SceneClassifier(model, config) as classifier:
                maps[name] = classifier.classify_scene(scene)
        assert np.array_equal(maps["serial"], maps["thread"])
        assert np.array_equal(maps["serial"], maps["fork"])

    def test_thread_backend_uncompiled_predictions_race_free(self, model, stack):
        # The generic forward runs through the process-wide im2col scratch
        # workspace; concurrent uncompiled batches used to interleave in it
        # and corrupt each other's GEMM inputs.
        expected = np.concatenate([
            predict_batch_probabilities(stack[i : i + 3], model)
            for i in range(0, stack.shape[0], 3)
        ])
        with _build("thread") as backend:
            backend.publish_model("m", model, compile_plans=False)
            for _ in range(5):
                probs = backend.predict_stack("m", stack, batch_size=3)
                assert np.array_equal(probs, expected)


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom on {x}")


class TestSharedModelStore:
    def test_attach_reads_weights_zero_copy(self, model):
        store = SharedModelStore()
        try:
            spec = store.publish("m", model)
            attached = attach_model(spec)
            try:
                for name, param in attached.model.named_parameters().items():
                    assert not param.value.flags.writeable
                    assert np.array_equal(param.value, model.named_parameters()[name].value)
            finally:
                attached.close()
        finally:
            store.close()
        assert not _segments()

    def test_attached_prediction_matches_direct(self, model, stack):
        store = SharedModelStore()
        try:
            attached = attach_model(store.publish("m", model, CloudShadowFilter()))
            try:
                got = attached.predict(stack[:4])
            finally:
                attached.close()
        finally:
            store.close()
        expected = predict_batch_probabilities(stack[:4], model, CloudShadowFilter())
        assert np.array_equal(got, expected)

    def test_predict_into_out_buffer_identical(self, model, stack):
        store = SharedModelStore()
        try:
            attached = attach_model(store.publish("m", model))
            try:
                direct = attached.predict(stack[:4])
                out = np.empty_like(direct)
                returned = attached.predict(stack[:4], out=out)
            finally:
                attached.close()
        finally:
            store.close()
        assert returned is out
        assert np.array_equal(direct, out)

    def test_republish_replaces_segment(self, model):
        store = SharedModelStore()
        try:
            first = store.publish("m", model).segment_name
            second = store.publish("m", model).segment_name
            assert first != second
            assert len(_segments()) == 1
        finally:
            store.close()
        assert not _segments()

    def test_non_unet_rejected(self):
        store = SharedModelStore()
        with pytest.raises(TypeError, match="UNet"):
            store.publish("m", object())


class TestSharedMemoryLifecycle:
    def test_close_unlinks_model_and_io_segments(self, model, stack):
        backend = ProcessBackend(num_workers=2)
        with backend:
            backend.publish_model("m", model)
            backend.predict_stack("m", stack, batch_size=4)
            assert _segments()  # model segment + reusable I/O arena pair
        assert not _segments()

    def test_release_model_unlinks_everything_for_key(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            backend.predict_stack("m", stack, batch_size=4)
            backend.release_model("m")
            assert not _segments()
            assert not backend.has_model("m")
        assert not _segments()

    def test_io_segments_are_reused_across_calls(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            backend.predict_stack("m", stack, batch_size=4)
            first = set(_segments())
            backend.predict_stack("m", stack, batch_size=4)
            assert set(_segments()) == first

    def test_idle_worker_crash_respawns_transparently(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            before = backend.predict_stack("m", stack, batch_size=4)
            victim = backend._workers[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5)
            # The next checkout notices the corpse, respawns the worker and
            # republishes the store — the caller never sees the crash.
            after = backend.predict_stack("m", stack, batch_size=4)
            assert np.array_equal(before, after)
            assert backend._workers[0].process.pid != victim.pid
            assert backend.occupancy()["alive_workers"] == 1
        assert not _segments()

    def test_mid_flight_worker_death_raises_backend_error(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            worker = backend._workers[0]
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(5)
            # A call already holding the worker (past checkout) hits the dead
            # pipe and surfaces it as BackendError, marking the worker dead.
            with pytest.raises(BackendError, match="died"):
                worker.call("predict_batch", "m", stack[:2])
            assert worker.dead
            # ... and the backend as a whole still recovers on the next call.
            assert backend.predict("m", stack[:2]).shape[0] == 2
        assert not _segments()

    def test_predict_stack_nocopy_returns_live_arena(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            copied = backend.predict_stack("m", stack, batch_size=4, copy=True)
            arena = backend.predict_stack("m", stack, batch_size=4, copy=False)
            assert np.array_equal(copied, arena)
            snapshot = np.array(arena)
        assert np.array_equal(copied, snapshot)


class TestLifecycleAndErrors:
    def test_closed_backend_rejects_dispatch(self, model):
        backend = SerialBackend()
        backend.close()
        with pytest.raises(BackendError, match="closed"):
            backend.map(_square, [1, 2])

    def test_close_is_idempotent(self):
        for name in BACKENDS:
            backend = _build(name).start()
            backend.close()
            backend.close()

    def test_occupancy_reports_models_and_workers(self, model):
        with ProcessBackend(num_workers=2) as backend:
            backend.publish_model("m", model)
            info = backend.occupancy()
            assert info["backend"] == "fork"
            assert info["workers"] == 2
            assert info["models"] == ["m"]
            assert info["alive_workers"] == 2

    def test_worker_task_error_does_not_kill_worker(self, model, stack):
        with ProcessBackend(num_workers=1) as backend:
            backend.publish_model("m", model)
            pid = backend._workers[0].process.pid
            with pytest.raises(BackendError, match="failed"):
                backend.map(_boom, [1, 2, 3])
            # Unknown model keys are rejected parent-side before dispatch.
            with pytest.raises(KeyError):
                backend.predict("missing-key", stack[:2])
            # Same worker still serves afterwards (no respawn needed).
            assert backend.predict("m", stack[:2]).shape[0] == 2
            assert backend._workers[0].process.pid == pid
