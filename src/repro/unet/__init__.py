"""U-Net model, trainer and inference pipeline for sea-ice classification."""

from .blocks import DecoderBlock, DoubleConv, EncoderBlock
from .compiled import CompiledUNet, compile_unet_plan
from .inference import (
    InferenceConfig,
    SceneClassifier,
    predict_batch_probabilities,
    predict_tile_probabilities,
    predict_tiles,
)
from .model import UNet, UNetConfig, build_unet, paper_unet_config, tiny_unet_config
from .trainer import EpochStats, TrainingHistory, UNetTrainer

__all__ = [
    "CompiledUNet",
    "compile_unet_plan",
    "DecoderBlock",
    "DoubleConv",
    "EncoderBlock",
    "InferenceConfig",
    "SceneClassifier",
    "predict_batch_probabilities",
    "predict_tile_probabilities",
    "predict_tiles",
    "UNet",
    "UNetConfig",
    "build_unet",
    "paper_unet_config",
    "tiny_unet_config",
    "EpochStats",
    "TrainingHistory",
    "UNetTrainer",
]
