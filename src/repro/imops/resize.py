"""Image resizing, tiling and padding helpers.

The paper splits 2048×2048 Sentinel-2 scenes into 256×256 tiles before
auto-labeling and U-Net training, and the U-Net decoder up-samples feature
maps by a factor of two at every stage; this module provides both.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "resize_nearest",
    "resize_bilinear",
    "pad_to_multiple",
    "split_into_tiles",
    "assemble_from_tiles",
]


def resize_nearest(image: np.ndarray, new_shape: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbour resize to ``(new_h, new_w)``; preserves dtype and labels."""
    img = np.asarray(image)
    new_h, new_w = int(new_shape[0]), int(new_shape[1])
    if new_h <= 0 or new_w <= 0:
        raise ValueError("target shape must be positive")
    h, w = img.shape[:2]
    rows = np.minimum((np.arange(new_h) + 0.5) * h / new_h, h - 1).astype(np.intp)
    cols = np.minimum((np.arange(new_w) + 0.5) * w / new_w, w - 1).astype(np.intp)
    return img[rows][:, cols]


def resize_bilinear(image: np.ndarray, new_shape: tuple[int, int]) -> np.ndarray:
    """Bilinear resize to ``(new_h, new_w)`` with half-pixel centres.

    uint8 inputs are rounded back to uint8, float inputs stay float.
    """
    img = np.asarray(image)
    new_h, new_w = int(new_shape[0]), int(new_shape[1])
    if new_h <= 0 or new_w <= 0:
        raise ValueError("target shape must be positive")
    h, w = img.shape[:2]
    data = img.astype(np.float64)

    ys = (np.arange(new_h) + 0.5) * h / new_h - 0.5
    xs = (np.arange(new_w) + 0.5) * w / new_w - 0.5
    ys = np.clip(ys, 0, h - 1)
    xs = np.clip(xs, 0, w - 1)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).reshape(-1, 1)
    wx = (xs - x0).reshape(1, -1)
    if img.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]

    top = data[y0][:, x0] * (1 - wx) + data[y0][:, x1] * wx
    bot = data[y1][:, x0] * (1 - wx) + data[y1][:, x1] * wx
    out = top * (1 - wy) + bot * wy
    if img.dtype == np.uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out.astype(img.dtype, copy=False) if np.issubdtype(img.dtype, np.floating) else out


def pad_to_multiple(image: np.ndarray, multiple: int, mode: str = "reflect") -> np.ndarray:
    """Pad the bottom/right edges so height and width are multiples of ``multiple``."""
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    img = np.asarray(image)
    h, w = img.shape[:2]
    pad_h = (-h) % multiple
    pad_w = (-w) % multiple
    if pad_h == 0 and pad_w == 0:
        return img
    pad_spec = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (img.ndim - 2)
    return np.pad(img, pad_spec, mode=mode)


def split_into_tiles(image: np.ndarray, tile_size: int = 256) -> tuple[np.ndarray, tuple[int, int]]:
    """Split a scene into non-overlapping ``tile_size``×``tile_size`` tiles.

    The scene is padded (reflect) up to a tile-size multiple first, matching
    how the paper cuts 66 big scenes into 4224 tiles.

    Returns ``(tiles, grid)`` where ``tiles`` has shape
    ``(n_tiles, tile_size, tile_size[, C])`` and ``grid = (rows, cols)``.
    """
    if tile_size < 1:
        raise ValueError("tile_size must be >= 1")
    img = pad_to_multiple(np.asarray(image), tile_size)
    h, w = img.shape[:2]
    rows, cols = h // tile_size, w // tile_size
    if img.ndim == 2:
        tiles = img.reshape(rows, tile_size, cols, tile_size).swapaxes(1, 2)
        tiles = tiles.reshape(rows * cols, tile_size, tile_size)
    else:
        c = img.shape[2]
        tiles = img.reshape(rows, tile_size, cols, tile_size, c).swapaxes(1, 2)
        tiles = tiles.reshape(rows * cols, tile_size, tile_size, c)
    return np.ascontiguousarray(tiles), (rows, cols)


def assemble_from_tiles(tiles: np.ndarray, grid: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`split_into_tiles`: stitch tiles back into a scene."""
    tiles = np.asarray(tiles)
    rows, cols = grid
    if tiles.shape[0] != rows * cols:
        raise ValueError(f"expected {rows * cols} tiles, got {tiles.shape[0]}")
    t = tiles.shape[1]
    if tiles.ndim == 3:
        out = tiles.reshape(rows, cols, t, t).swapaxes(1, 2).reshape(rows * t, cols * t)
    else:
        c = tiles.shape[-1]
        out = tiles.reshape(rows, cols, t, t, c).swapaxes(1, 2).reshape(rows * t, cols * t, c)
    return np.ascontiguousarray(out)
