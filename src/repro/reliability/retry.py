"""Capped exponential backoff policy for retrying idempotent dispatches.

The fork backend's prediction ops are idempotent by construction — a span
writes only its own slice of the shared output arena — so a span whose
worker died or hung can simply run again on another worker.  The policy
bounds how hard we try: ``max_retries`` further attempts, sleeping
``base_delay_s * 2**attempt`` (capped at ``max_delay_s``) between them, and
never sleeping past a request deadline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .deadline import Deadline

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt ``n`` waits ``base * 2**n`` seconds."""

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped at ``max_delay_s``."""
        return min(self.base_delay_s * (2 ** max(0, attempt)), self.max_delay_s)

    def sleep(self, attempt: int, deadline: Deadline | None = None) -> None:
        """Sleep the backoff for ``attempt``, clipped to the deadline's budget."""
        delay = self.delay_s(attempt)
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None:
                delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)
