"""im2col / col2im: the vectorised core of NumPy convolution.

Convolution is expressed as one large matrix multiplication per batch: the
input windows are unrolled into columns (``im2col``), multiplied by the
flattened filter bank, and the gradient path re-folds columns back into
images (``col2im``).  The unrolling uses ``stride_tricks`` views so no
Python-level pixel loops are involved — the idiom the HPC optimisation guide
recommends for stencil-style workloads.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"non-positive conv output size for size={size}, kernel={kernel}, stride={stride}, pad={pad}")
    return out


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Unroll sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        ``(N, C, H, W)`` input batch.
    kernel_h, kernel_w, stride, pad:
        Convolution geometry (symmetric zero padding).

    Returns
    -------
    numpy.ndarray
        ``(N * out_h * out_w, C * kernel_h * kernel_w)`` matrix whose rows are
        the flattened receptive fields.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    s_n, s_c, s_h, s_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(s_n, s_c, s_h * stride, s_w * stride, s_h, s_w),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> rows ordered batch-major, then spatial.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold an im2col matrix back into an image batch, summing overlaps.

    This is the adjoint of :func:`im2col` and therefore exactly the operation
    needed to back-propagate through a convolution's input.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ValueError(f"cols has shape {cols.shape}, expected {(expected_rows, expected_cols)}")

    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    # reshaped: (N, C, kh, kw, out_h, out_w); scatter-add each kernel offset.
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += reshaped[:, :, i, j, :, :]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
