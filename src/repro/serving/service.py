"""JSON-over-HTTP serving front-end (stdlib ``http.server`` only).

The service wires the other serving pieces together: a
:class:`~repro.serving.registry.ModelRegistry` resolves model names to warm
classifiers, and every model gets one shared
:class:`~repro.serving.batching.MicroBatcher`, so tiles from *concurrent*
HTTP requests (``ThreadingHTTPServer`` runs one thread per connection)
coalesce into single batched forward passes.

Endpoints::

    GET  /healthz   → {"status": "ok", "uptime_s": ..., "models": [...]}
    GET  /models    → registry listing (versions, latest, what is warm)
    POST /predict   → {"model": "name", "version": 2, "tile": [[[r,g,b]...]]}
                    → {"class_map": [[...]], "counts": {...}, ...}

``/predict`` accepts one ``tile`` (``(H, W, 3)`` nested uint8 lists) or a
``tiles`` batch, defaults to the registry's only model when just one is
registered, and returns per-class probability maps instead of the argmax
map when ``"proba": true``.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..obs.metrics import get_registry
from ..obs.trace import emit_trace, new_trace_id, should_sample
from ..reliability import (
    AdmissionController,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    OverloadedError,
    faults_enabled,
)
from .batching import MicroBatcher
from .registry import ModelRegistry

__all__ = ["ServiceConfig", "InferenceService", "make_server", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the HTTP front-end and its micro-batchers.

    ``bucket_batches`` (default on) makes every micro-batcher pad flushed
    batches up to power-of-two sizes, pinning the compiled-plan engine to a
    fixed set of batch shapes per tile shape.

    ``request_timeout_s`` is also the request *deadline*: it is pinned at the
    HTTP edge and propagated through the batcher queue into backend dispatch,
    so expired work is dropped at every stage instead of computed (HTTP 504).
    ``max_queue`` bounds each micro-batcher's queue and ``max_concurrent``
    caps in-flight ``/predict`` requests service-wide — past either high-water
    mark the request is shed immediately (HTTP 503 + ``Retry-After``).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_batch: int = 16
    batch_window_s: float = 0.005
    request_timeout_s: float = 60.0
    bucket_batches: bool = True
    max_queue: int | None = 128
    max_concurrent: int | None = 64
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 (or None for unlimited)")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")


class InferenceService:
    """Registry + per-model micro-batchers behind a JSON API (HTTP-agnostic)."""

    def __init__(self, registry: ModelRegistry, config: ServiceConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.started_at = time.time()
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            retry_after_s=self.config.retry_after_s,
        )
        self._batchers: dict[tuple[str, int], MicroBatcher] = {}
        self._lock = threading.Lock()
        self._requests = 0
        self._tiles = 0
        self._expired = 0  # requests answered 504 (deadline exceeded)
        registry_m = get_registry()
        self._m_requests = registry_m.counter(
            "repro_requests_total",
            "Predict requests by outcome (ok/expired/shed/breaker_open/client_error/error)",
            ("status",),
        )
        self._m_latency = registry_m.histogram(
            "repro_request_latency_ms",
            "End-to-end /predict latency per model",
            ("model",),
        )
        self._m_stage = registry_m.histogram(
            "repro_request_stage_ms",
            "Per-stage /predict latency breakdown",
            ("stage",),
        )
        # Warm-model eviction (LRU cap or version hot-swap) retires the
        # evicted entry's micro-batcher — and with it the pinned plans.
        registry.add_evict_listener(self._on_warm_evicted)

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        degraded = []
        if self.admission.recently_shed():
            degraded.append("shedding load")
        open_breakers = [
            f"{name}/{version}"
            for (name, version), breaker in self.registry.breakers().items()
            if breaker.state != "closed"
        ]
        if open_breakers:
            degraded.append(f"circuit open: {', '.join(sorted(open_breakers))}")
        return {
            "status": "degraded" if degraded else "ok",
            "degraded_reasons": degraded,
            "uptime_s": round(time.time() - self.started_at, 3),
            "models": sorted(self.registry.models()),
            "requests": self._requests,
            "tiles": self._tiles,
            "shed": self.admission.shed,
            "expired": self._expired,
        }

    def models_payload(self) -> dict:
        models = self.registry.models()
        warm = set(self.registry.loaded_versions())
        return {
            "models": [
                {
                    "name": name,
                    "versions": versions,
                    "latest": versions[-1],
                    "warm": [v for v in versions if (name, v) in warm],
                }
                for name, versions in models.items()
            ]
        }

    # ------------------------------------------------------------------ #
    def _resolve_model_name(self, name: str | None) -> str:
        if name:
            return name
        models = sorted(self.registry.models())
        if len(models) == 1:
            return models[0]
        raise KeyError(
            "request must name a 'model' when the registry holds "
            f"{len(models)} models: {models}"
        )

    def _batcher(self, name: str, version: int | None) -> tuple[MicroBatcher, tuple[str, int]]:
        record = self.registry.record(name, version)
        key = (record.name, record.version)
        with self._lock:
            batcher = self._batchers.get(key)
        if batcher is not None:
            return batcher, key

        # Cold path outside the lock: loading a big archive must not stall
        # requests for models that are already warm.
        classifier = self.registry.classifier(record.name, record.version)

        batcher = MicroBatcher(
            classifier.predict_batch,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.batch_window_s,
            bucket_batches=self.config.bucket_batches,
            max_queue=self.config.max_queue,
            name=f"{record.name}/{record.version}",
        )
        retired: list[MicroBatcher] = []
        with self._lock:
            existing = self._batchers.get(key)
            if existing is not None:
                retired.append(batcher)  # lost the load race; keep the first
                batcher = existing
            else:
                self._batchers[key] = batcher
                if version is None:
                    # Hot swap: stop serving superseded versions of this model.
                    for other in [k for k in self._batchers if k[0] == record.name and k[1] < record.version]:
                        retired.append(self._batchers.pop(other))
        for old in retired:
            old.close()
        return batcher, key

    def predict_payload(self, body: dict, trace_id: str | None = None) -> dict:
        """Serve one ``/predict`` request body; raises ``ValueError``/``KeyError``.

        ``trace_id`` is the request's correlation id (the HTTP layer passes
        the honoured ``X-Request-Id``); one is minted for direct API callers.
        Every outcome increments ``repro_requests_total`` by status, and a
        successful response carries its per-stage ``stage_timings`` plus the
        trace id.
        """
        if trace_id is None:
            trace_id = new_trace_id()
        try:
            payload = self._predict(body, trace_id)
        except (DeadlineExceeded, TimeoutError):
            self._m_requests.inc(status="expired")
            raise
        except CircuitOpenError:
            self._m_requests.inc(status="breaker_open")
            raise
        except OverloadedError:
            self._m_requests.inc(status="shed")
            raise
        except (ValueError, KeyError):
            self._m_requests.inc(status="client_error")
            raise
        except Exception:
            self._m_requests.inc(status="error")
            raise
        self._m_requests.inc(status="ok")
        return payload

    def _predict(self, body: dict, trace_id: str) -> dict:
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        if ("tile" in body) == ("tiles" in body):
            raise ValueError("request must provide exactly one of 'tile' or 'tiles'")
        raw = body.get("tile") if "tile" in body else body.get("tiles")
        try:
            stack = np.asarray(raw, dtype=np.uint8)
        except (OverflowError, TypeError, ValueError) as exc:
            raise ValueError(f"tile pixels must be uint8 values in [0, 255]: {exc}") from exc
        if "tile" in body:
            stack = stack[None]
        if stack.ndim != 4 or stack.shape[-1] != 3:
            raise ValueError(f"tiles must be (H, W, 3) uint8 arrays, got shape {stack.shape[1:]}")

        name = self._resolve_model_name(body.get("model"))
        version = body.get("version")
        return_proba = bool(body.get("proba", False))
        start = time.perf_counter()
        deadline = Deadline(self.config.request_timeout_s)
        with self.admission.acquire():
            batcher, (name, resolved_version) = self._batcher(name, version)
            resolve_ms = deadline.elapsed_s() * 1e3
            breaker = self.registry.breaker(name, resolved_version)
            breaker.check()
            pending = []
            queued_ms: float | None = None
            try:
                pending = [batcher.submit(tile, deadline=deadline, trace_id=trace_id)
                           for tile in stack]
                queued_ms = deadline.elapsed_s() * 1e3 - resolve_ms
                probs = np.stack([p.result(deadline.remaining()) for p in pending])
            except (DeadlineExceeded, TimeoutError) as exc:
                # The client's budget ran out — drop whatever is still queued
                # and report where the time went.  Not a breaker failure: a
                # timeout says nothing about the model's health.
                for p in pending:
                    p.cancel()
                breaker.record_cancelled()
                with self._lock:
                    self._expired += 1
                if not isinstance(exc, DeadlineExceeded):
                    exc = DeadlineExceeded(str(exc), stage="await result")
                exc.stage_timings = {
                    "resolve_ms": round(resolve_ms, 3),
                    "submit_ms": None if queued_ms is None else round(queued_ms, 3),
                    "total_ms": round(deadline.elapsed_s() * 1e3, 3),
                    "budget_ms": round(self.config.request_timeout_s * 1e3, 3),
                }
                raise exc from None
            except OverloadedError:
                breaker.record_cancelled()  # shed, not a model failure
                raise
            except (ValueError, KeyError):
                breaker.record_cancelled()  # client error, not a model failure
                raise
            except Exception:
                breaker.record_failure()
                raise
            breaker.record_success()
        class_maps = probs.argmax(axis=1).astype(np.uint8)
        with self._lock:
            self._requests += 1
            self._tiles += len(pending)

        # Stage breakdown.  Tiles of one request flush (near-)together, so
        # concurrent stages aggregate with max, not sum: two tiles waiting in
        # the same queue wait once, wall-clock-wise.  Stitch is everything the
        # service does after compute (result stitching, argmax, counts) —
        # defined as the remainder so the spans always sum to ``elapsed_ms``.
        spans = {"resolve_ms": resolve_ms}
        for stage in ("queue_wait_ms", "batch_assembly_ms", "dispatch_ms", "compute_ms"):
            spans[stage] = max((p.timings.get(stage, 0.0) for p in pending), default=0.0)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        spans["stitch_ms"] = max(0.0, elapsed_ms - sum(spans.values()))
        for stage, value in spans.items():
            self._m_stage.observe(value, stage=stage.removesuffix("_ms"))
        self._m_latency.observe(elapsed_ms, model=name)

        values, counts = np.unique(class_maps, return_counts=True)
        payload: dict = {
            "model": name,
            "version": resolved_version,
            "num_tiles": int(stack.shape[0]),
            "tile_shape": list(stack.shape[1:3]),
            "class_counts": {int(v): int(c) for v, c in zip(values, counts)},
            "elapsed_ms": round(elapsed_ms, 3),
            "trace_id": trace_id,
            "stage_timings": {k: round(v, 3) for k, v in spans.items()},
        }
        if should_sample(trace_id):
            emit_trace({
                "trace_id": trace_id,
                "model": name,
                "version": resolved_version,
                "num_tiles": int(stack.shape[0]),
                "batch_size": max((p.timings.get("batch_size", 1) for p in pending), default=1),
                "elapsed_ms": round(elapsed_ms, 3),
                "spans": {k: round(v, 3) for k, v in spans.items()},
                "ts": time.time(),
            })
        maps_out = class_maps.tolist() if "tiles" in body else class_maps[0].tolist()
        if return_proba:
            payload["proba"] = probs.tolist() if "tiles" in body else probs[0].tolist()
        payload["class_map"] = maps_out
        return payload

    def _on_warm_evicted(self, key: tuple[str, int]) -> None:
        """Registry listener: close the micro-batcher of a retired warm model."""
        with self._lock:
            batcher = self._batchers.pop(key, None)
        if batcher is not None:
            batcher.close()

    def batcher_stats(self) -> dict:
        with self._lock:
            batchers = sorted(self._batchers.items())
        stats = {}
        for (name, version), batcher in batchers:
            entry = batcher.stats().to_dict()
            entry["flush_size_histogram"] = batcher.flush_size_histogram()
            stats[f"{name}/{version}"] = entry
        return stats

    def plan_cache_stats(self) -> dict:
        """Per-warm-model ``PlanCache.info()`` — hits, misses, evictions,
        arena bytes — from every classifier that compiles plans (``/stats``)."""
        stats: dict = {}
        for name, version in self.registry.loaded_versions():
            classifier = self.registry.warm_classifier(name, version)
            if classifier is None:  # raced retirement between the two reads
                continue
            info = classifier.plan_cache_info()
            if info is not None:
                stats[f"{name}/{version}"] = info
        return stats

    def backend_stats(self) -> dict:
        """Execution-backend occupancy per warm model (``/stats``).

        A warm classifier with an in-process (serial) config reports just its
        backend name; thread/fork classifiers report live worker occupancy,
        published models and dispatch counters from :meth:`Backend.occupancy`.
        """
        stats: dict = {}
        for name, version in self.registry.loaded_versions():
            classifier = self.registry.warm_classifier(name, version)
            if classifier is None:  # raced retirement between the two reads
                continue
            backend = classifier.backend
            if backend is None:
                stats[f"{name}/{version}"] = {"backend": "serial", "workers": 1}
            else:
                stats[f"{name}/{version}"] = backend.occupancy()
        return stats

    def stats_payload(self) -> dict:
        """The ``/stats`` body: batcher counters, backend occupancy, warm
        models, plus the reliability picture (admission, breakers, 504s)."""
        return {
            "batchers": self.batcher_stats(),
            "backends": self.backend_stats(),
            "plan_caches": self.plan_cache_stats(),
            "metrics": get_registry().to_dict(),
            "warm_models": {
                "count": self.registry.warm_count(),
                "max_warm": self.registry.max_warm,
                "loaded": [f"{name}/{version}" for name, version in self.registry.loaded_versions()],
            },
            "reliability": {
                "admission": self.admission.to_dict(),
                "breakers": {
                    f"{name}/{version}": breaker.to_dict()
                    for (name, version), breaker in sorted(self.registry.breakers().items())
                },
                "expired_requests": self._expired,
                "quarantined_archives": self.registry.quarantined_paths(),
                "faults_enabled": faults_enabled(),
            },
        }

    def close(self) -> None:
        self.registry.remove_evict_listener(self._on_warm_evicted)
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()


# ---------------------------------------------------------------------- #
# HTTP layer
# ---------------------------------------------------------------------- #
def _make_handler(service: InferenceService, quiet: bool) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt: str, *args) -> None:  # pragma: no cover - console noise
            if not quiet:
                super().log_message(fmt, *args)

        def _send_json(self, status: int, payload: dict,
                       headers: dict[str, str] | None = None) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for key, value in (headers or {}).items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                if self.path in ("/healthz", "/health"):
                    self._send_json(200, service.health())
                elif self.path == "/models":
                    self._send_json(200, service.models_payload())
                elif self.path == "/stats":
                    self._send_json(200, service.stats_payload())
                elif self.path == "/metrics":
                    self._send_text(
                        200,
                        get_registry().render_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json(404, {"error": f"unknown path {self.path!r}"})
            except Exception as exc:  # noqa: BLE001 - must answer the socket
                self._send_json(500, {"error": str(exc)})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/predict":
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            # Honour the caller's correlation id, mint one otherwise; every
            # response — success or error — carries it in the body and echoes
            # it in the X-Request-Id header.
            trace_id = (self.headers.get("X-Request-Id") or "").strip() or new_trace_id()
            echo = {"X-Request-Id": trace_id}
            try:
                length = int(self.headers.get("Content-Length", "0"))
                try:
                    body = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError as exc:
                    raise ValueError(f"request body is not valid JSON: {exc}") from exc
                self._send_json(200, service.predict_payload(body, trace_id=trace_id),
                                headers=echo)
            except (ValueError, KeyError) as exc:
                # str(KeyError) wraps the message in repr quotes; unwrap it.
                message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
                self._send_json(400, {"error": message, "trace_id": trace_id}, headers=echo)
            except (OverloadedError, CircuitOpenError) as exc:
                # Shed: tell the client when it is worth coming back.
                retry_after = max(0.001, exc.retry_after_s)
                self._send_json(
                    503,
                    {"error": str(exc), "retry_after_s": round(retry_after, 3),
                     "trace_id": trace_id},
                    headers={"Retry-After": f"{retry_after:.3f}", **echo},
                )
            except DeadlineExceeded as exc:
                self._send_json(
                    504,
                    {"error": str(exc), "stage": exc.stage,
                     "stage_timings": exc.stage_timings or {}, "trace_id": trace_id},
                    headers=echo,
                )
            except TimeoutError as exc:
                self._send_json(504, {"error": str(exc), "stage": "", "stage_timings": {},
                                      "trace_id": trace_id}, headers=echo)
            except Exception as exc:  # noqa: BLE001 - must answer the socket
                self._send_json(500, {"error": str(exc), "trace_id": trace_id}, headers=echo)

    return Handler


def make_server(
    service: InferenceService, host: str | None = None, port: int | None = None, quiet: bool = True
) -> ThreadingHTTPServer:
    """Bind a :class:`ThreadingHTTPServer` for ``service`` (port 0 → ephemeral).

    The caller owns the server: run ``serve_forever()`` (often in a thread),
    then ``shutdown()`` + ``server_close()`` and ``service.close()``.
    """
    host = service.config.host if host is None else host
    port = service.config.port if port is None else port
    return ThreadingHTTPServer((host, port), _make_handler(service, quiet))


def run_service(service: InferenceService, quiet: bool = False, on_ready=None) -> None:
    """Blocking convenience runner used by the CLI (Ctrl-C or SIGTERM to stop).

    ``on_ready(server)`` is called after the socket is bound but before
    requests are served — the CLI uses it to print the machine-readable
    ready line with the actual port (``--port 0`` binds an ephemeral one).

    SIGTERM triggers a *graceful drain*: the listener stops accepting, every
    in-flight handler thread is joined (``ThreadingHTTPServer`` defaults to
    ``block_on_close``), the micro-batchers flush and close, and the
    registry retires every warm classifier — shutting backends down and
    releasing their shared-memory segments — before the process exits 0.
    """

    server = make_server(service, quiet=quiet)

    def _drain(signum, frame):  # pragma: no cover - signal delivery timing
        # shutdown() must not be called from the thread running
        # serve_forever() (it would deadlock waiting on itself), and the
        # signal handler runs on exactly that (main) thread.
        threading.Thread(target=server.shutdown, name="serve-drain", daemon=True).start()

    previous_handler = None
    try:
        previous_handler = signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - not on the main thread
        previous_handler = None
    try:
        if on_ready is not None:
            on_ready(server)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_handler is not None:
            try:
                signal.signal(signal.SIGTERM, previous_handler)
            except (ValueError, TypeError):  # pragma: no cover - defensive
                pass
        # server_close() joins the in-flight handler threads (drain), then
        # the serving pieces release everything they own.
        server.server_close()
        service.close()
        service.registry.close()
