"""Pixel-wise classification metrics (accuracy, precision, recall, F1, confusion matrix).

These are the evaluation metrics of paper §IV-A; they are computed over
per-pixel class maps (2-D integer arrays or flattened vectors) with the
three sea-ice classes: thick ice, thin ice and open water.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "confusion_matrix",
    "normalize_confusion",
    "accuracy_score",
    "precision_recall_f1",
    "per_class_accuracy",
    "iou_score",
    "ClassificationReport",
    "classification_report",
]


def _flatten_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.shape != p.shape:
        raise ValueError(f"y_true and y_pred sizes differ: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    return t, p


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Return the ``(num_classes, num_classes)`` count matrix ``C[i, j]``.

    ``C[i, j]`` counts pixels whose true class is ``i`` and predicted class is
    ``j`` (rows = truth, columns = prediction).
    """
    t, p = _flatten_pair(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(t.max(), p.max())) + 1
    if (t < 0).any() or (p < 0).any():
        raise ValueError("class labels must be non-negative integers")
    if (t >= num_classes).any() or (p >= num_classes).any():
        raise ValueError("labels exceed num_classes")
    idx = t.astype(np.intp) * num_classes + p.astype(np.intp)
    counts = np.bincount(idx, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def normalize_confusion(matrix: np.ndarray, axis: str = "true") -> np.ndarray:
    """Normalise a confusion matrix to percentages.

    ``axis="true"`` makes each row sum to 100 (per-class recall view, the
    layout of the paper's Figure 13); ``axis="pred"`` makes each column sum
    to 100 (per-class precision view).
    """
    m = np.asarray(matrix, dtype=np.float64)
    if axis == "true":
        denom = m.sum(axis=1, keepdims=True)
    elif axis == "pred":
        denom = m.sum(axis=0, keepdims=True)
    else:
        raise ValueError("axis must be 'true' or 'pred'")
    return 100.0 * m / np.maximum(denom, 1e-12)


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Overall fraction of correctly classified pixels."""
    t, p = _flatten_pair(y_true, y_pred)
    return float(np.mean(t == p))


def per_class_accuracy(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Recall of every class (the diagonal of the row-normalised confusion matrix / 100)."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    denom = np.maximum(cm.sum(axis=1), 1)
    return cm.diagonal() / denom


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    num_classes: int | None = None,
    average: str = "macro",
) -> tuple[float, float, float]:
    """Precision, recall and F1 score.

    ``average="macro"`` (paper default) averages the per-class scores with
    equal class weight; ``average="weighted"`` weights by class support;
    ``average="micro"`` pools all pixels (equals accuracy for single-label
    classification).
    """
    cm = confusion_matrix(y_true, y_pred, num_classes).astype(np.float64)
    tp = cm.diagonal()
    support = cm.sum(axis=1)
    predicted = cm.sum(axis=0)

    if average == "micro":
        total = cm.sum()
        p = r = tp.sum() / max(total, 1e-12)
        f1 = p
        return float(p), float(r), float(f1)

    with np.errstate(invalid="ignore", divide="ignore"):
        prec_c = np.where(predicted > 0, tp / np.maximum(predicted, 1e-12), 0.0)
        rec_c = np.where(support > 0, tp / np.maximum(support, 1e-12), 0.0)
        f1_c = np.where(prec_c + rec_c > 0, 2 * prec_c * rec_c / np.maximum(prec_c + rec_c, 1e-12), 0.0)

    if average == "macro":
        present = support > 0
        if not present.any():
            return 0.0, 0.0, 0.0
        return float(prec_c[present].mean()), float(rec_c[present].mean()), float(f1_c[present].mean())
    if average == "weighted":
        weights = support / max(support.sum(), 1e-12)
        return float((prec_c * weights).sum()), float((rec_c * weights).sum()), float((f1_c * weights).sum())
    raise ValueError("average must be 'macro', 'weighted' or 'micro'")


def iou_score(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Per-class intersection-over-union (Jaccard index)."""
    cm = confusion_matrix(y_true, y_pred, num_classes).astype(np.float64)
    tp = cm.diagonal()
    union = cm.sum(axis=1) + cm.sum(axis=0) - tp
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(union > 0, tp / np.maximum(union, 1e-12), 0.0)


@dataclass
class ClassificationReport:
    """Bundle of every metric the paper reports for one model / dataset pair."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    confusion: np.ndarray
    confusion_percent: np.ndarray
    per_class_accuracy: np.ndarray
    class_names: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """Plain-Python summary suitable for printing or JSON dumping."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "per_class_accuracy": self.per_class_accuracy.tolist(),
            "confusion_percent": np.round(self.confusion_percent, 2).tolist(),
            "class_names": list(self.class_names),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = self.class_names or [f"class{i}" for i in range(len(self.per_class_accuracy))]
        lines = [
            f"accuracy={self.accuracy * 100:.2f}%  precision={self.precision * 100:.2f}%  "
            f"recall={self.recall * 100:.2f}%  f1={self.f1 * 100:.2f}%",
        ]
        for name, acc in zip(names, self.per_class_accuracy):
            lines.append(f"  {name:>12s}: {acc * 100:6.2f}%")
        return "\n".join(lines)


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    num_classes: int | None = None,
    class_names: list[str] | None = None,
) -> ClassificationReport:
    """Compute the full metric bundle used in Tables IV/V and Figure 13."""
    cm = confusion_matrix(y_true, y_pred, num_classes)
    prec, rec, f1 = precision_recall_f1(y_true, y_pred, num_classes=cm.shape[0])
    return ClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        precision=prec,
        recall=rec,
        f1=f1,
        confusion=cm,
        confusion_percent=normalize_confusion(cm),
        per_class_accuracy=per_class_accuracy(y_true, y_pred, cm.shape[0]),
        class_names=list(class_names) if class_names else [],
    )
