"""Model registry: name/version → checkpoint archive → warm classifier.

The registry is the serving subsystem's source of truth for *which* model
answers a request.  It maps ``(name, version)`` pairs to ``.npz`` archives
(either ``save_weights`` weight files or full ``save_checkpoint`` training
checkpoints), lazily builds a :class:`~repro.unet.UNet` from the
``unet_config`` block embedded in the archive metadata, and keeps the loaded
:class:`~repro.unet.SceneClassifier` warm so repeated requests never pay the
cold-start cost again.

Two registration styles coexist:

* **directory-backed** — ``ModelRegistry("registry/")`` scans
  ``registry/<name>/<version>.npz`` (version stems are integers, a leading
  ``v`` is allowed).  Re-scanning happens on every unversioned lookup, so
  dropping ``<name>/3.npz`` next to a served ``<name>/2.npz`` hot-swaps the
  model without restarting the service.
* **explicit** — ``registry.register(name, version, path)`` for archives
  living anywhere.

``publish`` is the write side: it saves a model (optionally with its
optimiser state) into the registry layout with enough embedded metadata to
reload it from the archive alone.
"""

from __future__ import annotations

import logging
import os
import re
import threading
from dataclasses import asdict, dataclass, field

from ..nn.optimizers import Optimizer
from ..obs.metrics import get_registry
from ..reliability import CircuitBreaker
from ..nn.serialization import (
    CheckpointError,
    load_model_state,
    read_metadata,
    save_checkpoint,
    save_weights,
)
from ..unet import InferenceConfig, SceneClassifier, UNet, UNetConfig

__all__ = ["ModelRecord", "ModelRegistry"]

_VERSION_RE = re.compile(r"^v?(\d+)\.npz$")

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ModelRecord:
    """One registered model version."""

    name: str
    version: int
    path: str

    def metadata(self) -> dict:
        return read_metadata(self.path)


@dataclass
class _WarmEntry:
    record: ModelRecord
    classifier: SceneClassifier
    #: Set exactly once, under the registry lock, by whichever retirement
    #: path (version hot-swap or LRU cap) gets there first — the flag is
    #: what makes racing retirements idempotent.
    retired: bool = False


def _unet_from_metadata(record: ModelRecord, metadata: dict) -> UNet:
    config_dict = metadata.get("unet_config")
    if config_dict is None:
        raise CheckpointError(
            f"archive {record.path!r} has no 'unet_config' metadata; re-save it with "
            "ModelRegistry.publish (or save_weights/save_checkpoint with metadata=...) "
            "so the registry can rebuild the model"
        )
    try:
        config = UNetConfig(**config_dict)
    except TypeError as exc:
        raise CheckpointError(f"invalid 'unet_config' metadata in {record.path!r}: {exc}") from exc
    return UNet(config)


@dataclass
class ModelRegistry:
    """Thread-safe lazy-loading model store with hot-swap on version bump.

    ``inference`` overrides the per-archive inference settings for every
    model (the service's ``--inference-config`` flag); when it is ``None``
    each archive's embedded ``inference`` metadata is used, falling back to
    :class:`InferenceConfig` defaults.

    ``max_warm`` bounds how many warm classifiers (each holding model
    weights plus compiled inference plans) stay resident: the least recently
    served entry is retired once the cap is exceeded.  Retirement — whether
    by the LRU cap or by a version hot-swap — notifies every listener added
    with :meth:`add_evict_listener`, so the serving layer can close the
    retired model's micro-batcher and drop its plans.
    """

    root: str | None = None
    inference: InferenceConfig | None = None
    max_warm: int | None = None
    #: consecutive failures before a model's circuit breaker opens
    breaker_failure_threshold: int = 5
    #: seconds an open breaker waits before letting a probe request through
    breaker_reset_s: float = 30.0
    _records: dict[str, dict[int, ModelRecord]] = field(default_factory=dict, repr=False)
    _explicit: dict[str, dict[int, ModelRecord]] = field(default_factory=dict, repr=False)
    _warm: dict[tuple[str, int], _WarmEntry] = field(default_factory=dict, repr=False)
    _evict_listeners: list = field(default_factory=list, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    #: corrupt archives quarantined as {path: mtime_ns}; a rewritten file
    #: (different mtime) gets retried on the next lookup
    _quarantined: dict[str, int] = field(default_factory=dict, repr=False)
    _breakers: dict[tuple[str, int], CircuitBreaker] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.max_warm is not None and self.max_warm < 1:
            raise ValueError("max_warm must be >= 1 (or None for unbounded)")
        if self.root is not None:
            self.root = str(self.root)
            self.scan()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, version: int, path: str | os.PathLike) -> ModelRecord:
        """Register one archive explicitly (no directory layout required)."""
        version = int(version)
        if version < 1:
            raise ValueError("model version must be >= 1")
        path = str(path)
        if not os.path.exists(path) and os.path.exists(path + ".npz"):
            path = path + ".npz"
        if not os.path.exists(path):
            raise FileNotFoundError(f"model archive not found: {path!r}")
        record = ModelRecord(name=name, version=version, path=path)
        with self._lock:
            self._explicit.setdefault(name, {})[version] = record
            self._records.setdefault(name, {})[version] = record
        return record

    def scan(self) -> None:
        """Re-read the registry directory, picking up new models and versions."""
        if self.root is None:
            return
        found: dict[str, dict[int, ModelRecord]] = {}
        if os.path.isdir(self.root):
            for name in sorted(os.listdir(self.root)):
                model_dir = os.path.join(self.root, name)
                if not os.path.isdir(model_dir):
                    continue
                for entry in sorted(os.listdir(model_dir)):
                    match = _VERSION_RE.match(entry)
                    if match:
                        version = int(match.group(1))
                        found.setdefault(name, {})[version] = ModelRecord(
                            name=name, version=version, path=os.path.join(model_dir, entry)
                        )
        with self._lock:
            # Explicitly registered records (outside the root layout) survive a scan.
            for name, versions in self._explicit.items():
                for version, record in versions.items():
                    found.setdefault(name, {}).setdefault(version, record)
            self._records = found

    def publish(
        self,
        name: str,
        version: int,
        model: UNet,
        optimizer: Optimizer | None = None,
        inference: InferenceConfig | None = None,
        extra_metadata: dict | None = None,
    ) -> ModelRecord:
        """Save ``model`` into the registry layout and register it.

        With ``optimizer`` the archive is a full training checkpoint (exact
        resume *and* serving from one file); without it, weights only.  The
        archive embeds the model's ``UNetConfig`` plus optional inference
        settings, so :meth:`classifier` can rebuild everything from the file.
        """
        if self.root is None:
            raise ValueError("publish requires a directory-backed registry (root=...)")
        version = int(version)
        if version < 1:
            raise ValueError("model version must be >= 1")
        metadata = dict(extra_metadata or {})
        metadata["unet_config"] = asdict(model.config)
        if inference is not None:
            metadata["inference"] = inference.to_dict()
        path = os.path.join(self.root, name, f"{version}.npz")
        if optimizer is not None:
            save_checkpoint(model, optimizer, path, metadata=metadata)
        else:
            save_weights(model, path, metadata=metadata)
        return self.register(name, version, path)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def models(self) -> dict[str, list[int]]:
        """``{name: sorted versions}`` of everything currently registered."""
        self.scan()
        with self._lock:
            return {name: sorted(versions) for name, versions in sorted(self._records.items())}

    def latest_version(self, name: str) -> int:
        return max(self._versions_of(name))

    def record(self, name: str, version: int | None = None) -> ModelRecord:
        """The :class:`ModelRecord` for ``name`` (latest version when omitted).

        Unversioned lookups re-scan the registry directory so version bumps
        are noticed (the hot-swap contract); pinned lookups answer from the
        known records and only fall back to a scan on a miss.
        """
        if version is None:
            return self._records_snapshot(name, rescan=True).popitem()[1]
        version = int(version)
        with self._lock:
            record = self._records.get(name, {}).get(version)
        if record is not None:
            return record
        versions = self._records_snapshot(name, rescan=True)
        if version not in versions:
            raise KeyError(
                f"model {name!r} has no version {version}; available: {sorted(versions)}"
            )
        return versions[version]

    def _versions_of(self, name: str) -> list[int]:
        return sorted(self._records_snapshot(name, rescan=True))

    def _records_snapshot(self, name: str, rescan: bool) -> dict[int, ModelRecord]:
        """``{version: record}`` for ``name``, sorted ascending by version."""
        if rescan:
            self.scan()
        with self._lock:
            versions = self._records.get(name)
            if not versions:
                raise KeyError(
                    f"unknown model {name!r}; registered models: {sorted(self._records)}"
                )
            return dict(sorted(versions.items()))

    # ------------------------------------------------------------------ #
    # Warm classifiers
    # ------------------------------------------------------------------ #
    def add_evict_listener(self, listener) -> None:
        """Register ``listener((name, version))`` called after a warm entry retires."""
        with self._lock:
            self._evict_listeners.append(listener)

    def remove_evict_listener(self, listener) -> None:
        """Forget a listener added with :meth:`add_evict_listener` (no-op if absent)."""
        with self._lock:
            if listener in self._evict_listeners:
                self._evict_listeners.remove(listener)

    def classifier(self, name: str, version: int | None = None) -> SceneClassifier:
        """A warm :class:`SceneClassifier` for ``name``/``version``.

        The first call for a version loads the archive (model weights +
        embedded configs) and pre-compiles the inference plan for the
        configured serving tile shape; later calls return the same warm
        instance.  An unversioned lookup tracks the latest registered
        version, so bumping the version in the registry directory hot-swaps
        what gets served.  Serving a version retires warm instances of older
        versions of the same model (a pinned older version is reloaded on
        demand), and ``max_warm`` retires the least recently served entries
        beyond the cap.

        An unversioned lookup *degrades gracefully*: when the newest archive
        is corrupt or half-written (a bad publish mid-rescan), it is
        quarantined with a warning and the next-newest serviceable version
        keeps serving — a broken rollout must not take down a model that was
        healthy a moment ago.  The quarantine is keyed on the file's mtime,
        so re-publishing the archive gets it retried.  Pinned-version lookups
        still raise :class:`CheckpointError`, since the caller asked for that
        exact file.
        """
        if version is not None:
            return self._classifier_for(self.record(name, version))
        candidates = self._records_snapshot(name, rescan=True)
        last_error: Exception | None = None
        for _version, record in sorted(candidates.items(), reverse=True):
            if self._is_quarantined(record):
                continue
            try:
                return self._classifier_for(record)
            except CheckpointError as exc:
                last_error = exc
                self._quarantine(record, exc)
        if last_error is not None:
            raise last_error
        raise CheckpointError(
            f"every registered version of model {name!r} is quarantined as corrupt: "
            f"{sorted(candidates)}"
        )

    def _classifier_for(self, record: ModelRecord) -> SceneClassifier:
        """Warm (or return the warm) classifier for one resolved record."""
        key = (record.name, record.version)
        with self._lock:
            entry = self._warm.get(key)
        if entry is None:
            # Load outside the lock: a slow archive read must not stall
            # lookups of models that are already warm.
            loaded = self._load(record)
            with self._lock:
                entry = self._warm.setdefault(key, _WarmEntry(record=record, classifier=loaded))
        evicted: list[tuple[tuple[str, int], _WarmEntry]] = []
        with self._lock:
            # LRU bookkeeping: re-insert the served key at the back.
            if key in self._warm:
                self._warm[key] = self._warm.pop(key)
            for other in [k for k in self._warm if k[0] == record.name and k[1] < record.version]:
                self._claim_retirement(other, evicted)
            if self.max_warm is not None:
                while len(self._warm) > self.max_warm:
                    old_key = next(iter(self._warm))
                    if old_key == key:  # never evict the entry being served
                        self._warm[key] = self._warm.pop(key)
                        continue
                    self._claim_retirement(old_key, evicted)
            listeners = list(self._evict_listeners)
        for evicted_key, evicted_entry in evicted:
            self._finish_retirement(evicted_key, evicted_entry, listeners)
        return entry.classifier

    # ------------------------------------------------------------------ #
    # Corrupt-archive quarantine
    # ------------------------------------------------------------------ #
    def _quarantine(self, record: ModelRecord, error: Exception) -> None:
        try:
            mtime = os.stat(record.path).st_mtime_ns
        except OSError:
            mtime = -1
        with self._lock:
            self._quarantined[record.path] = mtime
        get_registry().counter(
            "repro_model_quarantined_total",
            "Corrupt model archives quarantined by the registry",
        ).inc()
        logger.warning(
            "quarantining corrupt archive %r (model %r version %s): %s; "
            "falling back to an earlier serviceable version",
            record.path, record.name, record.version, error,
        )

    def _is_quarantined(self, record: ModelRecord) -> bool:
        with self._lock:
            marked = self._quarantined.get(record.path)
        if marked is None:
            return False
        try:
            mtime = os.stat(record.path).st_mtime_ns
        except OSError:
            return True  # vanished: nothing to retry yet
        if mtime != marked:
            # Rewritten since it was quarantined — give it another chance.
            with self._lock:
                self._quarantined.pop(record.path, None)
            return False
        return True

    def quarantined_paths(self) -> list[str]:
        """Archive paths currently quarantined as corrupt (observability)."""
        with self._lock:
            return sorted(self._quarantined)

    # ------------------------------------------------------------------ #
    # Circuit breakers
    # ------------------------------------------------------------------ #
    def breaker(self, name: str, version: int) -> CircuitBreaker:
        """The per-``(name, version)`` circuit breaker (created on first use)."""
        key = (name, int(version))
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_failure_threshold,
                    reset_timeout_s=self.breaker_reset_s,
                )
                self._breakers[key] = breaker
            return breaker

    def breakers(self) -> dict[tuple[str, int], CircuitBreaker]:
        """Snapshot of every breaker created so far (``/stats``)."""
        with self._lock:
            return dict(self._breakers)

    def close(self) -> None:
        """Retire every warm classifier (backends shut down, shm released)."""
        with self._lock:
            entries = list(self._warm.items())
            self._warm.clear()
            for _key, entry in entries:
                entry.retired = True
            listeners = list(self._evict_listeners)
        for key, entry in entries:
            self._finish_retirement(key, entry, listeners)

    def _claim_retirement(
        self, key: tuple[str, int], claimed: list[tuple[tuple[str, int], _WarmEntry]]
    ) -> None:
        """Claim ``key``'s warm entry for retirement.  Must hold ``_lock``.

        Exactly one caller wins the claim: the entry is removed from the warm
        map and its ``retired`` flag flipped atomically under the lock, so a
        hot-swap and an LRU eviction racing over the same key cannot both
        notify listeners (which used to double-close the retired batcher).
        """
        entry = self._warm.pop(key, None)
        if entry is not None and not entry.retired:
            entry.retired = True
            claimed.append((key, entry))

    def _finish_retirement(self, key: tuple[str, int], entry: _WarmEntry, listeners: list) -> None:
        """Release a claimed entry's resources and notify listeners (outside the lock)."""
        entry.classifier.close()  # shut the backend down, release shared weights
        for listener in listeners:
            listener(key)

    def warm_classifier(self, name: str, version: int) -> SceneClassifier | None:
        """The warm classifier for ``(name, version)`` — or ``None`` — without
        loading, LRU re-ordering, or any other side effect (observability peek)."""
        with self._lock:
            entry = self._warm.get((name, int(version)))
        return None if entry is None else entry.classifier

    def loaded_versions(self, name: str | None = None) -> list[tuple[str, int]]:
        """The (name, version) pairs currently held warm."""
        with self._lock:
            keys = sorted(self._warm)
        return [k for k in keys if name is None or k[0] == name]

    def warm_count(self) -> int:
        """Number of classifiers currently held warm."""
        with self._lock:
            return len(self._warm)

    def _load(self, record: ModelRecord) -> SceneClassifier:
        get_registry().counter(
            "repro_model_loads_total",
            "Model archives loaded into warm classifiers",
            ("model",),
        ).inc(model=record.name)
        metadata = record.metadata()
        model = _unet_from_metadata(record, metadata)
        try:
            model.load_state_dict(load_model_state(record.path))
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"archive {record.path!r} does not match its declared unet_config: {exc}"
            ) from exc
        model.eval()
        if self.inference is not None:
            inference = self.inference
        elif "inference" in metadata:
            inference = InferenceConfig.from_dict(metadata["inference"])
        else:
            inference = InferenceConfig()
        classifier = SceneClassifier(model=model, config=inference)
        # Warm-up: compile the single-tile serving plan now so the first
        # request does not pay plan compilation (a no-op when compile_plans
        # is off).  Serving traffic at other batch shapes compiles lazily.
        classifier.warm_plans(batch_sizes=(1,))
        # Bring the execution backend up too: a non-serial config publishes
        # the packed weights into the backend's (shared-memory) model store
        # here, at warm-up — retirement releases them again.
        _ = classifier.backend
        return classifier
