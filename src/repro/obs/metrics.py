"""Thread/fork-safe metrics registry: counters, gauges, latency histograms.

The serving hot path calls :meth:`Counter.inc` and :meth:`Histogram.observe`
thousands of times per second, so the design keeps the common case cheap:

* **Lock-light updates.**  Every metric family holds one small lock that
  guards a plain dict of per-label-set cells; an update is one dict lookup
  plus one in-place add.  Histogram cells are *preallocated* bucket-count
  lists — ``observe`` is a C ``bisect`` over a fixed boundary tuple plus one
  element increment, no allocation.  Hot paths with a fixed label set bind
  it once via :meth:`Counter.labels` / :meth:`Histogram.labels` and skip
  per-call label validation entirely.
* **A kill switch.**  ``set_metrics_enabled(False)`` (env
  ``REPRO_METRICS=off``) turns every update into a single attribute check
  and return, which is what the serving benchmark's overhead gate compares
  against.
* **Fork-delta accumulation.**  A forked backend worker must not write to
  the parent's registry (it has its own copy-on-write clone), so workers
  call :meth:`MetricsRegistry.reset` right after fork, accumulate locally,
  and :meth:`MetricsRegistry.drain` their counts into the reply messages
  they already send — the parent folds the deltas in with
  :meth:`MetricsRegistry.merge`.  The hot path never crosses a
  cross-process lock.

:meth:`MetricsRegistry.render_prometheus` emits the text exposition format
(``text/plain; version=0.0.4``) the ``/metrics`` endpoint serves.
"""

from __future__ import annotations

import bisect
import math
import os
import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_metrics_enabled",
    "metrics_enabled",
    "METRICS_ENV_VAR",
]

#: ``REPRO_METRICS=off`` disables every metric update process-wide.
METRICS_ENV_VAR = "REPRO_METRICS"

#: Default latency buckets (milliseconds): sub-millisecond compiled-plan
#: steps through multi-second scene classifications, roughly 2.5x apart.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _validate_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(float(value))


class _Metric:
    """Shared machinery of one metric family (name + help + label names)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = (),
                 registry: "MetricsRegistry | None" = None) -> None:
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._registry = registry
        self._lock = threading.Lock()
        self._cells: dict[tuple[str, ...], object] = {}

    # ------------------------------------------------------------------ #
    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    @property
    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    def _label_str(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(self.labelnames, key)]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""


class _BoundCounter:
    """A counter cell with its label key pre-resolved (hot-path handle)."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Counter", key: tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with metric._lock:
            metric._cells[self._key] = metric._cells.get(self._key, 0.0) + amount


class _BoundGauge:
    """A gauge cell with its label key pre-resolved (hot-path handle)."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Gauge", key: tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        metric = self._metric
        if not metric._enabled:
            return
        with metric._lock:
            metric._cells[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        metric = self._metric
        if not metric._enabled:
            return
        with metric._lock:
            metric._cells[self._key] = metric._cells.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _BoundHistogram:
    """A histogram cell with its label key pre-resolved (hot-path handle)."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "Histogram", key: tuple[str, ...]) -> None:
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        metric = self._metric
        if not metric._enabled:
            return
        index = bisect.bisect_left(metric.buckets, value)
        with metric._lock:
            cell = metric._cell(self._key)
            cell.counts[index] += 1
            cell.total += value
            cell.count += 1


class Counter(_Metric):
    """A monotonically increasing float per label set."""

    kind = "counter"

    def labels(self, **labels: object) -> _BoundCounter:
        """Pre-resolve a label set; the handle's :meth:`~_BoundCounter.inc` skips validation."""
        return _BoundCounter(self, self._key(labels))

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._cells.get(self._key(labels), 0.0))

    # -- registry hooks ------------------------------------------------- #
    def _drain(self) -> dict:
        with self._lock:
            cells, self._cells = self._cells, {}
        return cells

    def _merge(self, cells: Mapping[tuple[str, ...], float]) -> None:
        with self._lock:
            for key, value in cells.items():
                key = tuple(key)
                self._cells[key] = self._cells.get(key, 0.0) + value

    def _render(self) -> list[str]:
        with self._lock:
            cells = sorted(self._cells.items())
        return [f"{self.name}{self._label_str(k)} {_format_value(v)}" for k, v in cells]

    def _to_dict(self) -> dict:
        with self._lock:
            return {"/".join(k) if k else "": v for k, v in sorted(self._cells.items())}


class Gauge(_Metric):
    """A value that can go up and down (queue depths, worker occupancy)."""

    kind = "gauge"

    def labels(self, **labels: object) -> _BoundGauge:
        """Pre-resolve a label set; the handle's updates skip validation."""
        return _BoundGauge(self, self._key(labels))

    def set(self, value: float, **labels: object) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._cells[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._cells[key] = self._cells.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._cells.get(self._key(labels), 0.0))

    # Gauges describe *this* process's live state; fork deltas make no sense
    # for them, so drain snapshots without resetting and merge overwrites.
    def _drain(self) -> dict:
        with self._lock:
            return dict(self._cells)

    def _merge(self, cells: Mapping[tuple[str, ...], float]) -> None:
        with self._lock:
            for key, value in cells.items():
                self._cells[tuple(key)] = value

    def _render(self) -> list[str]:
        with self._lock:
            cells = sorted(self._cells.items())
        return [f"{self.name}{self._label_str(k)} {_format_value(v)}" for k, v in cells]

    def _to_dict(self) -> dict:
        with self._lock:
            return {"/".join(k) if k else "": v for k, v in sorted(self._cells.items())}


class _HistCell:
    """Preallocated per-label-set histogram state: bucket counts + sum."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets  # one per finite bound + overflow
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket latency histogram (cumulative ``le`` semantics on render).

    ``buckets`` are the finite upper bounds in ascending order; an implicit
    ``+Inf`` overflow bucket is always present.  ``observe`` is one C-level
    ``bisect`` into the boundary tuple plus an element increment — no
    allocation, one short lock.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = (),
                 buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
                 registry: "MetricsRegistry | None" = None) -> None:
        super().__init__(name, help, labelnames, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing and non-empty")
        if math.inf in bounds:
            bounds = bounds[:-1]
        self.buckets = bounds

    def _cell(self, key: tuple[str, ...]) -> _HistCell:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _HistCell(len(self.buckets) + 1)
        return cell

    def labels(self, **labels: object) -> _BoundHistogram:
        """Pre-resolve a label set; the handle's :meth:`~_BoundHistogram.observe` skips validation."""
        return _BoundHistogram(self, self._key(labels))

    def observe(self, value: float, **labels: object) -> None:
        if not self._enabled:
            return
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            cell = self._cell(key)
            cell.counts[index] += 1
            cell.total += value
            cell.count += 1

    # ------------------------------------------------------------------ #
    def snapshot(self, **labels: object) -> dict:
        """``{"buckets": [...], "counts": [...], "sum": s, "count": n}`` for one label set."""
        key = self._key(labels)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                return {"buckets": list(self.buckets),
                        "counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            return {"buckets": list(self.buckets), "counts": list(cell.counts),
                    "sum": cell.total, "count": cell.count}

    def percentile(self, q: float, **labels: object) -> float | None:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the bucket counts.

        Linear interpolation inside the winning bucket (the standard
        Prometheus ``histogram_quantile`` estimate); ``None`` with no
        observations.  Values landing in the overflow bucket report the
        largest finite bound.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        snap = self.snapshot(**labels)
        total = snap["count"]
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for index, count in enumerate(snap["counts"]):
            cumulative += count
            if cumulative >= rank:
                if index >= len(self.buckets):  # overflow bucket
                    return float(self.buckets[-1])
                hi = self.buckets[index]
                lo = self.buckets[index - 1] if index > 0 else 0.0
                inside = rank - (cumulative - count)
                return float(lo + (hi - lo) * inside / count)
        return float(self.buckets[-1])  # pragma: no cover - unreachable

    # -- registry hooks ------------------------------------------------- #
    def _drain(self) -> dict:
        with self._lock:
            cells, self._cells = self._cells, {}
        return {key: (list(cell.counts), cell.total, cell.count)
                for key, cell in cells.items()}

    def _merge(self, cells: Mapping[tuple[str, ...], tuple]) -> None:
        with self._lock:
            for key, (counts, total, count) in cells.items():
                cell = self._cell(tuple(key))
                for index, bucket_count in enumerate(counts):
                    cell.counts[index] += int(bucket_count)
                cell.total += total
                cell.count += count

    def _render(self) -> list[str]:
        with self._lock:
            cells = {key: (list(cell.counts), cell.total, cell.count)
                     for key, cell in sorted(self._cells.items())}
        lines = []
        for key, (counts, total, count) in cells.items():
            cumulative = 0
            for bound, bucket_count in zip(self.buckets + (math.inf,), counts):
                cumulative += int(bucket_count)
                le = f'le="{_format_value(bound)}"'
                lines.append(f"{self.name}_bucket{self._label_str(key, le)} {cumulative}")
            lines.append(f"{self.name}_sum{self._label_str(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{self._label_str(key)} {count}")
        return lines

    def _to_dict(self) -> dict:
        with self._lock:
            return {
                "/".join(key) if key else "": {
                    "count": cell.count,
                    "sum": round(cell.total, 3),
                }
                for key, cell in sorted(self._cells.items())
            }


class MetricsRegistry:
    """Name → metric family map with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing family (and validates that the kind
    and label names agree), so every module can declare the metrics it
    touches without import-order coupling.
    """

    def __init__(self, enabled: bool | None = None) -> None:
        if enabled is None:
            enabled = os.environ.get(METRICS_ENV_VAR, "").strip().lower() not in ("off", "0", "false")
        self.enabled = bool(enabled)
        self._metrics: "dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help=help, labelnames=labelnames, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=tuple(buckets))

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------ #
    # Fork-delta accumulation
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Zero every cell (a forked worker's first act: drop inherited counts)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Gauge):
                with metric._lock:
                    metric._cells.clear()
            else:
                metric._drain()

    def drain(self) -> dict:
        """Atomically take (and zero) every accumulated delta, JSON-pickle-safe.

        Returns ``{}`` when nothing accumulated, so piggybacking callers can
        skip attaching an empty payload.  Gauges are snapshotted, not zeroed
        (they describe live state, not a flow).
        """
        with self._lock:
            metrics = list(self._metrics.items())
        drained = {}
        for name, metric in metrics:
            cells = metric._drain()
            if cells:
                drained[name] = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labelnames": metric.labelnames,
                    "cells": cells,
                    **({"buckets": metric.buckets} if isinstance(metric, Histogram) else {}),
                }
        return drained

    def merge(self, drained: Mapping[str, dict]) -> None:
        """Fold a :meth:`drain` payload (from a worker) into this registry."""
        for name, payload in drained.items():
            kind = payload["kind"]
            labelnames = tuple(payload.get("labelnames", ()))
            if kind == "counter":
                metric = self.counter(name, payload.get("help", ""), labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, payload.get("help", ""), labelnames)
            else:
                metric = self.histogram(name, payload.get("help", ""), labelnames,
                                        buckets=payload.get("buckets", DEFAULT_LATENCY_BUCKETS_MS))
            metric._merge(payload["cells"])

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: list[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._render())
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """Compact JSON summary of every family (the ``/stats`` ``metrics`` block)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric._to_dict() for name, metric in metrics}


#: Process-wide default registry every instrumented module shares.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry


def set_metrics_enabled(enabled: bool) -> None:
    """Turn every update on the default registry on or off (the bench knob)."""
    _default_registry.enabled = bool(enabled)


def metrics_enabled() -> bool:
    return _default_registry.enabled
