"""A Horovod-like API over the ring all-reduce (paper §III-C.1, Figure 8).

The paper integrates Horovod with four calls: ``hvd.init()``, pinning one
GPU per process, wrapping the optimiser with ``hvd.DistributedOptimizer``
and broadcasting the initial variables from rank 0.  This module provides
the same surface over the in-process worker group used by
:mod:`repro.distributed.data_parallel`, so the training code reads like the
paper's pseudo-code while remaining runnable on a CPU-only machine.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.optimizers import Optimizer
from .allreduce import AllReduceStats, ring_allreduce

__all__ = ["WorkerGroup", "DistributedOptimizer", "broadcast_parameters"]


class WorkerGroup:
    """The set of synchronous data-parallel workers ("GPUs") of one training job.

    ``init`` plays the role of ``hvd.init()``; ``size``/``rank`` mirror the
    Horovod API.  Because the reproduction runs every worker in one Python
    process, the group also owns the all-reduce used to combine their
    gradients and records its statistics.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("worker group size must be >= 1")
        self._size = size
        self.last_stats: AllReduceStats | None = None
        #: Times the group changed size (elastic shrink after a worker loss,
        #: grow on rejoin) — the in-process analogue of a ring rebuild.
        self.resizes = 0

    @classmethod
    def init(cls, size: int) -> "WorkerGroup":
        """Create the worker group (``hvd.init()`` analogue)."""
        return cls(size)

    @property
    def size(self) -> int:
        return self._size

    def ranks(self) -> range:
        return range(self._size)

    def resize(self, size: int) -> None:
        """Elastically change the group size (shrink on loss, grow on rejoin).

        Subsequent :meth:`allreduce_gradients` calls expect gradients from
        exactly the new worker count; resizing to the current size is a
        no-op and does not count as a rebuild.
        """
        if size < 1:
            raise ValueError("worker group size must be >= 1")
        if size == self._size:
            return
        self._size = size
        self.resizes += 1

    # ------------------------------------------------------------------ #
    def allreduce_gradients(self, per_worker_grads: list[list[np.ndarray]]) -> list[np.ndarray]:
        """Average aligned gradient lists from every worker.

        ``per_worker_grads[r][i]`` is worker ``r``'s gradient of parameter
        ``i``.  All parameters are flattened into one buffer per worker (as
        Horovod's tensor-fusion does), ring-all-reduced, then unpacked.
        Returns the averaged gradient list shared by all workers.
        """
        if len(per_worker_grads) != self._size:
            raise ValueError(f"expected gradients from {self._size} workers, got {len(per_worker_grads)}")
        num_params = len(per_worker_grads[0])
        for grads in per_worker_grads:
            if len(grads) != num_params:
                raise ValueError("all workers must provide the same number of gradient tensors")

        shapes = [np.asarray(g).shape for g in per_worker_grads[0]]
        sizes = [int(np.prod(s)) for s in shapes]
        buffers = [
            np.concatenate([np.asarray(g, dtype=np.float64).ravel() for g in grads])
            for grads in per_worker_grads
        ]
        reduced, stats = ring_allreduce(buffers, average=True)
        self.last_stats = stats

        averaged = reduced[0]
        out: list[np.ndarray] = []
        offset = 0
        for shape, size in zip(shapes, sizes):
            out.append(averaged[offset : offset + size].reshape(shape).astype(np.float32))
            offset += size
        return out


class DistributedOptimizer:
    """Wraps a local optimiser so that ``step`` first averages gradients across workers.

    Mirrors ``opt = hvd.DistributedOptimizer(opt)``: the wrapped optimiser's
    parameter list is the *rank-0 replica*; :meth:`step` takes the gradient
    lists gathered from every worker replica, all-reduces them, installs the
    averaged gradients on the rank-0 parameters and applies the update.
    """

    def __init__(self, optimizer: Optimizer, group: WorkerGroup) -> None:
        self.optimizer = optimizer
        self.group = group

    @property
    def parameters(self):
        return self.optimizer.parameters

    def zero_grad(self) -> None:
        self.optimizer.zero_grad()

    def step(self, per_worker_grads: list[list[np.ndarray]]) -> None:
        averaged = self.group.allreduce_gradients(per_worker_grads)
        if len(averaged) != len(self.optimizer.parameters):
            raise ValueError("gradient count does not match the optimiser's parameter count")
        for param, grad in zip(self.optimizer.parameters, averaged):
            if grad.shape != param.value.shape:
                raise ValueError("gradient shape mismatch in distributed step")
            param.grad[...] = grad
        self.optimizer.step()


def broadcast_parameters(source: Module, replicas: list[Module]) -> None:
    """Copy rank-0 weights into every replica (``BroadcastGlobalVariablesCallback(0)``)."""
    state = source.state_dict()
    for replica in replicas:
        replica.load_state_dict(state)
