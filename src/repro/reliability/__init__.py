"""Fault-tolerance substrate shared by the backend and serving layers.

Production serving assumes four properties this package provides and the
rest of the stack threads through:

* **Bounded waits** — :class:`Deadline` propagates one expiry time from the
  HTTP edge through the micro-batcher queue into backend span dispatch;
  expired work is dropped *before* compute (:class:`DeadlineExceeded` maps
  to HTTP 504).
* **Load shedding** — :class:`AdmissionController` caps in-flight requests
  and sheds the excess instantly (:class:`OverloadedError` → HTTP 503 +
  ``Retry-After``) instead of queueing unboundedly.
* **Automatic recovery** — :class:`RetryPolicy` re-runs idempotent backend
  dispatches whose worker crashed or hung (the fork backend kills and
  respawns hung workers); :class:`CircuitBreaker` quarantines a model that
  keeps failing and probes it back to health.
* **Provability** — :mod:`repro.reliability.faults` plants env/config-armed
  fault points (worker crash/hang, slow predict, shm attach failure,
  corrupt archive reads) that the chaos suite and the CI chaos-smoke arm
  use to demonstrate all of the above actually fires.
"""

from .backpressure import AdmissionController, OverloadedError
from .breaker import CircuitBreaker, CircuitOpenError
from .deadline import Deadline, DeadlineExceeded
from .faults import (
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultSpec,
    configure_faults,
    fault_point,
    fault_stats,
    faults_enabled,
    reset_faults,
)
from .retry import RetryPolicy

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultSpec",
    "OverloadedError",
    "RetryPolicy",
    "configure_faults",
    "fault_point",
    "fault_stats",
    "faults_enabled",
    "reset_faults",
]
