"""Model checkpoint I/O: save and load module weights as ``.npz`` archives.

Two levels are provided: ``save_weights`` / ``load_weights`` persist model
parameters only, while ``save_checkpoint`` / ``load_checkpoint`` bundle the
model *and* the full optimiser state (Adam moments and step count, SGD
velocity, every hyper-parameter) so a resumed run continues exactly where it
stopped instead of silently restarting the adaptive state.

Both archive kinds can carry a JSON metadata block (``metadata=`` at save
time, :func:`read_metadata` at load time).  The serving model registry uses
it to rebuild the right ``UNetConfig`` and inference settings from the
archive alone, without a side-channel config file.  :func:`load_model_state`
reads the model parameters out of either archive kind, which is what lets
the registry serve directly from a training checkpoint.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from ..reliability import FaultInjected, fault_point
from .module import Module
from .optimizers import Optimizer

__all__ = [
    "CheckpointError",
    "save_weights",
    "load_weights",
    "save_checkpoint",
    "load_checkpoint",
    "read_metadata",
    "load_model_state",
]

_MODEL_PREFIX = "model/"
_OPTIM_PREFIX = "optim/"
_META_KEY = "__meta__/json"
_EXTRA_KEY = "__extra__/json"


class CheckpointError(RuntimeError):
    """A checkpoint archive is unreadable or structurally wrong."""


def _normalize_path(path: str | os.PathLike) -> str:
    path = str(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    return path


def _open_archive(path: str):
    """Open an ``.npz`` archive with informative failure modes."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"checkpoint not found: {path!r}")
    try:
        fault_point("corrupt_archive_read")  # FaultInjected is an OSError
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise CheckpointError(f"corrupt or unreadable checkpoint archive {path!r}: {exc}") from exc


def _atomic_savez(path: str, state: dict[str, np.ndarray]) -> None:
    """Write a compressed archive to a temp file, then ``os.replace`` it in.

    A crash (or a concurrent reader) mid-write therefore sees either the
    previous archive or none — never a half-written ``.npz``.  The archive
    is written through an open file object because ``np.savez_compressed``
    silently appends ``.npz`` to string paths, which would break the temp
    name.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp-{os.getpid():x}"
    try:
        with open(tmp_path, "wb") as stream:
            np.savez_compressed(stream, **state)
        try:
            fault_point("ckpt_corrupt_write")
        except FaultInjected:
            # Simulate a torn write that made it to the final name (bitrot,
            # a non-atomic writer): truncate the archive, then publish it
            # anyway so the resume path has to skip past it.
            size = os.path.getsize(tmp_path)
            with open(tmp_path, "r+b") as stream:
                stream.truncate(max(1, size // 2))
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def _metadata_entry(metadata: dict | None) -> dict[str, np.ndarray]:
    if metadata is None:
        return {}
    try:
        payload = json.dumps(metadata, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"checkpoint metadata must be JSON-serialisable: {exc}") from exc
    return {_META_KEY: np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)}


def save_weights(module: Module, path: str | os.PathLike, metadata: dict | None = None) -> str:
    """Write every parameter of ``module`` to a compressed ``.npz`` file.

    ``metadata`` (any JSON-serialisable dict) is embedded in the archive and
    comes back via :func:`read_metadata`.  Returns the path written (with
    ``.npz`` appended if missing).
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    state = dict(module.state_dict())
    state.update(_metadata_entry(metadata))
    _atomic_savez(path, state)
    return path


def load_weights(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_weights` into ``module`` (strict match)."""
    module.load_state_dict(load_model_state(path))
    return module


def save_checkpoint(
    module: Module,
    optimizer: Optimizer,
    path: str | os.PathLike,
    metadata: dict | None = None,
    extra_state: dict | None = None,
) -> str:
    """Write model parameters and the complete optimiser state to one ``.npz``.

    ``extra_state`` (any JSON-serialisable dict — e.g. the training cursor and
    data-loader RNG state the elastic trainer needs for bit-exact resume) is
    embedded alongside the tensors and comes back from :func:`load_checkpoint`.
    Returns the path written (with ``.npz`` appended if missing).
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    state: dict[str, np.ndarray] = {}
    for key, value in module.state_dict().items():
        state[_MODEL_PREFIX + key] = value
    for key, value in optimizer.state_dict().items():
        state[_OPTIM_PREFIX + key] = np.asarray(value)
    state.update(_metadata_entry(metadata))
    if extra_state is not None:
        try:
            payload = json.dumps(extra_state, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"checkpoint extra_state must be JSON-serialisable: {exc}") from exc
        state[_EXTRA_KEY] = np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)
    _atomic_savez(path, state)
    return path


def load_checkpoint(module: Module, optimizer: Optimizer, path: str | os.PathLike) -> dict:
    """Restore a checkpoint written by :func:`save_checkpoint` (strict match).

    Returns the ``extra_state`` dict the checkpoint was saved with (``{}``
    when absent).  Every structural problem — a key that belongs to neither
    the model nor the optimiser, a weights-only archive, a member that fails
    to decompress — surfaces as :class:`CheckpointError`, matching how the
    serving registry quarantines unreadable archives.
    """
    path = _normalize_path(path)
    model_state: dict[str, np.ndarray] = {}
    optim_state: dict[str, np.ndarray] = {}
    extra_raw: bytes | None = None
    with _open_archive(path) as archive:
        try:
            for key in archive.files:
                if key == _META_KEY:
                    continue
                if key == _EXTRA_KEY:
                    extra_raw = bytes(archive[key])
                elif key.startswith(_MODEL_PREFIX):
                    model_state[key[len(_MODEL_PREFIX):]] = archive[key]
                elif key.startswith(_OPTIM_PREFIX):
                    optim_state[key[len(_OPTIM_PREFIX):]] = archive[key]
                else:
                    raise CheckpointError(f"unexpected checkpoint key {key!r} in {path!r}")
        except (zipfile.BadZipFile, EOFError, OSError) as exc:
            raise CheckpointError(
                f"corrupt or unreadable checkpoint archive {path!r}: {exc}"
            ) from exc
    if not optim_state:
        raise CheckpointError(
            f"checkpoint {path!r} has no optimizer state (was it saved with save_weights?)"
        )
    module.load_state_dict(model_state)
    optimizer.load_state_dict(optim_state)
    if extra_raw is None:
        return {}
    try:
        return json.loads(extra_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt extra-state block in {path!r}: {exc}") from exc


def read_metadata(path: str | os.PathLike) -> dict:
    """Return the JSON metadata embedded in an archive (``{}`` when absent)."""
    path = _normalize_path(path)
    with _open_archive(path) as archive:
        if _META_KEY not in archive.files:
            return {}
        raw = bytes(archive[_META_KEY])
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt metadata block in {path!r}: {exc}") from exc


def load_model_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Model parameters from either a weights archive or a full checkpoint.

    ``save_weights`` archives return their keys as-is; ``save_checkpoint``
    archives return the ``model/`` entries with the prefix stripped (the
    optimiser state is ignored).  Raises :class:`CheckpointError` when the
    archive holds no model parameters at all.
    """
    path = _normalize_path(path)
    state: dict[str, np.ndarray] = {}
    with _open_archive(path) as archive:
        keys = [key for key in archive.files if key != _META_KEY]
        is_checkpoint = any(key.startswith(_MODEL_PREFIX) for key in keys)
        for key in keys:
            if is_checkpoint:
                if key.startswith(_MODEL_PREFIX):
                    state[key[len(_MODEL_PREFIX):]] = archive[key]
            elif not key.startswith(_OPTIM_PREFIX):
                state[key] = archive[key]
    if not state:
        raise CheckpointError(f"archive {path!r} contains no model parameters")
    return state
