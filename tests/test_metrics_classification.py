"""Tests for repro.metrics.classification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    iou_score,
    normalize_confusion,
    per_class_accuracy,
    precision_recall_f1,
)

label_arrays = hnp.arrays(dtype=np.int64, shape=st.integers(1, 60), elements=st.integers(0, 2))


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1, 0, 2])
        cm = confusion_matrix(y, y, 3)
        assert np.all(cm == np.diag([2, 2, 2]))

    def test_counts(self):
        y_true = np.array([0, 0, 1, 2])
        y_pred = np.array([0, 1, 1, 0])
        cm = confusion_matrix(y_true, y_pred, 3)
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 1 and cm[2, 0] == 1

    def test_total_equals_samples(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        assert confusion_matrix(y_true, y_pred, 3).sum() == 100

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1, 0]), np.array([0, 0]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 0]), num_classes=3)

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([]), np.array([]))

    def test_normalize_rows_sum_to_100(self):
        rng = np.random.default_rng(1)
        cm = confusion_matrix(rng.integers(0, 3, 200), rng.integers(0, 3, 200), 3)
        norm = normalize_confusion(cm, axis="true")
        np.testing.assert_allclose(norm.sum(axis=1), 100.0)

    def test_normalize_columns(self):
        cm = np.array([[5, 5], [0, 10]])
        norm = normalize_confusion(cm, axis="pred")
        np.testing.assert_allclose(norm.sum(axis=0), 100.0)

    def test_normalize_bad_axis(self):
        with pytest.raises(ValueError):
            normalize_confusion(np.eye(2), axis="diagonal")


class TestScores:
    def test_accuracy_perfect_and_zero(self):
        y = np.array([0, 1, 2])
        assert accuracy_score(y, y) == 1.0
        assert accuracy_score(y, (y + 1) % 3) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(label_arrays)
    def test_micro_average_equals_accuracy(self, y_true):
        rng = np.random.default_rng(0)
        y_pred = rng.integers(0, 3, size=y_true.shape)
        p, r, f1 = precision_recall_f1(y_true, y_pred, num_classes=3, average="micro")
        assert np.isclose(p, accuracy_score(y_true, y_pred))
        assert np.isclose(p, r) and np.isclose(r, f1)

    def test_macro_scores_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        p, r, f1 = precision_recall_f1(y, y, 3)
        assert p == r == f1 == 1.0

    def test_weighted_average_bounded(self):
        rng = np.random.default_rng(5)
        y_true = rng.integers(0, 3, 300)
        y_pred = rng.integers(0, 3, 300)
        p, r, f1 = precision_recall_f1(y_true, y_pred, 3, average="weighted")
        for v in (p, r, f1):
            assert 0.0 <= v <= 1.0

    def test_bad_average_raises(self):
        with pytest.raises(ValueError):
            precision_recall_f1(np.array([0]), np.array([0]), average="geometric")

    def test_per_class_accuracy(self):
        y_true = np.array([0, 0, 1, 1, 2, 2])
        y_pred = np.array([0, 1, 1, 1, 0, 2])
        acc = per_class_accuracy(y_true, y_pred, 3)
        np.testing.assert_allclose(acc, [0.5, 1.0, 0.5])

    def test_iou_perfect(self):
        y = np.array([0, 1, 2, 2])
        np.testing.assert_allclose(iou_score(y, y, 3), [1.0, 1.0, 1.0])

    def test_iou_disjoint(self):
        y_true = np.array([0, 0, 0])
        y_pred = np.array([1, 1, 1])
        iou = iou_score(y_true, y_pred, 3)
        assert iou[0] == 0.0 and iou[1] == 0.0


class TestReport:
    def test_report_fields_consistent(self):
        rng = np.random.default_rng(7)
        y_true = rng.integers(0, 3, size=(4, 8, 8))
        y_pred = rng.integers(0, 3, size=(4, 8, 8))
        rep = classification_report(y_true, y_pred, 3, class_names=["thick", "thin", "water"])
        assert np.isclose(rep.accuracy, accuracy_score(y_true, y_pred))
        assert rep.confusion.shape == (3, 3)
        assert rep.confusion_percent.shape == (3, 3)
        assert len(rep.per_class_accuracy) == 3
        d = rep.as_dict()
        assert set(d) >= {"accuracy", "precision", "recall", "f1", "class_names"}

    def test_report_accepts_2d_maps(self):
        y = np.zeros((16, 16), dtype=np.uint8)
        rep = classification_report(y, y, 3)
        assert rep.accuracy == 1.0
