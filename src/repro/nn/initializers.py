"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "zeros", "get_initializer"]


def he_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation — the standard choice for ReLU networks."""
    if fan_in < 1:
        raise ValueError("fan_in must be >= 1")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (used for the final 1×1 projection)."""
    if fan_in < 1 or fan_out < 1:
        raise ValueError("fan_in and fan_out must be >= 1")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float32)


def get_initializer(name: str):
    """Look up an initializer by name (``"he_normal"`` / ``"glorot_uniform"`` / ``"zeros"``)."""
    table = {"he_normal": he_normal, "glorot_uniform": glorot_uniform, "zeros": zeros}
    try:
        return table[name]
    except KeyError as exc:
        raise ValueError(f"unknown initializer {name!r}; expected one of {sorted(table)}") from exc
