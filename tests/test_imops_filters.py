"""Tests for repro.imops.filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imops import bilateral_filter, box_filter, gaussian_blur, gaussian_kernel1d, median_blur


class TestGaussianKernel:
    def test_normalised(self):
        k = gaussian_kernel1d(7, 1.5)
        assert k.shape == (7,)
        assert np.isclose(k.sum(), 1.0)

    def test_symmetric_and_peaked_at_center(self):
        k = gaussian_kernel1d(9, 2.0)
        np.testing.assert_allclose(k, k[::-1])
        assert np.argmax(k) == 4

    def test_default_sigma_heuristic(self):
        assert np.isclose(gaussian_kernel1d(5).sum(), 1.0)

    def test_rejects_even_ksize(self):
        with pytest.raises(ValueError):
            gaussian_kernel1d(4)


class TestGaussianBlur:
    def test_preserves_constant_image(self):
        img = np.full((20, 20), 99, dtype=np.uint8)
        np.testing.assert_array_equal(gaussian_blur(img, 5), img)

    def test_reduces_variance(self, gray_image):
        out = gaussian_blur(gray_image, 7)
        assert out.astype(float).var() < gray_image.astype(float).var()

    def test_preserves_mean_approximately(self, gray_image):
        out = gaussian_blur(gray_image.astype(np.float64), 5)
        assert abs(out.mean() - gray_image.mean()) < 2.0

    def test_multichannel(self, rgb_image):
        out = gaussian_blur(rgb_image, 5)
        assert out.shape == rgb_image.shape
        assert out.dtype == np.uint8

    def test_rejects_even_kernel(self, gray_image):
        with pytest.raises(ValueError):
            gaussian_blur(gray_image, 6)

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.uint16])
    def test_preserves_integer_dtypes(self, dtype):
        """Non-uint8 integer inputs must not silently come back as float64."""
        rng = np.random.default_rng(0)
        img = rng.integers(0, 1000, size=(16, 16)).astype(dtype)
        out = gaussian_blur(img, 5)
        assert out.dtype == dtype
        assert abs(out.astype(float).mean() - img.astype(float).mean()) < 10.0

    def test_integer_constant_image_unchanged(self):
        img = np.full((12, 12), -321, dtype=np.int16)
        np.testing.assert_array_equal(gaussian_blur(img, 5), img)


class TestBoxAndMedian:
    def test_box_filter_is_local_mean(self):
        img = np.zeros((9, 9))
        img[4, 4] = 9.0
        out = box_filter(img, 3)
        assert np.isclose(out[4, 4], 1.0)

    def test_median_removes_salt_and_pepper(self):
        rng = np.random.default_rng(0)
        img = np.full((30, 30), 128, dtype=np.uint8)
        noisy = img.copy()
        idx = rng.integers(0, 30, size=(20, 2))
        noisy[idx[:, 0], idx[:, 1]] = 255
        out = median_blur(noisy, 3)
        assert np.abs(out.astype(int) - 128).mean() < 3

    def test_median_preserves_dtype(self, gray_image):
        assert median_blur(gray_image, 3).dtype == gray_image.dtype

    def test_box_rejects_even_kernel(self, gray_image):
        with pytest.raises(ValueError):
            box_filter(gray_image, 2)

    def test_median_rejects_even_kernel(self, gray_image):
        with pytest.raises(ValueError):
            median_blur(gray_image, 2)


class TestBilateral:
    def test_preserves_strong_edge_better_than_gaussian(self):
        img = np.zeros((20, 20), dtype=np.uint8)
        img[:, 10:] = 200
        rng = np.random.default_rng(1)
        noisy = np.clip(img.astype(int) + rng.normal(0, 5, img.shape), 0, 255).astype(np.uint8)
        bil = bilateral_filter(noisy, 5, sigma_color=30, sigma_space=2)
        gau = np.asarray(np.round(np.clip(np.abs(np.gradient(noisy.astype(float), axis=1)), 0, 255)))
        # The bilateral output keeps the step sharp: the jump across column 10 stays large.
        assert bil[:, 11].mean() - bil[:, 8].mean() > 150
        assert gau is not None  # silence lint on unused helper

    def test_constant_image_unchanged(self):
        img = np.full((10, 10), 42, dtype=np.uint8)
        np.testing.assert_array_equal(bilateral_filter(img, 5), img)

    def test_rejects_even_kernel(self, gray_image):
        with pytest.raises(ValueError):
            bilateral_filter(gray_image, 4)
