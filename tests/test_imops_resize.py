"""Tests for repro.imops.resize (resizing, tiling, reassembly)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import pickle

from repro.imops import (
    TileGrid,
    assemble_from_tiles,
    blend_window,
    pad_to_multiple,
    resize_bilinear,
    resize_nearest,
    split_into_tiles,
)


class TestResize:
    def test_nearest_shape(self, rgb_image):
        out = resize_nearest(rgb_image, (20, 30))
        assert out.shape == (20, 30, 3)
        assert out.dtype == rgb_image.dtype

    def test_nearest_identity(self, gray_image):
        np.testing.assert_array_equal(resize_nearest(gray_image, gray_image.shape), gray_image)

    def test_nearest_preserves_label_values(self):
        labels = np.random.default_rng(0).integers(0, 3, size=(16, 16)).astype(np.uint8)
        out = resize_nearest(labels, (32, 32))
        assert set(np.unique(out)).issubset(set(np.unique(labels)))

    def test_bilinear_shape_and_dtype(self, rgb_image):
        out = resize_bilinear(rgb_image, (80, 112))
        assert out.shape == (80, 112, 3)
        assert out.dtype == np.uint8

    def test_bilinear_constant_image(self):
        img = np.full((10, 10), 77, dtype=np.uint8)
        out = resize_bilinear(img, (23, 17))
        assert np.all(out == 77)

    def test_bilinear_upscale_within_range(self, gray_image):
        out = resize_bilinear(gray_image, (96, 80))
        assert out.min() >= gray_image.min()
        assert out.max() <= gray_image.max()

    def test_rejects_nonpositive_target(self, gray_image):
        with pytest.raises(ValueError):
            resize_nearest(gray_image, (0, 10))
        with pytest.raises(ValueError):
            resize_bilinear(gray_image, (10, 0))

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.uint16])
    def test_bilinear_preserves_integer_dtypes(self, dtype):
        """Non-uint8 integer inputs must come back in the input dtype, not float64."""
        img = np.arange(12 * 10, dtype=dtype).reshape(12, 10) * 7
        out = resize_bilinear(img, (20, 18))
        assert out.dtype == dtype
        assert out.min() >= img.min() and out.max() <= img.max()

    def test_bilinear_integer_constant_image(self):
        img = np.full((9, 9), -1234, dtype=np.int16)
        out = resize_bilinear(img, (15, 4))
        assert out.dtype == np.int16
        assert np.all(out == -1234)


class TestPadAndTiles:
    def test_pad_to_multiple(self):
        img = np.ones((30, 45), dtype=np.uint8)
        out = pad_to_multiple(img, 16)
        assert out.shape == (32, 48)

    def test_pad_noop_when_already_multiple(self, gray_image):
        out = pad_to_multiple(gray_image, 8)
        assert out.shape == gray_image.shape

    def test_split_grid_and_count(self):
        img = np.arange(64 * 96 * 3, dtype=np.uint8).reshape(64, 96, 3)
        tiles, grid = split_into_tiles(img, 32)
        assert grid == (2, 3)
        assert tiles.shape == (6, 32, 32, 3)

    def test_split_assemble_round_trip_rgb(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 255, size=(64, 64, 3), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 16)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_split_assemble_round_trip_gray(self):
        rng = np.random.default_rng(3)
        img = rng.integers(0, 255, size=(48, 80), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 16)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_split_pads_non_multiple_scene(self):
        img = np.zeros((70, 50), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 32)
        assert grid == (3, 2)
        assert tiles.shape[0] == 6

    def test_assemble_rejects_wrong_count(self):
        tiles = np.zeros((5, 8, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            assemble_from_tiles(tiles, (2, 3))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.sampled_from([8, 16]))
    def test_round_trip_property(self, rows, cols, tile):
        rng = np.random.default_rng(rows * 17 + cols)
        img = rng.integers(0, 255, size=(rows * tile, cols * tile), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, tile)
        assert grid == (rows, cols)
        np.testing.assert_array_equal(assemble_from_tiles(tiles, grid), img)

    def test_paper_tile_count(self):
        """66 scenes of 2048x2048 split into 256-pixel tiles give 4224 tiles (paper §IV-A)."""
        tiles_per_scene = (2048 // 256) ** 2
        assert 66 * tiles_per_scene == 4224

    def test_pad_to_multiple_handles_single_pixel_dims(self):
        """Reflect padding cannot pad wider than dim-1; degenerate inputs must
        fall back to edge padding instead of raising."""
        out = pad_to_multiple(np.full((1, 5), 9, dtype=np.uint8), 8)
        assert out.shape == (8, 8)
        assert np.all(out[:, :5] == 9)
        out = pad_to_multiple(np.ones((2, 1, 3), dtype=np.uint8), 16)
        assert out.shape == (16, 16, 3)
        assert np.all(out == 1)


class TestOverlapTiling:
    def test_grid_behaves_like_tuple(self):
        img = np.zeros((64, 96), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 32)
        assert isinstance(grid, TileGrid)
        assert grid == (2, 3)
        rows, cols = grid
        assert (rows, cols) == (2, 3)
        assert grid.num_tiles == 6
        assert grid.tile_size == 32 and grid.overlap == 0 and grid.stride == 32

    def test_grid_pickle_round_trip(self):
        _, grid = split_into_tiles(np.zeros((70, 50), dtype=np.uint8), 32, overlap=8)
        copy = pickle.loads(pickle.dumps(grid))
        assert copy == grid
        assert copy.tile_size == grid.tile_size and copy.overlap == grid.overlap
        assert copy.image_shape == grid.image_shape and copy.padded_shape == grid.padded_shape

    def test_non_multiple_round_trip_is_cropped_exact(self):
        """A TileGrid reassembly crops back to the original scene size, so
        non-multiple scenes round-trip exactly."""
        rng = np.random.default_rng(5)
        img = rng.integers(0, 255, size=(300, 500, 3), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 128)
        out = assemble_from_tiles(tiles, grid)
        np.testing.assert_array_equal(out, img)

    def test_legacy_tuple_grid_keeps_uncropped_stitch(self):
        img = np.random.default_rng(6).integers(0, 255, size=(300, 500), dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 128)
        legacy = assemble_from_tiles(tiles, (grid[0], grid[1]))
        assert legacy.shape == grid.padded_shape
        np.testing.assert_array_equal(legacy[:300, :500], img)

    @pytest.mark.parametrize("shape", [(300, 500, 3), (96, 96), (40, 130)])
    def test_overlap_blend_round_trip(self, shape):
        """Tiles cut from one scene blend back to that scene (overlapping
        regions average identical values)."""
        rng = np.random.default_rng(7)
        img = rng.integers(0, 255, size=shape, dtype=np.uint8)
        tiles, grid = split_into_tiles(img, 32, overlap=8)
        assert tiles.shape[1:3] == (32, 32)
        out = assemble_from_tiles(tiles.astype(np.float64), grid)
        assert out.shape == img.shape
        np.testing.assert_allclose(out, img, atol=1e-9)

    def test_overlap_grid_geometry(self):
        _, grid = split_into_tiles(np.zeros((300, 500), dtype=np.uint8), 128, overlap=32)
        assert grid.stride == 96
        assert grid.image_shape == (300, 500)
        # stride*(rows-1) + tile covers the scene
        assert grid.padded_shape[0] >= 300 and grid.padded_shape[1] >= 500
        assert (grid[0] - 1) * grid.stride + 128 == grid.padded_shape[0]

    def test_small_scene_single_tile(self):
        tiles, grid = split_into_tiles(np.ones((20, 20), dtype=np.uint8), 32, overlap=8)
        assert grid == (1, 1)
        assert tiles.shape == (1, 32, 32)

    def test_rejects_bad_overlap(self):
        img = np.zeros((64, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            split_into_tiles(img, 32, overlap=32)
        with pytest.raises(ValueError):
            split_into_tiles(img, 32, overlap=-1)

    def test_blend_window_properties(self):
        win = blend_window(32, 8)
        assert win.shape == (32, 32)
        assert np.all(win > 0)
        assert np.all(win <= 1.0)
        # flat interior, tapered margins
        assert np.all(win[8:24, 8:24] == 1.0)
        assert win[0, 16] < 1.0 and win[-1, 16] < 1.0
        with pytest.raises(ValueError):
            blend_window(32, 32)

    def test_blended_tiles_mismatch_rejected(self):
        tiles, grid = split_into_tiles(np.zeros((64, 64), dtype=np.uint8), 32, overlap=8)
        with pytest.raises(ValueError):
            assemble_from_tiles(tiles[:-1], grid)
        with pytest.raises(ValueError):
            assemble_from_tiles(np.zeros((grid.num_tiles, 16, 16)), grid)
