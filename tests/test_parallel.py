"""Tests for repro.parallel (process-pool map, shared memory, auto-label runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (
    AutoLabelRunConfig,
    SharedNDArray,
    autolabel_scaling_table,
    available_cpu_count,
    default_chunk_size,
    measure_scaling,
    parallel_map,
    run_parallel_autolabel,
    serial_map,
    share_array,
)


def square(x):
    return x * x


def double_array(a):
    return a * 2


class TestChunking:
    def test_available_cpu_count_positive(self):
        assert available_cpu_count() >= 1

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 4) >= 1
        assert default_chunk_size(3, 8) == 1

    def test_default_chunk_size_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            default_chunk_size(10, 0)


class TestParallelMap:
    def test_serial_map_reference(self):
        assert serial_map(square, [1, 2, 3]) == [1, 4, 9]

    def test_single_worker_matches_serial(self):
        result = parallel_map(square, list(range(20)), num_workers=1)
        assert result.results == [square(i) for i in range(20)]
        assert result.num_workers == 1

    def test_multiworker_preserves_order_and_values(self):
        items = list(range(37))
        result = parallel_map(square, items, num_workers=2, chunk_size=5)
        assert result.results == [square(i) for i in items]
        assert result.num_workers == 2

    def test_works_on_arrays(self):
        arrays = [np.full((4, 4), i) for i in range(8)]
        result = parallel_map(double_array, arrays, num_workers=2)
        for i, out in enumerate(result.results):
            np.testing.assert_array_equal(out, arrays[i] * 2)

    def test_empty_input(self):
        result = parallel_map(square, [], num_workers=2)
        assert result.results == []

    def test_short_circuit_reports_what_ran(self):
        """When the serial fallback kicks in, the result must report the one
        in-process worker and single chunk that actually ran, not the
        requested worker count / computed chunk size."""
        result = parallel_map(square, [3], num_workers=4)
        assert result.results == [9]
        assert result.num_workers == 1
        assert result.chunk_size == 1

        result = parallel_map(square, [], num_workers=4, chunk_size=7)
        assert result.num_workers == 1
        assert result.chunk_size == 1

        result = parallel_map(square, list(range(10)), num_workers=1, chunk_size=3)
        assert result.num_workers == 1
        assert result.chunk_size == 10  # one serial pass over all items

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1], num_workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            parallel_map(square, [1, 2], num_workers=2, chunk_size=0)

    def test_measure_scaling_rows(self):
        measurements = measure_scaling(square, list(range(50)), worker_counts=(1, 2))
        assert [m.num_workers for m in measurements] == [1, 2]
        for m in measurements:
            assert m.results == [square(i) for i in range(50)]
            assert m.elapsed > 0


class TestSharedMemory:
    def test_round_trip(self):
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        shared = share_array(data)
        try:
            np.testing.assert_array_equal(shared.array, data)
            spec = shared.spec
            attached = SharedNDArray.attach(spec)
            try:
                np.testing.assert_array_equal(attached.array, data)
                attached.array[0, 0] = 99.0
                assert shared.array[0, 0] == 99.0  # same physical memory
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_context_manager_cleans_up(self):
        with share_array(np.ones(5)) as shared:
            name = shared.spec.name
            assert shared.array.sum() == 5
        # After unlink the block cannot be attached any more.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_spec_is_picklable(self):
        import pickle

        with share_array(np.zeros((2, 3), dtype=np.uint8)) as shared:
            spec2 = pickle.loads(pickle.dumps(shared.spec))
            assert spec2.shape == (2, 3)


class TestAutoLabelRunner:
    def test_parallel_matches_serial_labels(self, tiny_dataset):
        tiles = tiny_dataset.images[:4]
        serial_labels, _ = run_parallel_autolabel(tiles, AutoLabelRunConfig(num_workers=1))
        parallel_labels, _ = run_parallel_autolabel(tiles, AutoLabelRunConfig(num_workers=2))
        np.testing.assert_array_equal(serial_labels, parallel_labels)

    def test_output_shape(self, tiny_dataset):
        labels, elapsed = run_parallel_autolabel(tiny_dataset.images[:2], AutoLabelRunConfig(num_workers=1))
        assert labels.shape == (2, 32, 32)
        assert elapsed > 0

    def test_rejects_bad_stack(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_parallel_autolabel(tiny_dataset.labels, AutoLabelRunConfig())

    def test_scaling_table_structure(self, tiny_dataset):
        table = autolabel_scaling_table(tiny_dataset.images[:4], worker_counts=(1, 2))
        rows = table.rows()
        assert len(rows) == 2
        assert rows[0]["workers"] == 1 and rows[0]["speedup"] == 1.0
        assert all("items_per_s" in r for r in rows)
