"""Chaos suite: injected worker crashes / hangs against the fork backend, and
overload / deadline storms against the HTTP service.

The invariants under fault: results stay **bit-identical** to the serial
backend (retried spans recompute the same slices), nothing leaks (no orphaned
worker processes, no shared-memory segments after close), and the HTTP edge
keeps answering — failures surface only as 503 (shed) or 504 (deadline), never
as a wedged socket.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.backend import ProcessBackend, SerialBackend, available_backends
from repro.backend.store import SEGMENT_PREFIX
from repro.data import BatchLoader
from repro.distributed import ElasticTrainer, latest_checkpoints
from repro.nn import Adam, CheckpointError, load_checkpoint
from repro.reliability import FaultSpec, configure_faults, fault_stats, reset_faults
from repro.serving import InferenceService, ModelRegistry, ServiceConfig, make_server
from repro.unet import InferenceConfig, UNet, UNetConfig, tiny_unet_config

fork_only = pytest.mark.skipif(
    "fork" not in available_backends(), reason="fork start method unavailable"
)


def _segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith(SEGMENT_PREFIX)]


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    reset_faults()


@pytest.fixture(scope="module")
def model():
    return UNet(tiny_unet_config(seed=3))


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(11)
    return rng.integers(0, 256, size=(9, 32, 32, 3), dtype=np.uint8)


@pytest.fixture(scope="module")
def expected(model, stack):
    with SerialBackend() as backend:
        backend.publish_model("m", model)
        return backend.predict_stack("m", stack, batch_size=4)


@fork_only
class TestBackendChaos:
    def test_worker_crash_is_retried_bit_identical(self, model, stack, expected):
        # Armed *before* the fork so workers inherit the (shared) budget.
        configure_faults({"worker_crash": FaultSpec(times=1)})
        before = _segments()
        with ProcessBackend(num_workers=2, heartbeat_interval_s=0.0) as backend:
            backend.publish_model("m", model)
            probs = backend.predict_stack("m", stack, batch_size=4)
            np.testing.assert_array_equal(probs, expected)
            info = backend.occupancy()
            assert info["dispatch_retries"] >= 1
            assert fault_stats()["worker_crash"]["fired"] == 1
            pids = info["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_hung_worker_killed_and_span_retried(self, model, stack, expected):
        configure_faults({"worker_hang": FaultSpec(times=1, param=600.0)})
        before = _segments()
        with ProcessBackend(
            num_workers=2, dispatch_timeout_s=1.0, heartbeat_interval_s=0.0
        ) as backend:
            backend.publish_model("m", model)
            start = time.monotonic()
            probs = backend.predict_stack("m", stack, batch_size=4)
            # The hang was bounded by the dispatch timeout, not the 600 s sleep.
            assert time.monotonic() - start < 30.0
            np.testing.assert_array_equal(probs, expected)
            info = backend.occupancy()
            assert info["dispatch_retries"] >= 1
            pids = info["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_watchdog_respawns_idle_dead_worker(self, model, stack, expected):
        before = _segments()
        with ProcessBackend(num_workers=2, heartbeat_interval_s=0.1) as backend:
            backend.publish_model("m", model)
            victim = backend.occupancy()["worker_pids"][0]
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(
                lambda: backend.occupancy()["respawns"] >= 1
                and backend.occupancy()["alive_workers"] == 2
            )
            assert not _alive(victim)
            # Respawned worker got the store republished: predictions intact.
            probs = backend.predict_stack("m", stack, batch_size=4)
            np.testing.assert_array_equal(probs, expected)
            pids = backend.occupancy()["worker_pids"]
        assert _segments() == before
        assert not any(_alive(pid) for pid in pids)

    def test_repeated_crashes_exhaust_retries_cleanly(self, model, stack):
        # Unlimited crash budget: every attempt dies, the retry policy gives
        # up, and the error is surfaced instead of hanging — with no leaks.
        configure_faults({"worker_crash": FaultSpec(times=-1)})
        before = _segments()
        with ProcessBackend(num_workers=1, heartbeat_interval_s=0.0) as backend:
            backend.publish_model("m", model)
            with pytest.raises(Exception, match="died|killed"):
                backend.predict_stack("m", stack, batch_size=4)
        reset_faults()
        assert _segments() == before


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=None if body is None else json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture()
def chaos_served(tmp_path):
    """A deliberately tiny service: 1 concurrency slot, 2 queue slots, a
    50 ms request deadline — so chaos tests can saturate it instantly."""
    model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=21))
    registry = ModelRegistry(str(tmp_path))
    registry.publish("seaice", 1, model,
                     inference=InferenceConfig(tile_size=16, apply_cloud_filter=False))
    service = InferenceService(registry, ServiceConfig(
        port=0, batch_window_s=0.0, max_batch=1,
        request_timeout_s=0.05, max_queue=2, max_concurrent=1,
        retry_after_s=0.25,
    ))
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1], service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        registry.close()
        thread.join(5.0)


_TILE = np.zeros((16, 16, 3), dtype=np.uint8).tolist()


class TestServiceChaos:
    def test_slow_model_maps_deadline_to_504_with_timings(self, chaos_served):
        port, _ = chaos_served
        configure_faults({"slow_predict": FaultSpec(times=-1, param=0.3)})
        status, _, body = _request(port, "POST", "/predict", {"tile": _TILE})
        assert status == 504
        assert "deadline" in body["error"] or "stage" in body
        timings = body["stage_timings"]
        assert timings["budget_ms"] == pytest.approx(50.0)
        assert timings["total_ms"] >= 0.0
        reset_faults()
        # The wedged-looking service recovers as soon as the fault clears
        # (the worker may still be draining the abandoned slow compute).
        assert _wait_until(lambda: _request(
            port, "POST", "/predict", {"tile": _TILE})[0] == 200, timeout_s=10.0)

    def test_overload_storm_sheds_503_and_recovers(self, chaos_served):
        port, service = chaos_served
        configure_faults({"slow_predict": FaultSpec(times=-1, param=0.2)})
        statuses: list[int] = []
        lock = threading.Lock()

        def client() -> None:
            # The storm can reset a connection at the accept queue; retrying
            # is the client's job — a wedged (never-answering) server would
            # still fail the test via the 599 sentinel below.
            for _ in range(3):
                try:
                    status, headers, body = _request(port, "POST", "/predict",
                                                     {"tile": _TILE})
                except OSError:
                    time.sleep(0.1)
                    continue
                with lock:
                    statuses.append(status)
                    if status == 503:
                        assert float(headers["Retry-After"]) > 0
                        assert body["retry_after_s"] > 0
                return
            with lock:
                statuses.append(599)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        # Every request was answered; failures are only shed/deadline.
        assert len(statuses) == 8
        assert set(statuses) <= {200, 503, 504}
        assert 503 in statuses

        # Shedding is visible in /healthz (degraded) and /stats.
        status, _, health = _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "degraded"
        assert any("shedding" in reason for reason in health["degraded_reasons"])
        assert health["shed"] >= 1

        status, _, stats = _request(port, "GET", "/stats")
        reliability = stats["reliability"]
        assert reliability["admission"]["shed"] + sum(
            b["shed"] for b in stats["batchers"].values()
        ) >= 1
        assert reliability["faults_enabled"] is True
        # Queues stayed bounded throughout the storm.
        for batcher in stats["batchers"].values():
            assert batcher["queue_depth"] <= batcher["max_queue"] == 2
        assert reliability["admission"]["peak_active"] <= 1

        reset_faults()
        assert _wait_until(lambda: _request(
            port, "POST", "/predict", {"tile": _TILE})[0] == 200, timeout_s=10.0)

    def test_healthz_recovers_to_ok_after_quiet_period(self, chaos_served):
        port, service = chaos_served
        # No chaos at all: a fresh service is healthy and undegraded.
        status, _, health = _request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["degraded_reasons"] == []
        assert health["shed"] == 0 and health["expired"] == 0


# --------------------------------------------------------------------------- #
# Elastic training chaos
# --------------------------------------------------------------------------- #
_ELASTIC_CFG = UNetConfig(depth=2, base_channels=4, dropout=0.2, seed=7)


def _elastic_loader(images, labels, seed: int = 5) -> BatchLoader:
    return BatchLoader(images, labels, batch_size=4, shuffle=True, augment=True,
                       seed=seed)


def _elastic_victim(images, labels, ckpt_dir: str) -> None:
    """Forked casualty of the SIGKILL test: trains with a checkpoint after
    every step until killed from outside at an arbitrary point."""
    loader = _elastic_loader(images, labels)
    with ElasticTrainer(num_workers=2, config=_ELASTIC_CFG, micro_shards=4,
                        seed=0, step_timeout_s=30.0, checkpoint_dir=ckpt_dir,
                        checkpoint_every=1, keep_checkpoints=100) as trainer:
        trainer.fit(loader, epochs=3)


@fork_only
class TestTrainingChaos:
    def _run(self, split, workers: int, epochs: int = 2, **kwargs):
        kwargs.setdefault("step_timeout_s", 30.0)
        train, _ = split
        loader = _elastic_loader(train.images, train.labels)
        with ElasticTrainer(num_workers=workers, config=_ELASTIC_CFG,
                            micro_shards=4, seed=0, **kwargs) as trainer:
            history = trainer.fit(loader, epochs=epochs)
            return list(history.losses), trainer.weights_digest(), trainer.stats()

    def test_kill_one_of_four_mid_epoch_matches_three_worker_run(self, tiny_split):
        """Losing 1 of 4 workers mid-epoch must complete on the 3 survivors
        with no hang and no lost batch: losses and final weights are
        bit-identical to a run that had 3 workers all along."""
        before = _segments()
        configure_faults({"trainer_worker_crash": FaultSpec(times=1)})
        start = time.monotonic()
        losses, digest, stats = self._run(tiny_split, 4, auto_respawn=False)
        assert time.monotonic() - start < 60.0  # deadline-bounded, not wedged
        assert stats["ring_rebuilds"] >= 1
        assert stats["live_workers"] == 3
        assert fault_stats()["trainer_worker_crash"]["fired"] == 1
        reset_faults()
        clean_losses, clean_digest, clean_stats = self._run(tiny_split, 3)
        assert clean_stats["ring_rebuilds"] == 0
        assert losses == clean_losses
        assert digest == clean_digest
        assert _segments() == before

    def test_worker_crash_with_respawn_grows_back_bit_identical(self, tiny_split):
        configure_faults({"trainer_worker_crash": FaultSpec(times=1)})
        losses, digest, stats = self._run(tiny_split, 2)  # auto_respawn on
        assert stats["ring_rebuilds"] >= 1
        assert stats["worker_respawns"] >= 1
        assert stats["live_workers"] == 2  # grown back to target
        reset_faults()
        clean_losses, clean_digest, _ = self._run(tiny_split, 2)
        assert losses == clean_losses
        assert digest == clean_digest

    def test_allreduce_stall_is_evicted_not_waited_out(self, tiny_split):
        """A worker sleeping 600 s inside the gradient fold is evicted after
        the per-hop deadline and the step re-runs on the survivors."""
        configure_faults({"allreduce_stall": FaultSpec(times=1, param=600.0)})
        start = time.monotonic()
        losses, digest, stats = self._run(tiny_split, 3, step_timeout_s=1.5)
        assert time.monotonic() - start < 60.0
        assert stats["ring_rebuilds"] >= 1
        reset_faults()
        clean_losses, clean_digest, _ = self._run(tiny_split, 3)
        assert losses == clean_losses
        assert digest == clean_digest

    def test_sigkill_then_resume_is_bit_identical(self, tiny_split, tmp_path):
        """The acceptance gate: SIGKILL the whole training process at an
        arbitrary step, resume from the newest checkpoint in a fresh
        process, and the remaining epochs' losses and the final weights
        must equal the uninterrupted run bit-for-bit."""
        train, _ = tiny_split
        ref_losses, ref_digest, _ = self._run(tiny_split, 2, epochs=3)

        before = set(_segments())
        ctx = mp.get_context("fork")
        victim = ctx.Process(target=_elastic_victim,
                             args=(train.images, train.labels, str(tmp_path)))
        victim.start()
        assert _wait_until(lambda: len(latest_checkpoints(tmp_path)) >= 1,
                           timeout_s=60.0)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(10.0)
        assert victim.exitcode == -signal.SIGKILL
        # The killed process never ran its cleanup: reap the scratch segments
        # it leaked (crash safety is about the checkpoints, not the arenas).
        for name in set(_segments()) - before:
            try:
                os.unlink(os.path.join("/dev/shm", name))
            except OSError:  # pragma: no cover - raced with tracker
                pass

        loader = _elastic_loader(train.images, train.labels)
        with ElasticTrainer(num_workers=2, config=_ELASTIC_CFG, micro_shards=4,
                            seed=0, step_timeout_s=30.0,
                            checkpoint_dir=str(tmp_path), checkpoint_every=1,
                            keep_checkpoints=100) as trainer:
            resumed = trainer.fit(loader, epochs=3, resume=True)
            assert trainer.resumes == 1
            assert list(resumed.losses) == ref_losses
            assert trainer.weights_digest() == ref_digest

    def test_corrupt_checkpoint_falls_back_to_older_archive(self, tiny_split, tmp_path):
        train, _ = tiny_split
        final_losses, final_digest, _ = self._run(
            tiny_split, 2, checkpoint_dir=str(tmp_path), checkpoint_every=1,
            keep_checkpoints=100)
        ckpts = latest_checkpoints(tmp_path)
        assert len(ckpts) >= 2
        with open(ckpts[0], "r+b") as fh:  # tear the newest archive
            fh.truncate(max(1, os.path.getsize(ckpts[0]) // 2))
        model = UNet(_ELASTIC_CFG)
        with pytest.raises(CheckpointError):
            load_checkpoint(model, Adam(model.parameters(), lr=1e-3), ckpts[0])

        loader = _elastic_loader(train.images, train.labels)
        with ElasticTrainer(num_workers=2, config=_ELASTIC_CFG, micro_shards=4,
                            seed=0, step_timeout_s=30.0,
                            checkpoint_dir=str(tmp_path)) as trainer:
            resumed = trainer.fit(loader, epochs=2, resume=True)
            assert trainer.resumes == 1
            assert list(resumed.losses) == final_losses
            assert trainer.weights_digest() == final_digest

    def test_ckpt_corrupt_write_fault_yields_rejected_archive(self, tmp_path, tiny_split):
        """The torn-write fault must reach the *final* checkpoint name and be
        rejected at load time — exactly what a crash mid-write looks like."""
        train, _ = tiny_split
        configure_faults({"ckpt_corrupt_write": FaultSpec(times=1)})
        loader = _elastic_loader(train.images, train.labels)
        with ElasticTrainer(num_workers=1, config=_ELASTIC_CFG, micro_shards=2,
                            seed=0, checkpoint_dir=str(tmp_path),
                            checkpoint_every=1, keep_checkpoints=100) as trainer:
            trainer.fit(loader, epochs=1)
        assert fault_stats()["ckpt_corrupt_write"]["fired"] == 1
        reset_faults()
        ckpts = latest_checkpoints(tmp_path)
        assert ckpts
        torn = ckpts[-1]  # the first write of the run was the torn one
        model = UNet(_ELASTIC_CFG)
        with pytest.raises(CheckpointError):
            load_checkpoint(model, Adam(model.parameters(), lr=1e-3), torn)
