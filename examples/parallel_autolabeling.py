"""Parallel auto-labeling at scale: multiprocessing and map-reduce backends.

Reproduces the workflow behind the paper's Tables I and II on a synthetic
archive: the same thin-cloud/shadow-filtered colour-segmentation UDF is run
serially, with Python multiprocessing, and on the sparklite map-reduce
engine, and the measured scaling is printed next to the paper's cluster
numbers (regenerated with the calibrated Dataproc cost model).

Run with:  python examples/parallel_autolabeling.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_dataset
from repro.mapreduce import GCDClusterModel, mapreduce_scaling_sweep, paper_table2, run_mapreduce_autolabel
from repro.parallel import autolabel_scaling_table, available_cpu_count


def main() -> None:
    print("building a synthetic archive ...")
    dataset = build_dataset(num_scenes=4, scene_size=256, tile_size=64, base_seed=5, cloudy_fraction=0.5)
    tiles = dataset.images
    print(f"  {tiles.shape[0]} tiles of {tiles.shape[1]}x{tiles.shape[2]} pixels")

    # ------------------------------------------------------------------ #
    # Table I: single-machine multiprocessing scaling.
    # ------------------------------------------------------------------ #
    cpus = available_cpu_count()
    worker_counts = tuple(c for c in (1, 2, 4, 8) if c <= 2 * cpus)
    print(f"\nTable I workload: multiprocessing sweep over {worker_counts} processes ({cpus} CPUs)")
    table = autolabel_scaling_table(tiles, worker_counts=worker_counts)
    for row in table.rows():
        print(f"  {row}")
    print(f"  fitted Amdahl serial fraction: {table.serial_fraction():.3f}")

    # ------------------------------------------------------------------ #
    # Table II: map-reduce job + simulated Dataproc cluster sweep.
    # ------------------------------------------------------------------ #
    print("\nTable II workload: sparklite map-reduce job (process executor)")
    result = run_mapreduce_autolabel(tiles, executor="processes", parallelism=min(4, cpus))
    print(f"  {result.labels.shape[0]} tiles labelled over {result.num_partitions} partitions; "
          f"timings: {result.timings.as_row()}")

    serial = run_mapreduce_autolabel(tiles[:8], executor="serial")
    assert np.array_equal(serial.labels, result.labels[:8]), "distributed labels must match serial labels"

    print("\n  simulated Dataproc sweep (calibrated from this machine's per-tile cost):")
    for row in mapreduce_scaling_sweep(tiles=tiles[: min(48, tiles.shape[0])]):
        print(f"    {row}")

    print("\n  paper's published Table II for comparison:")
    for row in paper_table2():
        print(f"    {row}")
    print(f"\n  paper-calibrated cost-model error vs Table II: {GCDClusterModel().relative_error_vs_paper():.1%}")


if __name__ == "__main__":
    main()
