"""DGX A100 multi-GPU training performance model (Table III / Figure 12).

The paper trains its U-Net on an NVIDIA DGX A100 with Horovod and reports
wall time, time per epoch, throughput and speedup for 1–8 GPUs.  No GPUs are
available here, so the scaling table is regenerated from a calibrated
analytic model with three physically meaningful terms per epoch:

* **compute** — the per-GPU forward/backward work, which divides by the
  number of GPUs under synchronous data parallelism;
* **all-reduce communication** — the ring all-reduce cost
  ``2 (p-1)/p · model_bytes / bandwidth + latency · 2 (p-1)``, taken directly
  from the algorithm implemented in :mod:`repro.distributed.allreduce`;
* **input pipeline** — host-side data preprocessing and batch preparation
  that does not parallelise across GPUs; the paper explicitly names this as
  the source of GPU starvation at higher GPU counts.

The defaults are calibrated so the 1-GPU row matches the paper (280.72 s for
50 epochs) and the serial fraction matches the observed efficiency roll-off
(7.21× at 8 GPUs).  The same class can be re-calibrated from a locally
measured single-worker epoch time so the simulated sweep reflects this
repository's own U-Net cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PAPER_TABLE3_ROWS", "paper_table3", "DGXTrainingModel"]


#: Verbatim rows of the paper's Table III.
PAPER_TABLE3_ROWS: list[dict] = [
    {"gpus": 1, "total_time_s": 280.72, "epoch_time_s": 5.5, "images_per_s": 585.88, "speedup": 1.00},
    {"gpus": 2, "total_time_s": 142.98, "epoch_time_s": 2.778, "images_per_s": 1160.81, "speedup": 1.96},
    {"gpus": 4, "total_time_s": 74.09, "epoch_time_s": 1.45, "images_per_s": 2229.56, "speedup": 3.79},
    {"gpus": 6, "total_time_s": 51.56, "epoch_time_s": 0.97, "images_per_s": 3330.03, "speedup": 5.44},
    {"gpus": 8, "total_time_s": 38.91, "epoch_time_s": 0.79, "images_per_s": 4248.56, "speedup": 7.21},
]


def paper_table3() -> list[dict]:
    """The paper's Table III rows (copied verbatim for side-by-side reporting)."""
    return [dict(row) for row in PAPER_TABLE3_ROWS]


@dataclass
class DGXTrainingModel:
    """Calibrated per-epoch cost model of Horovod U-Net training on a DGX A100.

    Parameters
    ----------
    images_per_epoch:
        Training images processed per epoch (the paper's 80 % split of 4224
        tiles ≈ 3379; the throughput column implies ≈ 3222, which is what the
        default reproduces).
    epochs:
        Number of training epochs (50 in the paper).
    compute_time_per_image:
        Seconds of GPU compute per image on one A100.
    input_pipeline_time_per_epoch:
        Host-side preprocessing / batch-preparation seconds per epoch that do
        not scale with the GPU count (the paper's GPU-starvation term).
    model_megabytes:
        Size of the gradient buffer exchanged per step (U-Net with 31 M
        float32 parameters ≈ 124 MB).
    interconnect_gb_per_s:
        Effective all-reduce bandwidth between GPUs in gigabytes/second
        (NVLink-class on a DGX A100).
    allreduce_latency_s:
        Per-communication-step latency of the all-reduce ring.
    per_worker_batch_size:
        Batch size per GPU (32 in the paper), from which the number of
        optimisation steps per epoch at a given GPU count follows.
    """

    images_per_epoch: int = 3379
    epochs: int = 50
    compute_time_per_image: float = 5.538 / 3379.0
    input_pipeline_time_per_epoch: float = 0.0766
    model_megabytes: float = 124.0
    interconnect_gb_per_s: float = 600.0
    allreduce_latency_s: float = 2.0e-5
    per_worker_batch_size: int = 32

    def __post_init__(self) -> None:
        if self.images_per_epoch < 1 or self.epochs < 1 or self.per_worker_batch_size < 1:
            raise ValueError("images_per_epoch, epochs and per_worker_batch_size must be >= 1")
        if self.compute_time_per_image <= 0:
            raise ValueError("compute_time_per_image must be positive")

    # ------------------------------------------------------------------ #
    def steps_per_epoch(self, gpus: int) -> int:
        """Optimisation steps per epoch (global batch = per-worker batch × GPUs)."""
        if gpus < 1:
            raise ValueError("gpus must be >= 1")
        return max(1, int(np.ceil(self.images_per_epoch / (self.per_worker_batch_size * gpus))))

    def allreduce_time_per_step(self, gpus: int) -> float:
        """Ring all-reduce time for one gradient exchange at ``gpus`` workers."""
        if gpus < 1:
            raise ValueError("gpus must be >= 1")
        if gpus == 1:
            return 0.0
        bytes_exchanged = 2.0 * (gpus - 1) / gpus * self.model_megabytes * 1e6
        bandwidth = self.interconnect_gb_per_s * 1e9
        return bytes_exchanged / bandwidth + self.allreduce_latency_s * 2 * (gpus - 1)

    def epoch_time(self, gpus: int) -> float:
        """Predicted wall time of one epoch at ``gpus`` workers."""
        if gpus < 1:
            raise ValueError("gpus must be >= 1")
        compute = self.compute_time_per_image * self.images_per_epoch / gpus
        comm = self.allreduce_time_per_step(gpus) * self.steps_per_epoch(gpus)
        return compute + comm + self.input_pipeline_time_per_epoch

    def total_time(self, gpus: int) -> float:
        return self.epoch_time(gpus) * self.epochs

    def throughput(self, gpus: int) -> float:
        """Images per second during one epoch (the paper's Data/s column)."""
        return self.images_per_epoch / self.epoch_time(gpus)

    def speedup(self, gpus: int) -> float:
        return self.total_time(1) / self.total_time(gpus)

    # ------------------------------------------------------------------ #
    def predict_row(self, gpus: int) -> dict:
        """One Table III row."""
        return {
            "gpus": gpus,
            "total_time_s": round(self.total_time(gpus), 2),
            "epoch_time_s": round(self.epoch_time(gpus), 3),
            "images_per_s": round(self.throughput(gpus), 2),
            "speedup": round(self.speedup(gpus), 2),
        }

    def sweep(self, gpu_counts: tuple[int, ...] = (1, 2, 4, 6, 8)) -> list[dict]:
        """Predict the full Table III sweep."""
        return [self.predict_row(g) for g in gpu_counts]

    @classmethod
    def calibrated_from_measurement(
        cls,
        measured_epoch_time: float,
        images_per_epoch: int,
        model_parameters: int,
        epochs: int = 50,
        per_worker_batch_size: int = 32,
        serial_fraction: float = 0.014,
        **overrides,
    ) -> "DGXTrainingModel":
        """Calibrate the model from a locally measured single-worker epoch.

        ``serial_fraction`` apportions the measured epoch time between the
        parallelisable compute term and the non-scaling input-pipeline term
        (default: the fraction implied by the paper's own efficiency curve).
        """
        if measured_epoch_time <= 0:
            raise ValueError("measured_epoch_time must be positive")
        if not 0.0 <= serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        compute_total = measured_epoch_time * (1.0 - serial_fraction)
        return cls(
            images_per_epoch=images_per_epoch,
            epochs=epochs,
            compute_time_per_image=compute_total / images_per_epoch,
            input_pipeline_time_per_epoch=measured_epoch_time * serial_fraction,
            model_megabytes=model_parameters * 4 / 1e6,
            per_worker_batch_size=per_worker_batch_size,
            **overrides,
        )

    def relative_error_vs_paper(self) -> float:
        """Mean relative error of the default-calibrated sweep against Table III."""
        errors = []
        for row in PAPER_TABLE3_ROWS:
            pred = self.predict_row(row["gpus"])
            for col in ("total_time_s", "speedup"):
                errors.append(abs(pred[col] - row[col]) / row[col])
        return float(sum(errors) / len(errors))
