"""U-Net scene-inference engine (paper §III-C.2, Figure 9).

A trained model classifies new Sentinel-2 scenes by: splitting the big scene
into 256×256 tiles (optionally with overlapping margins), optionally running
the thin-cloud/shadow filter on each tile, predicting per-pixel class
probabilities in batches — optionally fanned out across worker processes via
:func:`repro.parallel.pool.parallel_map` — and stitching the per-tile
probability maps back into a full-scene classification map.  Overlapping
tiles are blend-averaged before the final argmax, which removes the seam
artifacts of hard tile boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field, fields

import numpy as np

from ..classes import NUM_CLASSES
from ..cloudshadow import CloudShadowFilter
from ..data.loader import image_to_tensor
from ..imops.resize import assemble_from_tiles, split_into_tiles
from ..parallel.pool import parallel_map
from .compiled import CompiledUNet
from .model import UNet

__all__ = [
    "InferenceConfig",
    "SceneClassifier",
    "predict_batch_probabilities",
    "predict_tiles",
    "predict_tile_probabilities",
]


@dataclass(frozen=True)
class InferenceConfig:
    """Options of the scene-inference pipeline.

    ``overlap`` is the number of pixels neighbouring tiles share; overlapped
    probability maps are blend-averaged at reassembly.  ``num_workers > 1``
    fans prediction batches out across a process pool (fork start method, so
    the model is shared copy-on-write; on platforms without fork the engine
    falls back to in-process batching).  ``compile_plans`` (on by default —
    inference always runs the model in eval mode) routes forward passes
    through per-shape compiled plans executing into a preallocated workspace
    arena (:mod:`repro.nn.plan`); ``plan_cache_size`` bounds how many input
    shapes stay compiled (LRU).
    """

    tile_size: int = 256
    overlap: int = 0
    apply_cloud_filter: bool = True
    batch_size: int = 8
    num_workers: int = 1
    compile_plans: bool = True
    plan_cache_size: int = 8

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if not 0 <= self.overlap < self.tile_size:
            raise ValueError("overlap must satisfy 0 <= overlap < tile_size")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")

    def to_dict(self) -> dict:
        """JSON-safe dict of every option (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "InferenceConfig":
        """Build a config from a (JSON-loaded) dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(f"expected a dict of InferenceConfig options, got {type(data).__name__}")
        known = {f.name: f.type for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown InferenceConfig keys {unknown}; valid keys are {sorted(known)}"
            )
        kwargs = {}
        for key, value in data.items():
            kwargs[key] = bool(value) if key in ("apply_cloud_filter", "compile_plans") else int(value)
        return cls(**kwargs)


def _validate_stack(tiles: np.ndarray) -> np.ndarray:
    stack = np.asarray(tiles)
    if stack.ndim != 4 or stack.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
    return stack


def _num_classes_of(model) -> int:
    config = getattr(model, "config", None)
    return int(getattr(config, "num_classes", NUM_CLASSES))


def _model_input_multiple(model) -> int:
    """Spatial divisor the model's forward pass requires (1 when unconstrained)."""
    config = getattr(model, "config", None)
    min_input_size = getattr(config, "min_input_size", None)
    if callable(min_input_size):
        return max(1, int(min_input_size()))
    return 1


def _pad_stack_to_multiple(stack: np.ndarray, multiple: int) -> np.ndarray:
    """Reflect-pad the bottom/right of every tile in an ``(N, H, W, C)`` stack
    so H and W are multiples of ``multiple`` (edge padding per axis when the
    tile is too small to reflect, matching :func:`repro.imops.resize.pad_to_multiple`)."""
    n, h, w = stack.shape[:3]
    pad_h, pad_w = (-h) % multiple, (-w) % multiple
    if pad_h == 0 and pad_w == 0:
        return stack
    out = stack
    if pad_h:
        spec = [(0, 0), (0, pad_h)] + [(0, 0)] * (out.ndim - 2)
        out = np.pad(out, spec, mode="reflect" if pad_h <= h - 1 else "edge")
    if pad_w:
        spec = [(0, 0), (0, 0), (0, pad_w)] + [(0, 0)] * (out.ndim - 3)
        out = np.pad(out, spec, mode="reflect" if pad_w <= w - 1 else "edge")
    return out


# Worker-process state for multi-process prediction.  The globals are set in
# the parent immediately before the pool is forked, so workers inherit the
# model and filter copy-on-write instead of receiving them pickled per task.
# This makes the pooled path non-reentrant: one multi-process prediction at a
# time per process (concurrent in-process calls are unaffected — they pass
# the model explicitly).
_WORKER_MODEL = None
_WORKER_FILTER: CloudShadowFilter | None = None
_WORKER_ENGINE: CompiledUNet | None = None


def predict_batch_probabilities(
    batch: np.ndarray,
    model: UNet | None = None,
    cloud_filter: CloudShadowFilter | None = None,
    engine: CompiledUNet | None = None,
) -> np.ndarray:
    """Probability maps ``(N, K, H, W)`` for one ``(N, H, W, 3)`` tile batch.

    This is the single batchable prediction seam every consumer shares: the
    in-process loop, the fork-pool workers (which call it with only ``batch``
    and fall back to the fork-inherited globals), and the serving
    micro-batcher.  Tiles whose spatial size the model cannot ingest (not a
    multiple of ``config.min_input_size()``) are reflect-padded bottom/right
    before the forward pass and the probability maps cropped back, so small
    scenes and 1-pixel remainder bands classify cleanly.

    With ``engine`` (a :class:`~repro.unet.compiled.CompiledUNet` wrapping
    the same model) the forward pass runs through the per-shape compiled
    plan instead of the generic layer walk — identical maps, no per-call
    workspace allocations.
    """
    if model is None and engine is None:
        model = _WORKER_MODEL
        cloud_filter = _WORKER_FILTER
        engine = _WORKER_ENGINE
    if engine is not None and model is None:
        model = engine.model
    if model is None:
        raise RuntimeError("inference worker state not initialised")
    if cloud_filter is not None:
        batch = cloud_filter.apply_batch(batch)
    h, w = batch.shape[1:3]
    padded = _pad_stack_to_multiple(batch, _model_input_multiple(model))
    tensor = image_to_tensor(padded)
    if engine is not None:
        probs = engine.predict_proba(tensor)
    else:
        probs = model.predict_proba(tensor)
    probs = probs.astype(np.float32, copy=False)
    return probs[:, :, :h, :w]


#: Backwards-compatible alias (the pre-serving private name).
_predict_probs_batch = predict_batch_probabilities


def predict_tile_probabilities(
    model: UNet,
    tiles: np.ndarray,
    batch_size: int = 8,
    cloud_filter: CloudShadowFilter | None = None,
    num_workers: int = 1,
    engine: CompiledUNet | None = None,
) -> np.ndarray:
    """Per-class probability maps ``(N, K, H, W)`` for an ``(N, H, W, 3)`` stack.

    Tiles are predicted in batches of ``batch_size``; with ``num_workers > 1``
    the batches are mapped over a fork-based process pool (forked workers
    inherit ``engine``'s compiled plans copy-on-write — each child runs into
    its own arena pages).  An empty stack returns a correctly-shaped empty
    array instead of raising.
    """
    stack = _validate_stack(tiles)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    n, h, w = stack.shape[:3]
    if n == 0:
        return np.zeros((0, _num_classes_of(model), h, w), dtype=np.float32)

    batches = [stack[start : start + batch_size] for start in range(0, n, batch_size)]
    use_pool = num_workers > 1 and len(batches) > 1 and "fork" in mp.get_all_start_methods()
    if use_pool:
        global _WORKER_MODEL, _WORKER_FILTER, _WORKER_ENGINE
        # Fork a *fresh* engine, never the caller's: another thread could be
        # mid-run holding one of its plan locks at fork time, and an
        # inherited-held lock would deadlock every child.  A fresh engine has
        # no compiled plans (children compile lazily, once each) and no lock
        # anyone can be holding.
        worker_engine = None if engine is None else CompiledUNet(model, max_plans=engine.max_plans)
        _WORKER_MODEL, _WORKER_FILTER, _WORKER_ENGINE = model, cloud_filter, worker_engine
        try:
            result = parallel_map(
                predict_batch_probabilities,
                batches,
                num_workers=min(num_workers, len(batches)),
                chunk_size=1,
                start_method="fork",
            )
            outputs = result.results
        finally:
            _WORKER_MODEL, _WORKER_FILTER, _WORKER_ENGINE = None, None, None
    else:
        outputs = [predict_batch_probabilities(batch, model, cloud_filter, engine) for batch in batches]
    return np.concatenate(outputs, axis=0)


def predict_tiles(
    model: UNet,
    tiles: np.ndarray,
    batch_size: int = 8,
    cloud_filter: CloudShadowFilter | None = None,
) -> np.ndarray:
    """Predict class maps for a ``(N, H, W, 3)`` uint8 tile stack.

    When ``cloud_filter`` is given each tile is filtered before prediction,
    which is the paper's recommended inference configuration.  An empty tile
    stack returns an empty ``(0, H, W)`` map instead of raising.
    """
    stack = _validate_stack(tiles)
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n, h, w = stack.shape[:3]
    if n == 0:
        return np.zeros((0, h, w), dtype=np.uint8)

    outputs = []
    for start in range(0, n, batch_size):
        probs = predict_batch_probabilities(stack[start : start + batch_size], model, cloud_filter)
        outputs.append(probs.argmax(axis=1).astype(np.uint8))
    return np.concatenate(outputs, axis=0)


@dataclass
class SceneClassifier:
    """Whole-scene inference engine (tile → filter → batched predict → blend-stitch).

    With ``config.compile_plans`` (the default) the classifier owns a
    :class:`~repro.unet.compiled.CompiledUNet`: every distinct batch shape it
    predicts is compiled once into an arena-backed plan and re-run
    allocation-free afterwards.  Plans snapshot weights — call
    :meth:`invalidate_plans` if the wrapped model is trained further.
    """

    model: UNet
    config: InferenceConfig = field(default_factory=InferenceConfig)
    cloud_filter: CloudShadowFilter = field(default_factory=CloudShadowFilter)
    _engine: CompiledUNet | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.config.compile_plans and isinstance(self.model, UNet):
            self._engine = CompiledUNet(self.model, max_plans=self.config.plan_cache_size)

    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> CompiledUNet | None:
        """The compiled-plan engine (``None`` when ``compile_plans`` is off)."""
        return self._engine

    def warm_plans(self, batch_sizes: tuple[int, ...] = (1,)) -> None:
        """Pre-compile plans for the configured tile shape at ``batch_sizes``.

        Uses the shape the prediction seam would actually run: the tile size
        rounded up to the model's input multiple.
        """
        if self._engine is None:
            return
        multiple = _model_input_multiple(self.model)
        t = -(-self.config.tile_size // multiple) * multiple
        for n in batch_sizes:
            self._engine.warm((int(n), self.model.config.in_channels, t, t))

    def invalidate_plans(self) -> None:
        """Drop compiled plans (call after mutating the model's weights)."""
        if self._engine is not None:
            self._engine.clear()

    def plan_cache_info(self) -> dict | None:
        return None if self._engine is None else self._engine.cache_info()

    # ------------------------------------------------------------------ #
    def classify_scene_proba(self, scene_rgb: np.ndarray) -> np.ndarray:
        """Per-pixel class probabilities ``(H, W, K)`` of a full ``(H, W, 3)`` scene.

        Overlapping tile regions are blend-averaged (see
        :func:`repro.imops.resize.blend_window`) before any argmax, so seams
        between tiles cross-fade instead of switching abruptly.
        """
        scene = np.asarray(scene_rgb)
        if scene.ndim != 3 or scene.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) scene, got shape {scene.shape}")
        cfg = self.config
        tiles, grid = split_into_tiles(scene, tile_size=cfg.tile_size, overlap=cfg.overlap)
        filt = self.cloud_filter if cfg.apply_cloud_filter else None
        probs = predict_tile_probabilities(
            self.model, tiles, batch_size=cfg.batch_size, cloud_filter=filt,
            num_workers=cfg.num_workers, engine=self._engine,
        )
        prob_tiles = np.moveaxis(probs, 1, -1)  # (N, h, w, K)
        return np.asarray(assemble_from_tiles(prob_tiles, grid))

    def classify_scene(self, scene_rgb: np.ndarray) -> np.ndarray:
        """Return the per-pixel class map of a full ``(H, W, 3)`` scene."""
        return self.classify_scene_proba(scene_rgb).argmax(axis=-1).astype(np.uint8)

    def classify_tiles(self, tiles: np.ndarray) -> np.ndarray:
        """Classify an already-tiled stack (honours ``config.num_workers``)."""
        cfg = self.config
        filt = self.cloud_filter if cfg.apply_cloud_filter else None
        probs = predict_tile_probabilities(
            self.model, tiles, batch_size=cfg.batch_size, cloud_filter=filt,
            num_workers=cfg.num_workers, engine=self._engine,
        )
        return probs.argmax(axis=1).astype(np.uint8)

    def predict_batch(self, batch: np.ndarray) -> np.ndarray:
        """One batched prediction ``(N, H, W, 3) → (N, K, H, W)`` through the
        classifier's filter and compiled-plan engine — the seam the serving
        micro-batcher binds to."""
        filt = self.cloud_filter if self.config.apply_cloud_filter else None
        return predict_batch_probabilities(batch, self.model, filt, engine=self._engine)
