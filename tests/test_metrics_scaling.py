"""Tests for repro.metrics.scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    ScalingPoint,
    ScalingTable,
    amdahl_speedup,
    efficiency,
    fit_amdahl_serial_fraction,
    speedup,
    throughput,
)


class TestBasicMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, -1.0)

    def test_efficiency(self):
        assert efficiency(8.0, 2.0, 4) == 1.0
        assert efficiency(8.0, 4.0, 4) == 0.5

    def test_efficiency_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)

    def test_throughput(self):
        assert throughput(100, 4.0) == 25.0
        with pytest.raises(ValueError):
            throughput(10, 0.0)
        with pytest.raises(ValueError):
            throughput(-1, 1.0)


class TestAmdahl:
    def test_no_serial_fraction_is_linear(self):
        assert amdahl_speedup(8, 0.0) == 8.0

    def test_fully_serial_never_speeds_up(self):
        assert amdahl_speedup(16, 1.0) == 1.0

    def test_monotone_in_workers(self):
        values = [amdahl_speedup(p, 0.05) for p in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.0, 0.5))
    def test_fit_recovers_serial_fraction(self, f):
        workers = np.array([1, 2, 4, 8, 16])
        speedups = np.array([amdahl_speedup(int(p), f) for p in workers])
        recovered = fit_amdahl_serial_fraction(workers, speedups)
        assert abs(recovered - f) < 1e-6

    def test_fit_needs_multiworker_point(self):
        with pytest.raises(ValueError):
            fit_amdahl_serial_fraction(np.array([1]), np.array([1.0]))

    def test_paper_table3_serial_fraction_is_small(self):
        """The paper's 7.21x at 8 GPUs implies a serial fraction of about 1.6%."""
        workers = np.array([2, 4, 6, 8])
        speedups = np.array([1.96, 3.79, 5.44, 7.21])
        f = fit_amdahl_serial_fraction(workers, speedups)
        assert 0.005 < f < 0.03


class TestScalingTable:
    def make_table(self):
        points = [
            ScalingPoint(workers=1, time=17.40, items=4224),
            ScalingPoint(workers=2, time=8.89, items=4224),
            ScalingPoint(workers=4, time=4.69, items=4224),
            ScalingPoint(workers=8, time=3.89, items=4224),
        ]
        return ScalingTable(points=points, label="table1")

    def test_serial_time_is_single_worker_row(self):
        assert self.make_table().serial_time == 17.40

    def test_paper_table1_speedups(self):
        table = self.make_table()
        speedups = table.speedups()
        assert speedups[0] == 1.0
        assert speedups[1] == pytest.approx(1.96, abs=0.01)
        assert speedups[-1] == pytest.approx(4.47, abs=0.01)

    def test_rows_contain_throughput(self):
        rows = self.make_table().rows()
        assert all("items_per_s" in row for row in rows)
        assert rows[-1]["items_per_s"] > rows[0]["items_per_s"]

    def test_points_sorted_by_workers(self):
        table = ScalingTable(points=[ScalingPoint(4, 1.0), ScalingPoint(1, 4.0)])
        assert [p.workers for p in table.points] == [1, 4]

    def test_empty_table_raises(self):
        with pytest.raises(ValueError):
            ScalingTable(points=[])

    def test_serial_fraction_estimate(self):
        f = self.make_table().serial_fraction()
        assert 0.0 <= f <= 0.2
