"""§IV-C timing — end-to-end auto-labeled training-data preparation.

Paper result: preparing colour-segmented, thin-cloud/shadow-filtered
auto-labelled data for 66 scenes of 2048×2048 pixels takes 349.26 s
(≈ 5.3 s per scene).  This benchmark runs the same pipeline (filter →
colour segmentation → tiling) on synthetic scenes and reports the per-scene
cost, plus the extrapolation to the paper's 66-scene archive.
"""

from __future__ import annotations

import pytest

from repro.workflow import run_preparation_pipeline

from conftest import print_rows

PAPER_SECONDS_PER_SCENE = 349.26 / 66.0


@pytest.mark.benchmark(group="prep")
def test_prep_pipeline_timing(benchmark):
    def run():
        return run_preparation_pipeline(num_scenes=2, scene_size=512, tile_size=256, seed=1)

    timing = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = timing.summary()
    # Cost scales with pixel count; extrapolate this run to the paper's scene size.
    pixels_ratio = (2048 * 2048) / (timing.scene_size * timing.scene_size)
    extrapolated_per_scene = summary["seconds_per_scene"] * pixels_ratio
    rows = [
        {"source": "paper (66 scenes of 2048x2048)", "seconds_per_scene": round(PAPER_SECONDS_PER_SCENE, 2)},
        {
            "source": f"this run ({timing.num_scenes} scenes of {timing.scene_size}x{timing.scene_size})",
            "seconds_per_scene": summary["seconds_per_scene"],
            "extrapolated_to_2048px": round(extrapolated_per_scene, 2),
        },
    ]
    print_rows("Data-preparation pipeline timing (paper: 349.26 s total)", rows)

    assert timing.num_tiles == 2 * (512 // 256) ** 2
    assert timing.total_s > 0
    # The per-scene cost extrapolated to paper-sized scenes should be the same
    # order of magnitude as the paper's measurement (seconds, not minutes).
    assert extrapolated_per_scene < 120.0
