"""Unified execution-backend seam (serial / thread / fork).

Every fan-out layer in the repo — scene inference, the serving tier, the
auto-label pool and the map-reduce executors — dispatches through one
:class:`~repro.backend.base.Backend`, selected by name (or ``"auto"``,
which honours the ``REPRO_BACKEND`` environment variable).  The fork
backend keeps persistent workers attached to a shared-memory model store
(:mod:`repro.backend.store`): weights and pre-packed compiled-plan GEMM
operands are published once and mapped read-only by every worker.
"""

from .base import (
    BACKEND_ENV_VAR,
    Backend,
    BackendError,
    ModelHandle,
    available_backends,
    make_backend,
    resolve_backend_name,
)
from .process import ProcessBackend
from .serial import SerialBackend
from .store import SEGMENT_PREFIX, SharedModelSpec, SharedModelStore, attach_model
from .thread import ThreadBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendError",
    "ModelHandle",
    "ProcessBackend",
    "SEGMENT_PREFIX",
    "SerialBackend",
    "SharedModelSpec",
    "SharedModelStore",
    "ThreadBackend",
    "attach_model",
    "available_backends",
    "make_backend",
    "resolve_backend_name",
]
