"""Tests for repro.labeling (auto-labeling and simulated manual annotation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classes import HSV_RANGES, NUM_CLASSES, SeaIceClass
from repro.imops import rgb_to_hsv
from repro.labeling import (
    ColorSegmentationLabeler,
    ManualLabelSimulator,
    autolabel_batch,
    autolabel_tile,
    simulate_manual_labels,
)
from repro.metrics import accuracy_score


class TestColorSegmentationLabeler:
    def test_clean_scene_matches_ground_truth(self, clear_scene):
        labeler = ColorSegmentationLabeler(apply_cloud_filter=False)
        labels = labeler(clear_scene.clean_rgb)
        assert accuracy_score(clear_scene.class_map, labels) > 0.98

    def test_every_pixel_gets_a_class(self, cloudy_scene):
        labels = ColorSegmentationLabeler(apply_cloud_filter=False)(cloudy_scene.rgb)
        assert labels.min() >= 0 and labels.max() < NUM_CLASSES

    def test_masks_are_disjoint(self, clear_scene):
        labeler = ColorSegmentationLabeler()
        hsv = rgb_to_hsv(clear_scene.clean_rgb)
        masks = labeler.class_masks(hsv)
        total = sum(m.astype(int) for m in masks.values())
        assert total.max() <= 1  # the paper's HSV ranges are non-intersecting

    def test_segment_returns_label_image_and_masks(self, clear_scene):
        result = ColorSegmentationLabeler().segment(clear_scene.clean_rgb)
        assert result.label_image.shape == clear_scene.clean_rgb.shape
        assert set(result.masks) == set(SeaIceClass)
        assert result.class_map.dtype == np.uint8

    def test_filtered_segmentation_returns_filtered_rgb(self, cloudy_scene):
        result = ColorSegmentationLabeler(apply_cloud_filter=True).segment(cloudy_scene.rgb)
        assert result.filtered_rgb is not None
        assert result.filtered_rgb.shape == cloudy_scene.rgb.shape

    def test_cloud_filter_improves_accuracy(self, cloudy_scene):
        raw = ColorSegmentationLabeler(apply_cloud_filter=False)(cloudy_scene.rgb)
        filt = ColorSegmentationLabeler(apply_cloud_filter=True)(cloudy_scene.rgb)
        assert accuracy_score(cloudy_scene.class_map, filt) >= accuracy_score(cloudy_scene.class_map, raw)

    def test_value_thresholds_drive_labels(self):
        """Pixels engineered to sit inside each V band get the matching class."""
        img = np.zeros((1, 3, 3), dtype=np.uint8)
        img[0, 0] = (230, 235, 240)  # V=240 -> thick
        img[0, 1] = (120, 120, 120)  # V=120 -> thin
        img[0, 2] = (5, 10, 20)  # V=20  -> water
        labels = ColorSegmentationLabeler(apply_cloud_filter=False)(img)
        assert labels[0, 0] == int(SeaIceClass.THICK_ICE)
        assert labels[0, 1] == int(SeaIceClass.THIN_ICE)
        assert labels[0, 2] == int(SeaIceClass.OPEN_WATER)

    def test_rejects_incomplete_ranges(self):
        with pytest.raises(ValueError):
            ColorSegmentationLabeler(hsv_ranges={SeaIceClass.THICK_ICE: HSV_RANGES[SeaIceClass.THICK_ICE]})

    def test_rejects_bad_input_shape(self):
        with pytest.raises(ValueError):
            ColorSegmentationLabeler()(np.zeros((4, 4), dtype=np.uint8))

    def test_batch_labeling_matches_per_tile(self, tiny_dataset):
        labeler = ColorSegmentationLabeler(apply_cloud_filter=False)
        batch = labeler.label_batch(tiny_dataset.images[:3])
        for i in range(3):
            np.testing.assert_array_equal(batch[i], labeler(tiny_dataset.images[i]))

    def test_module_level_helpers(self, tiny_dataset):
        single = autolabel_tile(tiny_dataset.images[0], apply_cloud_filter=False)
        assert single.shape == (32, 32)
        batch = autolabel_batch(tiny_dataset.images[:2], apply_cloud_filter=False)
        assert batch.shape == (2, 32, 32)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 255))
    def test_uniform_value_images_label_consistently(self, value):
        """A constant-V image must be labelled entirely as the band that V falls in."""
        img = np.full((8, 8, 3), value, dtype=np.uint8)
        labels = ColorSegmentationLabeler(apply_cloud_filter=False)(img)
        if value >= 205:
            expected = int(SeaIceClass.THICK_ICE)
        elif value >= 31:
            expected = int(SeaIceClass.THIN_ICE)
        else:
            expected = int(SeaIceClass.OPEN_WATER)
        assert np.all(labels == expected)


class TestManualLabelSimulator:
    def test_exact_when_noise_disabled(self, tiny_dataset):
        sim = ManualLabelSimulator(boundary_jitter=0.0, min_region_size=0)
        np.testing.assert_array_equal(sim.annotate(tiny_dataset.labels[0]), tiny_dataset.labels[0])

    def test_high_agreement_with_truth(self, tiny_dataset):
        annotated = simulate_manual_labels(tiny_dataset.labels, seed=0)
        assert accuracy_score(tiny_dataset.labels, annotated) > 0.9

    def test_output_classes_valid(self, tiny_dataset):
        annotated = simulate_manual_labels(tiny_dataset.labels, seed=1)
        assert set(np.unique(annotated)).issubset(set(range(NUM_CLASSES)))

    def test_batch_and_single_apis(self, tiny_dataset):
        sim = ManualLabelSimulator(seed=2)
        single = sim.annotate(tiny_dataset.labels[0])
        batch = sim.annotate_batch(tiny_dataset.labels[:2])
        assert single.shape == (32, 32)
        assert batch.shape == (2, 32, 32)

    def test_rejects_bad_inputs(self):
        sim = ManualLabelSimulator()
        with pytest.raises(ValueError):
            sim.annotate(np.zeros((4, 4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            sim.annotate(np.full((4, 4), 9, dtype=np.uint8))
        with pytest.raises(ValueError):
            ManualLabelSimulator(boundary_jitter=-1.0)
        with pytest.raises(ValueError):
            ManualLabelSimulator(min_region_size=-2)

    def test_jitter_changes_some_boundary_pixels(self):
        cmap = np.zeros((32, 32), dtype=np.uint8)
        cmap[:, 16:] = 1
        sim = ManualLabelSimulator(boundary_jitter=2.0, min_region_size=0, seed=3)
        annotated = sim.annotate(cmap)
        diff = (annotated != cmap).mean()
        assert 0.0 < diff < 0.3
