"""Tests for the repro-seaice command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_autolabel_defaults(self):
        args = build_parser().parse_args(["autolabel"])
        assert args.backend == "serial"
        assert args.scenes == 4

    def test_scaling_table_choices(self):
        args = build_parser().parse_args(["scaling", "--table", "2"])
        assert args.table == "2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "--table", "9"])

    def test_train_arguments(self):
        args = build_parser().parse_args(["train", "--scenes", "3", "--epochs", "5"])
        assert args.scenes == 3 and args.epochs == 5


class TestCommands:
    def test_autolabel_command_runs(self, capsys):
        code = main(["autolabel", "--scenes", "1", "--scene-size", "64", "--tile-size", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ssim_vs_manual" in out

    def test_scaling_tables_2_and_3(self, capsys):
        assert main(["scaling", "--table", "2"]) == 0
        assert "Table II" in capsys.readouterr().out
        assert main(["scaling", "--table", "3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_prep_command_runs(self, capsys):
        assert main(["prep", "--scenes", "1", "--scene-size", "64", "--tile-size", "32"]) == 0
        assert "seconds_per_scene" in capsys.readouterr().out

    def test_prep_command_with_overlap(self, capsys):
        assert main(["prep", "--scenes", "1", "--scene-size", "64", "--tile-size", "32", "--overlap", "8"]) == 0
        out = capsys.readouterr().out
        assert '"tile_overlap": 8' in out

    def test_classify_defaults(self):
        args = build_parser().parse_args(["classify"])
        assert args.overlap == 0 and args.workers == 1

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--registry", "models/"])
        assert args.registry == "models/"
        assert args.port == 8080 and args.max_batch == 16
        assert args.batch_window_ms == 5.0 and not args.demo

    def test_serve_demo_flags(self):
        args = build_parser().parse_args(["serve", "--demo", "--demo-epochs", "0", "--port", "0"])
        assert args.demo and args.demo_epochs == 0 and args.port == 0

    def test_classify_command_runs(self, capsys):
        code = main([
            "classify", "--scene-size", "64", "--tile-size", "32", "--overlap", "8",
            "--workers", "2", "--epochs", "0", "--no-filter",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiles_per_s" in out and '"overlap": 8' in out

    def test_serve_without_registry_errors(self, capsys):
        assert main(["serve"]) == 2
        assert "--registry" in capsys.readouterr().err

    def test_serve_empty_registry_errors(self, tmp_path, capsys):
        assert main(["serve", "--registry", str(tmp_path)]) == 2
        assert "no models" in capsys.readouterr().err

    def test_serve_inference_config_file_rejects_unknown_keys(self, tmp_path, capsys):
        import json as json_mod

        config_path = tmp_path / "inference.json"
        config_path.write_text(json_mod.dumps({"tile_size": 32, "bogus": 1}))
        with pytest.raises(ValueError, match="unknown InferenceConfig keys"):
            main(["serve", "--registry", str(tmp_path), "--inference-config", str(config_path)])


class TestBenchCommand:
    def test_parser_accepts_bench(self):
        args = build_parser().parse_args(["bench", "inference_throughput", "--smoke"])
        assert args.name == "inference_throughput" and args.smoke

    def test_list_prints_available_benchmarks(self, capsys):
        assert main(["bench", "--list"]) == 0
        import json as json_mod

        payload = json_mod.loads(capsys.readouterr().out)
        assert "inference_throughput" in payload["benchmarks"]
        assert "serving_throughput" in payload["benchmarks"]

    def test_no_name_lists(self, capsys):
        assert main(["bench"]) == 0
        assert "benchmarks" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_serve_max_warm_flag(self):
        args = build_parser().parse_args(["serve", "--demo", "--max-warm", "2"])
        assert args.max_warm == 2
