"""Request tracing: trace ids, stage-span collection, sampled JSON trace logs.

One trace follows one request through the stack: the HTTP handler mints (or
honours ``X-Request-Id``) a trace id, the serving layer collects per-stage
spans — queue wait, batch assembly, dispatch, compute, stitch — and, when
the trace is sampled, emits a single structured-JSON record to the trace
log.  ``REPRO_TRACE`` picks the mode:

* ``off`` (default) — no records are emitted (ids still flow, so responses
  always carry a ``trace_id``);
* ``sampled`` — a deterministic hash of the trace id keeps roughly
  ``REPRO_TRACE_SAMPLE`` (default 0.1) of traces;
* ``all`` — every trace is emitted.

Records go to ``REPRO_TRACE_LOG`` (a JSONL file, opened lazily and appended
under a lock) or stderr when unset.

Stage timings cross layer boundaries without threading new parameters
through every signature: the batcher pushes a thread-local **collector**
dict before invoking the prediction seam, and the innermost layer that
knows a number (the backend's compute timing, a fork worker's reply
metadata) calls :func:`record` — one thread-local attribute check when no
collector is active, so the hot path without tracing stays free.

Fork propagation: the parent stashes the current trace id next to the
collector; the process backend copies it into dispatch messages, the worker
echoes it in reply metadata, and the parent records the worker-measured
compute time into the active collector — so a fork-served request reports
real worker compute, not just round-trip time.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from contextlib import contextmanager

__all__ = [
    "TRACE_ENV_VAR",
    "TRACE_SAMPLE_ENV_VAR",
    "TRACE_LOG_ENV_VAR",
    "new_trace_id",
    "trace_mode",
    "configure_tracing",
    "should_sample",
    "emit_trace",
    "push_collector",
    "pop_collector",
    "record",
    "active_collector",
    "current_trace_id",
    "collector_context",
]

#: ``off`` | ``sampled`` | ``all``
TRACE_ENV_VAR = "REPRO_TRACE"
#: sample probability for ``sampled`` mode (default 0.1)
TRACE_SAMPLE_ENV_VAR = "REPRO_TRACE_SAMPLE"
#: JSONL sink path (default: stderr)
TRACE_LOG_ENV_VAR = "REPRO_TRACE_LOG"

_VALID_MODES = ("off", "sampled", "all")

_config_lock = threading.Lock()
_mode: str | None = None        # None → read the environment lazily
_sample_rate: float | None = None
_log_path: str | None = None
_log_file = None
_log_lock = threading.Lock()


def new_trace_id() -> str:
    """A fresh 32-hex trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


def configure_tracing(mode: str | None = None, sample_rate: float | None = None,
                      log_path: str | None = None) -> None:
    """Override the environment-derived tracing config (tests, CLI flags).

    Passing ``None`` for a field re-reads it from the environment on next
    use; the log sink is reopened when its path changes.
    """
    global _mode, _sample_rate, _log_path, _log_file
    if mode is not None and mode not in _VALID_MODES:
        raise ValueError(f"trace mode must be one of {_VALID_MODES}, got {mode!r}")
    with _config_lock:
        _mode = mode
        _sample_rate = sample_rate
        with _log_lock:
            if _log_file is not None and not _log_file.closed and _log_file is not sys.stderr:
                _log_file.close()
            _log_file = None
            _log_path = log_path


def trace_mode() -> str:
    with _config_lock:
        if _mode is not None:
            return _mode
    env = os.environ.get(TRACE_ENV_VAR, "off").strip().lower()
    return env if env in _VALID_MODES else "off"


def _sample_rate_value() -> float:
    with _config_lock:
        if _sample_rate is not None:
            return _sample_rate
    raw = os.environ.get(TRACE_SAMPLE_ENV_VAR, "").strip()
    try:
        return min(1.0, max(0.0, float(raw))) if raw else 0.1
    except ValueError:
        return 0.1


def should_sample(trace_id: str) -> bool:
    """Whether this trace id's record should be emitted under the current mode.

    Deterministic in the trace id (a stable 64-bit FNV-1a hash, not
    ``hash()`` which is salted per process), so parent and workers — or a
    retry of the same request — agree on the sampling verdict.
    """
    mode = trace_mode()
    if mode == "off":
        return False
    if mode == "all":
        return True
    acc = 0xCBF29CE484222325
    for byte in trace_id.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return (acc / 2**64) < _sample_rate_value()


def emit_trace(record_dict: dict) -> None:
    """Append one JSON trace record to the configured sink (JSONL)."""
    global _log_file
    line = json.dumps(record_dict, sort_keys=True)
    with _log_lock:
        if _log_file is None or _log_file.closed:
            path = _log_path if _log_path is not None else os.environ.get(TRACE_LOG_ENV_VAR, "").strip()
            if path:
                directory = os.path.dirname(os.path.abspath(path))
                os.makedirs(directory, exist_ok=True)
                _log_file = open(path, "a", encoding="utf-8")
            else:
                _log_file = sys.stderr
        _log_file.write(line + "\n")
        _log_file.flush()


# ---------------------------------------------------------------------- #
# Thread-local stage-timing collectors
# ---------------------------------------------------------------------- #
_tls = threading.local()


def push_collector(collector: dict, trace_id: str | None = None) -> None:
    """Activate ``collector`` for this thread; inner layers :func:`record` into it."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append((collector, trace_id))


def pop_collector() -> dict:
    """Deactivate (and return) the innermost collector."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        raise RuntimeError("no active trace collector to pop")
    return stack.pop()[0]


def active_collector() -> dict | None:
    stack = getattr(_tls, "stack", None)
    return stack[-1][0] if stack else None


def current_trace_id() -> str | None:
    """The trace id attached to the innermost active collector (if any)."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return None
    for collector, trace_id in reversed(stack):
        if trace_id is not None:
            return trace_id
    return None


def record(name: str, value_ms: float) -> None:
    """Accumulate ``value_ms`` under ``name`` in the active collector (no-op otherwise)."""
    stack = getattr(_tls, "stack", None)
    if not stack:
        return
    collector = stack[-1][0]
    collector[name] = collector.get(name, 0.0) + value_ms


@contextmanager
def collector_context(collector: dict, trace_id: str | None = None):
    """``with collector_context({...}, tid):`` — push/pop around a block."""
    push_collector(collector, trace_id)
    try:
        yield collector
    finally:
        pop_collector()


@contextmanager
def span(collector: dict, name: str):
    """Time a block into ``collector[name]`` (milliseconds, accumulating)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        collector[name] = collector.get(name, 0.0) + (time.perf_counter() - start) * 1e3
