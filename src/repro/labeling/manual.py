"""Simulated manual labeling.

The paper manually annotated all 4224 tiles to obtain ground truth for
validation and to train the U-Net-Man baseline.  With synthetic scenes the
exact class map is known, so "manual" labels are derived from it; to stay
faithful to how human annotation behaves, a controlled amount of annotation
imperfection can be injected:

* **boundary jitter** — annotators draw polygon boundaries that wobble a few
  pixels around the true class edges;
* **small-region omission** — tiny leads / floes below the annotator's
  attention scale are merged into their surrounding class.

Both effects are label-preserving in the large (overall accuracy of the
simulated manual labels against the true map stays in the high 90s, as one
expects from careful expert annotation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..classes import NUM_CLASSES

__all__ = ["ManualLabelSimulator", "simulate_manual_labels"]


@dataclass
class ManualLabelSimulator:
    """Derives human-like annotations from ground-truth class maps.

    Parameters
    ----------
    boundary_jitter:
        Standard deviation (pixels) of the smooth displacement field applied
        to class boundaries; 0 disables jitter and returns exact labels.
    min_region_size:
        Regions smaller than this many pixels are absorbed into their
        neighbourhood (annotators skip tiny features); 0 disables.
    seed:
        Seed of the simulator's random generator.
    """

    boundary_jitter: float = 1.0
    min_region_size: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.boundary_jitter < 0:
            raise ValueError("boundary_jitter must be >= 0")
        if self.min_region_size < 0:
            raise ValueError("min_region_size must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def annotate(self, class_map: np.ndarray) -> np.ndarray:
        """Return a simulated manual annotation of one ``(H, W)`` class map."""
        cmap = np.asarray(class_map)
        if cmap.ndim != 2:
            raise ValueError(f"expected 2-D class map, got shape {cmap.shape}")
        if cmap.min() < 0 or cmap.max() >= NUM_CLASSES:
            raise ValueError("class map contains unknown class ids")
        out = cmap.copy()

        if self.boundary_jitter > 0:
            out = self._jitter_boundaries(out)
        if self.min_region_size > 0:
            out = self._absorb_small_regions(out)
        return out.astype(np.uint8)

    def annotate_batch(self, class_maps: np.ndarray) -> np.ndarray:
        """Annotate a ``(N, H, W)`` stack of class maps."""
        stack = np.asarray(class_maps)
        if stack.ndim != 3:
            raise ValueError(f"expected (N, H, W) stack, got shape {stack.shape}")
        return np.stack([self.annotate(stack[i]) for i in range(stack.shape[0])])

    # ------------------------------------------------------------------ #
    def _jitter_boundaries(self, cmap: np.ndarray) -> np.ndarray:
        """Warp the label map with a smooth random displacement field."""
        h, w = cmap.shape
        sigma_field = max(4.0, min(h, w) / 16.0)
        dy = ndimage.gaussian_filter(self._rng.normal(0, 1, (h, w)), sigma_field)
        dx = ndimage.gaussian_filter(self._rng.normal(0, 1, (h, w)), sigma_field)
        for d in (dy, dx):
            peak = np.abs(d).max()
            if peak > 0:
                d *= self.boundary_jitter / peak
        rows, cols = np.mgrid[0:h, 0:w]
        src_r = np.clip(np.round(rows + dy), 0, h - 1).astype(np.intp)
        src_c = np.clip(np.round(cols + dx), 0, w - 1).astype(np.intp)
        return cmap[src_r, src_c]

    def _absorb_small_regions(self, cmap: np.ndarray) -> np.ndarray:
        """Replace connected regions below the size threshold with the local majority class."""
        out = cmap.copy()
        majority = int(np.bincount(cmap.ravel(), minlength=NUM_CLASSES).argmax())
        for cls in range(NUM_CLASSES):
            mask = out == cls
            labeled, num = ndimage.label(mask)
            if num == 0:
                continue
            sizes = ndimage.sum(mask, labeled, index=np.arange(1, num + 1))
            small = np.flatnonzero(sizes < self.min_region_size) + 1
            if small.size == 0:
                continue
            small_mask = np.isin(labeled, small)
            # Fill with the class of the dilated surroundings (approximated by
            # the dataset majority when the region touches nothing else).
            dilated = ndimage.grey_dilation(out, size=3)
            replacement = np.where(dilated[small_mask] != cls, dilated[small_mask], majority)
            out[small_mask] = replacement
        return out


def simulate_manual_labels(class_maps: np.ndarray, seed: int = 0, **kwargs) -> np.ndarray:
    """Convenience wrapper: simulate manual annotation of a label stack."""
    sim = ManualLabelSimulator(seed=seed, **kwargs)
    stack = np.asarray(class_maps)
    if stack.ndim == 2:
        return sim.annotate(stack)
    return sim.annotate_batch(stack)
