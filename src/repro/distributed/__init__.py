"""Distributed U-Net training: ring all-reduce, Horovod-like API, data parallelism, DGX model."""

from .allreduce import (
    AllReduceStats,
    PipeRingAllReducer,
    RingBroken,
    naive_allreduce,
    ring_allreduce,
)
from .data_parallel import DataParallelTrainer, ShardedBatches
from .elastic import ElasticTrainer, ElasticTrainingError, latest_checkpoints
from .horovod import DistributedOptimizer, WorkerGroup, broadcast_parameters
from .perfmodel import PAPER_TABLE3_ROWS, DGXTrainingModel, paper_table3

__all__ = [
    "AllReduceStats",
    "PipeRingAllReducer",
    "RingBroken",
    "naive_allreduce",
    "ring_allreduce",
    "DataParallelTrainer",
    "ShardedBatches",
    "ElasticTrainer",
    "ElasticTrainingError",
    "latest_checkpoints",
    "DistributedOptimizer",
    "WorkerGroup",
    "broadcast_parameters",
    "PAPER_TABLE3_ROWS",
    "DGXTrainingModel",
    "paper_table3",
]
