"""Streaming scene inference: classify scenes larger than memory.

:class:`~repro.unet.SceneClassifier` materialises the full tile stack, every
per-tile probability map and a scene-sized float64 blend accumulator at
once — fine for one 2048² scene, hopeless for a 40000-row Sentinel-2 strip.
:class:`StreamingSceneClassifier` produces the *same* classification (the
identical argmax map — the blend sums are accumulated in the same order, so
they are bit-identical) while holding only one tile-row band at a time:

* the scene is addressed through any row-sliceable object (``np.ndarray``,
  ``np.memmap``, an HDF5 dataset) and fetched one ``tile_size``-row slab at
  a time, with the reflect/edge padding of
  :func:`repro.imops.resize.split_into_tiles` reproduced locally from a few
  rows of context;
* each band is cut into the same overlapped tiles the whole-scene
  :class:`TileGrid` would produce and predicted in ``batch_size`` chunks
  through the shared seam (:func:`repro.unet.predict_batch_probabilities`),
  accumulating into a rolling ``tile_size``-row blend buffer instead of a
  scene-sized one;
* once no later tile can touch a row it is finalised (blend-normalised,
  argmax) and yielded, and the buffer slides down by one tile stride.

Peak working memory is therefore bounded by the scene *width* (times
``tile_size``), not its area; the measured high-water mark is exposed as
``peak_buffer_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..cloudshadow import CloudShadowFilter
from ..imops.resize import _pad_bottom_right, blend_window
from ..unet import CompiledUNet, InferenceConfig, UNet
from ..unet.inference import predict_batch_probabilities

__all__ = ["StreamingSceneClassifier"]


def _grid_axis(extent: int, tile: int, stride: int) -> int:
    """Tile count along one axis (same formula as :func:`split_into_tiles`)."""
    return 1 if extent <= tile else int(np.ceil((extent - tile) / stride)) + 1


@dataclass
class StreamingSceneClassifier:
    """Row-band streaming version of :class:`~repro.unet.SceneClassifier`.

    ``scene`` arguments only need ``.shape`` and integer row slicing
    (``scene[a:b]`` returning ``(b - a, W, 3)`` uint8 rows), so memory-mapped
    arrays stream straight from disk.
    """

    model: UNet
    config: InferenceConfig = field(default_factory=InferenceConfig)
    cloud_filter: CloudShadowFilter = field(default_factory=CloudShadowFilter)
    #: High-water mark of live per-band buffers during the last run (bytes).
    peak_buffer_bytes: int = field(default=0, init=False)
    _engine: CompiledUNet | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # One compiled engine for the whole stream: every band re-runs the
        # same (batch, tile, tile) shapes, so after the first band each
        # forward hits a warm arena-backed plan.
        if self.config.compile_plans and isinstance(self.model, UNet):
            self._engine = CompiledUNet(self.model, max_plans=self.config.plan_cache_size)

    # ------------------------------------------------------------------ #
    def iter_row_bands(self, scene) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(row_start, class_rows)`` in order; rows cover the scene exactly.

        ``class_rows`` is a finalised uint8 ``(n, W)`` block: one tile stride
        per overlapped band, a whole tile-row for disjoint grids, the
        remainder at the bottom edge.
        """
        shape = tuple(scene.shape)
        if len(shape) != 3 or shape[2] != 3:
            raise ValueError(f"expected a row-sliceable (H, W, 3) scene, got shape {shape}")
        h, w = int(shape[0]), int(shape[1])
        cfg = self.config
        t, overlap = cfg.tile_size, cfg.overlap
        stride = t - overlap
        rows_n = _grid_axis(h, t, stride)
        cols_n = _grid_axis(w, t, stride)
        padded_w = (cols_n - 1) * stride + t
        pad_w = padded_w - w
        filt = self.cloud_filter if cfg.apply_cloud_filter else None
        window = blend_window(t, overlap)[..., None] if overlap else None

        self.peak_buffer_bytes = 0
        acc: np.ndarray | None = None  # rolling (t, padded_w, K) blend accumulator
        wts: np.ndarray | None = None
        for r in range(rows_n):
            y0 = r * stride
            band = self._fetch_band(scene, y0, h, t, pad_w)
            band_peak = band.nbytes

            # Predict the band's tiles in batch-sized chunks, accumulating
            # (or stitching) as we go so at most one chunk of probability
            # maps is ever alive.
            emit_probs: np.ndarray | None = None  # disjoint path: (t, padded_w, K)
            for q0 in range(0, cols_n, cfg.batch_size):
                qs = range(q0, min(q0 + cfg.batch_size, cols_n))
                stack = np.stack([band[:, q * stride : q * stride + t] for q in qs])
                probs = predict_batch_probabilities(stack, self.model, filt, engine=self._engine)
                band_peak = max(band_peak, band.nbytes + stack.nbytes + probs.nbytes)
                k = probs.shape[1]
                if overlap:
                    if acc is None:
                        acc = np.zeros((t, padded_w, k), dtype=np.float64)
                        wts = np.zeros((t, padded_w, 1), dtype=np.float64)
                    for q, prob in zip(qs, probs):
                        x = q * stride
                        acc[:, x : x + t] += window * np.moveaxis(prob, 0, -1)
                        wts[:, x : x + t] += window
                else:
                    if emit_probs is None:
                        emit_probs = np.empty((t, padded_w, k), dtype=np.float32)
                    for q, prob in zip(qs, probs):
                        emit_probs[:, q * stride : q * stride + t] = np.moveaxis(prob, 0, -1)

            if overlap:
                band_peak += acc.nbytes + wts.nbytes
                last = r == rows_n - 1
                final_rows = (h - y0) if last else stride
                out = acc[:final_rows] / wts[:final_rows]
                yield y0, out.argmax(axis=-1).astype(np.uint8)[:, :w]
                if not last:
                    # Slide the accumulator down one stride: the top `overlap`
                    # rows of the next band were already part-accumulated.
                    acc[:overlap] = acc[stride:]
                    acc[overlap:] = 0.0
                    wts[:overlap] = wts[stride:]
                    wts[overlap:] = 0.0
            else:
                band_peak += emit_probs.nbytes
                final_rows = min(t, h - y0)
                yield y0, emit_probs[:final_rows].argmax(axis=-1).astype(np.uint8)[:, :w]
            self.peak_buffer_bytes = max(self.peak_buffer_bytes, band_peak)

    # ------------------------------------------------------------------ #
    def classify_scene(self, scene) -> np.ndarray:
        """Full uint8 class map, assembled from the streamed bands.

        Identical (bit-for-bit) to ``SceneClassifier.classify_scene`` with
        the same model and config — the streaming engine accumulates the
        blend sums in the same tile order.
        """
        h, w = int(scene.shape[0]), int(scene.shape[1])
        out = np.empty((h, w), dtype=np.uint8)
        return self.classify_to(scene, out)

    def classify_to(self, scene, out: np.ndarray) -> np.ndarray:
        """Stream the classification into a preallocated ``(H, W)`` uint8 array.

        Pass a ``np.memmap`` to keep the *output* off-heap too, making the
        whole pipeline larger-than-memory on both ends.
        """
        h, w = int(scene.shape[0]), int(scene.shape[1])
        if out.shape[:2] != (h, w):
            raise ValueError(f"output shape {out.shape} does not match scene rows {(h, w)}")
        for y0, rows in self.iter_row_bands(scene):
            out[y0 : y0 + rows.shape[0]] = rows
        return out

    # ------------------------------------------------------------------ #
    def _fetch_band(self, scene, y0: int, h: int, t: int, pad_w: int) -> np.ndarray:
        """Rows ``[y0, y0 + t)`` of the padded scene, fetched with just enough
        context that local reflect padding matches what padding the whole
        scene would have produced."""
        pad_h = max(0, y0 + t - h)
        # Reflect needs pad_h rows above the bottom edge; fetch back to there.
        a = min(y0, max(0, h - pad_h - 1))
        slab = np.asarray(scene[a : min(y0 + t, h)])
        if pad_h:
            slab = _pad_bottom_right(slab, pad_h, 0, "reflect")
        band = slab[y0 - a : y0 - a + t]
        if pad_w:
            band = _pad_bottom_right(band, 0, pad_w, "reflect")
        return np.ascontiguousarray(band)
