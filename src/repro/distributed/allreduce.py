"""Ring all-reduce (Patarasuk & Yuan 2009) — the algorithm behind Horovod.

Synchronous data-parallel training averages the gradient tensors of all
workers after every batch.  Horovod does this with a bandwidth-optimal ring
all-reduce: each of the ``p`` workers splits its buffer into ``p`` chunks;
during ``p - 1`` *reduce-scatter* steps every worker sends one chunk to its
right neighbour and accumulates the chunk arriving from its left neighbour,
after which each worker holds one fully reduced chunk; ``p - 1`` *all-gather*
steps then circulate the reduced chunks until every worker has the full
result.  Total traffic per worker is ``2 (p-1)/p`` of the buffer size,
independent of ``p`` — the property that makes it bandwidth optimal.

Two implementations are provided:

* :func:`ring_allreduce` — an in-process implementation that takes the
  per-worker buffers as a list of arrays and performs exactly the chunked
  ring schedule, additionally reporting the communication volume so the
  performance model can be fed with the real algorithmic cost;
* :class:`PipeRingAllReducer` — a real multi-process version in which worker
  processes connected by ``multiprocessing.Pipe`` rings exchange raw NumPy
  buffers, demonstrating the same schedule across OS processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
from dataclasses import dataclass

import numpy as np

from ..reliability import fault_point

__all__ = [
    "AllReduceStats",
    "RingBroken",
    "ring_allreduce",
    "naive_allreduce",
    "PipeRingAllReducer",
]


class RingBroken(RuntimeError):
    """A ring neighbour died or stalled past its deadline during all-reduce.

    ``rank`` identifies the worker that stopped responding — the caller can
    evict exactly that rank and rebuild the ring with the survivors.
    """

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"ring all-reduce broken at rank {rank}")
        self.rank = int(rank)


@dataclass
class AllReduceStats:
    """Accounting of one all-reduce invocation (used by the performance model)."""

    num_workers: int
    elements_per_worker: int
    communication_steps: int
    elements_sent_per_worker: int

    @property
    def traffic_fraction(self) -> float:
        """Per-worker traffic divided by buffer size (→ ``2 (p-1)/p`` for the ring)."""
        if self.elements_per_worker == 0:
            return 0.0
        return self.elements_sent_per_worker / self.elements_per_worker


def _check_buffers(buffers: list[np.ndarray]) -> list[np.ndarray]:
    if not buffers:
        raise ValueError("need at least one worker buffer")
    arrays = [np.asarray(b, dtype=np.float64) for b in buffers]
    shape = arrays[0].shape
    for a in arrays:
        if a.shape != shape:
            raise ValueError("all worker buffers must have the same shape")
    return arrays


def naive_allreduce(buffers: list[np.ndarray], average: bool = True) -> tuple[list[np.ndarray], AllReduceStats]:
    """Parameter-server-style all-reduce: gather everything to rank 0, then broadcast.

    Used as the correctness reference and as the baseline of the ablation
    bench (its per-worker traffic grows linearly with the worker count seen
    by the root, which is why Horovod avoids it).
    """
    arrays = _check_buffers(buffers)
    p = len(arrays)
    total = np.sum(arrays, axis=0)
    if average:
        total = total / p
    results = [total.copy() for _ in range(p)]
    stats = AllReduceStats(
        num_workers=p,
        elements_per_worker=int(arrays[0].size),
        communication_steps=2 * (p - 1),
        # Root receives (p-1) buffers and sends (p-1) buffers.
        elements_sent_per_worker=int(arrays[0].size) * (p - 1),
    )
    return results, stats


def ring_allreduce(buffers: list[np.ndarray], average: bool = True) -> tuple[list[np.ndarray], AllReduceStats]:
    """Bandwidth-optimal ring all-reduce over a list of equal-shaped arrays.

    Returns ``(reduced_buffers, stats)`` where every entry of
    ``reduced_buffers`` equals the element-wise sum (or mean) of the inputs.
    """
    arrays = _check_buffers(buffers)
    p = len(arrays)
    shape = arrays[0].shape
    size = arrays[0].size

    if p == 1:
        out = arrays[0].copy()
        return [out], AllReduceStats(1, int(size), 0, 0)

    # Work on flat copies; chunk boundaries follow np.array_split semantics.
    flats = [a.ravel().copy() for a in arrays]
    chunk_slices = []
    start = 0
    for chunk in np.array_split(np.arange(size), p):
        chunk_slices.append(slice(start, start + len(chunk)))
        start += len(chunk)

    elements_sent = 0

    # Phase 1: reduce-scatter.  At step s, worker r sends chunk (r - s) mod p
    # to worker (r + 1) mod p, which accumulates it.
    for step in range(p - 1):
        sends = []
        for rank in range(p):
            chunk_idx = (rank - step) % p
            sends.append((rank, chunk_idx, flats[rank][chunk_slices[chunk_idx]].copy()))
        for rank, chunk_idx, payload in sends:
            dest = (rank + 1) % p
            flats[dest][chunk_slices[chunk_idx]] += payload
            elements_sent += payload.size

    # Phase 2: all-gather.  Worker (r + 1) now owns the fully reduced chunk r;
    # circulate the reduced chunks around the ring.
    for step in range(p - 1):
        sends = []
        for rank in range(p):
            chunk_idx = (rank + 1 - step) % p
            sends.append((rank, chunk_idx, flats[rank][chunk_slices[chunk_idx]].copy()))
        for rank, chunk_idx, payload in sends:
            dest = (rank + 1) % p
            flats[dest][chunk_slices[chunk_idx]] = payload
            elements_sent += payload.size

    if average:
        for flat in flats:
            flat /= p

    results = [flat.reshape(shape) for flat in flats]
    stats = AllReduceStats(
        num_workers=p,
        elements_per_worker=int(size),
        communication_steps=2 * (p - 1),
        elements_sent_per_worker=int(round(elements_sent / p)),
    )
    return results, stats


# --------------------------------------------------------------------------- #
# Multi-process ring
# --------------------------------------------------------------------------- #
def _report_broken(result_queue, rank: int, left: int) -> None:
    result_queue.put(("broken", rank, left))
    # Flush before dying: Queue.put only hands the item to a feeder thread,
    # and a bare os._exit would kill it with the report still buffered.
    result_queue.close()
    result_queue.join_thread()
    os._exit(171)


def _ring_recv(recv_conn, rank: int, size: int, timeout_s: float, result_queue):
    """Receive from the left neighbour, or report the break and die.

    A dead or hung neighbour used to park this worker on a blocking
    ``recv`` forever; now a ``poll`` deadline (or the EOF of a closed pipe)
    converts the silence into a ``("broken", reporter, failed)`` message the
    parent turns into :class:`RingBroken`.
    """
    left = (rank - 1) % size
    try:
        if not recv_conn.poll(timeout_s):
            _report_broken(result_queue, rank, left)
        return recv_conn.recv()
    except (EOFError, OSError):
        _report_broken(result_queue, rank, left)


def _ring_worker(
    rank: int, size: int, recv_conn, send_conn, data: np.ndarray, result_queue,
    timeout_s: float,
) -> None:
    """Worker process body: runs the ring schedule over pipes."""
    fault_point("allreduce_stall")
    flat = np.asarray(data, dtype=np.float64).ravel().copy()
    n = flat.size
    slices = []
    start = 0
    for chunk in np.array_split(np.arange(n), size):
        slices.append(slice(start, start + len(chunk)))
        start += len(chunk)

    # Everyone sending before receiving deadlocks as soon as a chunk exceeds
    # the OS pipe capacity (~64 KB): the whole ring blocks in send() with
    # nobody draining.  Rank 0 receives first, which breaks the cyclic wait —
    # its neighbour's send completes, and the unblocking propagates around
    # the ring.  The sent and received chunks of one step are never the same
    # slice (indices differ by 1 mod p), so the reorder is trajectory-safe.
    recv_first = rank == 0

    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - 1 - step) % size
        if recv_first:
            incoming = _ring_recv(recv_conn, rank, size, timeout_s, result_queue)
            send_conn.send(flat[slices[send_idx]])
        else:
            send_conn.send(flat[slices[send_idx]])
            incoming = _ring_recv(recv_conn, rank, size, timeout_s, result_queue)
        flat[slices[recv_idx]] += incoming

    for step in range(size - 1):
        send_idx = (rank + 1 - step) % size
        recv_idx = (rank - step) % size
        if recv_first:
            incoming = _ring_recv(recv_conn, rank, size, timeout_s, result_queue)
            send_conn.send(flat[slices[send_idx]])
        else:
            send_conn.send(flat[slices[send_idx]])
            incoming = _ring_recv(recv_conn, rank, size, timeout_s, result_queue)
        flat[slices[recv_idx]] = incoming

    result_queue.put(("ok", rank, flat / size))


class PipeRingAllReducer:
    """Ring all-reduce across real OS processes connected by pipes.

    Intended for demonstrating and testing the schedule with genuine
    inter-process communication; the in-process :func:`ring_allreduce` is
    what the data-parallel trainer uses in its inner loop.
    """

    def __init__(
        self, num_workers: int, start_method: str | None = None, timeout_s: float = 60.0
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.timeout_s = float(timeout_s)
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)

    def allreduce(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Average the per-worker buffers; entry ``i`` is worker ``i``'s input.

        Raises :class:`RingBroken` (carrying the failing rank) instead of
        hanging when a worker dies or stalls past ``timeout_s``.
        """
        arrays = _check_buffers(buffers)
        if len(arrays) != self.num_workers:
            raise ValueError(f"expected {self.num_workers} buffers, got {len(arrays)}")
        p = self.num_workers
        if p == 1:
            return [arrays[0].copy()]

        # Pipe i connects sender i -> receiver (i+1) % p.
        pipes = [self._ctx.Pipe(duplex=False) for _ in range(p)]
        result_queue = self._ctx.Queue()
        workers = []
        for rank in range(p):
            recv_conn = pipes[(rank - 1) % p][0]
            send_conn = pipes[rank][1]
            proc = self._ctx.Process(
                target=_ring_worker,
                args=(rank, p, recv_conn, send_conn, arrays[rank], result_queue,
                      self.timeout_s),
            )
            proc.start()
            workers.append(proc)

        gathered: dict[int, np.ndarray] = {}
        try:
            for _ in range(p):
                try:
                    status, rank, payload = result_queue.get(timeout=self.timeout_s + 10.0)
                except queue.Empty:
                    dead = [r for r, proc in enumerate(workers)
                            if proc.exitcode not in (None, 0)]
                    raise RingBroken(
                        dead[0] if dead else 0,
                        f"no ring progress within {self.timeout_s + 10.0:.1f}s "
                        f"(dead ranks: {dead or 'none detected'})",
                    ) from None
                if status == "broken":
                    raise RingBroken(
                        payload, f"rank {rank} timed out waiting for rank {payload}"
                    )
                gathered[rank] = payload
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                proc.join()

        shape = arrays[0].shape
        return [gathered[rank].reshape(shape) for rank in range(p)]
