"""Loss functions: softmax + categorical cross-entropy for per-pixel classification."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "CategoricalCrossEntropy"]


def softmax(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Computed in float32: max-subtraction bounds the exponent, and the class
    axis is short, so float64 buys nothing while doubling the memory traffic
    of the training hot path.
    """
    z = np.asarray(logits, dtype=np.float32)
    z = z - z.max(axis=axis, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=axis, keepdims=True)
    return z


class CategoricalCrossEntropy:
    """Softmax cross-entropy over per-pixel class logits.

    ``forward(logits, targets)`` accepts ``(N, K, H, W)`` logits and either
    integer targets ``(N, H, W)`` or one-hot targets ``(N, K, H, W)``, and
    returns the mean loss over all pixels.  ``backward()`` returns
    ``dL/dlogits`` with the same shape as the logits (the softmax gradient is
    fused, as in every practical implementation).  The bulk tensors stay in
    float32; only the scalar loss reduction accumulates in float64.
    """

    def __init__(self, class_weights: np.ndarray | None = None) -> None:
        self.class_weights = None if class_weights is None else np.asarray(class_weights, dtype=np.float32)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ #
    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        if logits.ndim != 4:
            raise ValueError(f"expected (N, K, H, W) logits, got shape {logits.shape}")
        n, k, h, w = logits.shape

        targets = np.asarray(targets)
        if targets.ndim == 4:
            if targets.shape != logits.shape:
                raise ValueError("one-hot targets must match the logits shape")
            target_idx = targets.argmax(axis=1)
        elif targets.ndim == 3:
            if targets.shape != (n, h, w):
                raise ValueError(f"integer targets must have shape {(n, h, w)}, got {targets.shape}")
            target_idx = targets.astype(np.intp)
        else:
            raise ValueError("targets must be (N, H, W) integers or (N, K, H, W) one-hot")
        if target_idx.min() < 0 or target_idx.max() >= k:
            raise ValueError("target class ids outside [0, num_classes)")

        probs = softmax(logits, axis=1)
        picked = np.take_along_axis(probs, target_idx[:, None], axis=1)[:, 0]
        picked = np.clip(picked, 1e-12, 1.0)

        if self.class_weights is not None:
            if self.class_weights.shape != (k,):
                raise ValueError(f"class_weights must have shape ({k},)")
            weights = self.class_weights[target_idx]
            weight_sum = float(weights.sum(dtype=np.float64))
            loss = float(-(weights * np.log(picked)).sum(dtype=np.float64) / weight_sum)
        else:
            weights = None
            weight_sum = float(picked.size)
            loss = float(-np.log(picked).sum(dtype=np.float64) / weight_sum)

        self._cache = (probs, target_idx, weights, weight_sum)
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_idx, weights, weight_sum = self._cache

        idx = target_idx[:, None]
        if weights is None:
            grad = probs * np.float32(1.0 / weight_sum)
            picked = np.take_along_axis(grad, idx, axis=1)
            np.put_along_axis(grad, idx, picked - np.float32(1.0 / weight_sum), axis=1)
        else:
            scale = weights * np.float32(1.0 / weight_sum)  # (N, H, W)
            grad = probs * scale[:, None]
            picked = np.take_along_axis(grad, idx, axis=1)
            np.put_along_axis(grad, idx, picked - scale[:, None], axis=1)
        return grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
