"""Forward-parity and integration tests of the compiled U-Net inference plans.

The compiled runtime must reproduce ``UNet.predict_proba`` exactly (it runs
the same offset-GEMM convolutions over the same values, just into a
preallocated arena), across depths, tile sizes and batch sizes — and slot
transparently into every consumer of the shared prediction seam.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import MicroBatcher
from repro.unet import (
    CompiledUNet,
    InferenceConfig,
    SceneClassifier,
    UNet,
    UNetConfig,
    compile_unet_plan,
)
from repro.unet.inference import predict_batch_probabilities


def _model(depth: int, seed: int = 0, dropout: float = 0.2) -> UNet:
    return UNet(UNetConfig(depth=depth, base_channels=4, dropout=dropout, seed=seed))


class TestForwardParity:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("size", [8, 24, 40])
    @pytest.mark.parametrize("batch", [1, 8])
    def test_matches_eval_forward(self, depth, size, batch, rng):
        model = _model(depth, seed=depth)
        x = rng.random((batch, 3, size, size), dtype=np.float32)
        ref = model.predict_proba(x)
        out = compile_unet_plan(model, x.shape).run(x)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)
        np.testing.assert_array_equal(out.argmax(axis=1), ref.argmax(axis=1))

    def test_plan_is_stateless_across_runs(self, rng):
        model = _model(2)
        plan = compile_unet_plan(model, (2, 3, 16, 16))
        x1 = rng.random((2, 3, 16, 16), dtype=np.float32)
        x2 = rng.random((2, 3, 16, 16), dtype=np.float32)
        first = plan.run(x1)
        plan.run(x2)
        again = plan.run(x1)
        np.testing.assert_array_equal(first, again)

    def test_non_contiguous_input(self, rng):
        # image_to_tensor hands the seam a transposed (non-contiguous) view.
        model = _model(2)
        nhwc = rng.random((2, 16, 16, 3), dtype=np.float32)
        x = np.transpose(nhwc, (0, 3, 1, 2))
        assert not x.flags.c_contiguous
        ref = model.predict_proba(x)
        out = compile_unet_plan(model, x.shape).run(x)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)

    def test_shape_mismatch_raises(self, rng):
        model = _model(1)
        plan = compile_unet_plan(model, (1, 3, 8, 8))
        with pytest.raises(ValueError, match="compiled for input"):
            plan.run(rng.random((2, 3, 8, 8), dtype=np.float32))

    def test_compile_validates_input_shape(self):
        model = _model(2)
        with pytest.raises(ValueError, match="divisible"):
            compile_unet_plan(model, (1, 3, 10, 10))
        with pytest.raises(ValueError, match="channels"):
            compile_unet_plan(model, (1, 4, 16, 16))
        with pytest.raises(TypeError, match="requires a UNet"):
            compile_unet_plan(object(), (1, 3, 16, 16))  # type: ignore[arg-type]

    def test_plans_snapshot_weights(self, rng):
        """A compiled plan keeps serving the weights *and biases* it was
        compiled from (an in-place optimizer step must not half-apply)."""
        model = _model(1, dropout=0.0)
        x = rng.random((1, 3, 8, 8), dtype=np.float32)
        engine = CompiledUNet(model)
        before = engine.predict_proba(x)
        model.head.weight.value += 1.0
        model.head.bias.value += 1.0  # in-place, like Adam.step
        stale = engine.predict_proba(x)
        np.testing.assert_array_equal(stale, before)  # snapshot, not live weights
        engine.clear()
        fresh = engine.predict_proba(x)
        np.testing.assert_allclose(fresh, model.predict_proba(x), rtol=0, atol=1e-6)
        assert not np.array_equal(fresh, before)


class TestCompiledUNetCache:
    def test_shapes_compile_once_and_evict_lru(self, rng):
        model = _model(1, dropout=0.0)
        engine = CompiledUNet(model, max_plans=2)
        for n in (1, 2, 1, 4):  # third call hits the (1, ...) plan
            engine.predict_proba(rng.random((n, 3, 8, 8), dtype=np.float32))
        info = engine.cache_info()
        assert info["plans"] == 2
        assert info["misses"] == 3 and info["hits"] == 1 and info["evictions"] == 1
        assert info["arena_bytes"] > 0

    def test_arena_is_reused_not_regrown(self, rng):
        model = _model(2, dropout=0.0)
        plan = compile_unet_plan(model, (1, 3, 16, 16))
        nbytes = plan.arena_nbytes
        for _ in range(3):
            plan.run(rng.random((1, 3, 16, 16), dtype=np.float32))
        assert plan.arena_nbytes == nbytes


class TestSeamIntegration:
    def test_predict_batch_probabilities_engine_parity(self, rng):
        model = _model(2, dropout=0.0)
        engine = CompiledUNet(model)
        batch = rng.integers(0, 255, size=(3, 16, 16, 3), dtype=np.uint8)
        ref = predict_batch_probabilities(batch, model, None)
        out = predict_batch_probabilities(batch, model, None, engine=engine)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)

    def test_engine_handles_padded_odd_tiles(self, rng):
        # 30x30 is not divisible by the depth-2 input multiple: the seam
        # reflect-pads to 32 and crops back; the compiled plan must agree.
        model = _model(2, dropout=0.0)
        engine = CompiledUNet(model)
        batch = rng.integers(0, 255, size=(2, 30, 30, 3), dtype=np.uint8)
        ref = predict_batch_probabilities(batch, model, None)
        out = predict_batch_probabilities(batch, model, None, engine=engine)
        assert out.shape == ref.shape == (2, model.config.num_classes, 30, 30)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-6)

    def test_scene_classifier_compiled_matches_uncompiled(self, rng):
        model = _model(2, dropout=0.0)
        scene = rng.integers(0, 255, size=(48, 64, 3), dtype=np.uint8)
        kwargs = dict(tile_size=16, overlap=4, apply_cloud_filter=False, batch_size=4)
        compiled = SceneClassifier(model=model, config=InferenceConfig(compile_plans=True, **kwargs))
        plain = SceneClassifier(model=model, config=InferenceConfig(compile_plans=False, **kwargs))
        assert compiled.engine is not None and plain.engine is None
        np.testing.assert_allclose(
            compiled.classify_scene_proba(scene), plain.classify_scene_proba(scene), rtol=0, atol=1e-6
        )
        info = compiled.plan_cache_info()
        assert info is not None and info["misses"] >= 1
        assert plain.plan_cache_info() is None

    def test_warm_plans_precompiles_serving_shape(self):
        model = _model(2, dropout=0.0)
        classifier = SceneClassifier(
            model=model, config=InferenceConfig(tile_size=30, apply_cloud_filter=False)
        )
        classifier.warm_plans(batch_sizes=(1, 4))
        info = classifier.plan_cache_info()
        # tile 30 rounds up to the model's input multiple (32).
        assert info["plans"] == 2 and info["misses"] == 2

    def test_invalidate_plans_after_weight_change(self, rng):
        model = _model(1, dropout=0.0)
        classifier = SceneClassifier(
            model=model, config=InferenceConfig(tile_size=8, apply_cloud_filter=False)
        )
        tiles = rng.integers(0, 255, size=(2, 8, 8, 3), dtype=np.uint8)
        classifier.classify_tiles(tiles)
        model.head.weight.value += 0.5
        classifier.invalidate_plans()
        ref = SceneClassifier(
            model=model, config=InferenceConfig(tile_size=8, apply_cloud_filter=False, compile_plans=False)
        )
        np.testing.assert_array_equal(classifier.classify_tiles(tiles), ref.classify_tiles(tiles))

    def test_config_roundtrip_with_plan_knobs(self):
        config = InferenceConfig(compile_plans=False, plan_cache_size=3)
        restored = InferenceConfig.from_dict(config.to_dict())
        assert restored == config
        assert InferenceConfig.from_dict({"compile_plans": 1}).compile_plans is True
        with pytest.raises(ValueError, match="plan_cache_size"):
            InferenceConfig(plan_cache_size=0)


class TestMicroBatcherConcurrency:
    def test_concurrent_mixed_shapes_through_shared_engine(self, rng):
        """Many threads hammering one engine-backed batcher must each get the
        map direct prediction would produce (plans are lock-protected)."""
        model = _model(2, dropout=0.0)
        engine = CompiledUNet(model, max_plans=4)

        def predict_fn(stack: np.ndarray) -> np.ndarray:
            return predict_batch_probabilities(stack, model, None, engine=engine)

        tiles = [
            rng.integers(0, 255, size=(16 if i % 2 else 24, 16 if i % 2 else 24, 3), dtype=np.uint8)
            for i in range(24)
        ]
        results: list = [None] * len(tiles)
        with MicroBatcher(predict_fn, max_batch=6, max_delay_s=0.002) as batcher:
            def worker(index: int) -> None:
                results[index] = batcher.predict(tiles[index], timeout=30.0)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(tiles))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        for tile, probs in zip(tiles, results):
            expected = predict_batch_probabilities(tile[None], model, None)[0]
            np.testing.assert_allclose(probs, expected, rtol=0, atol=1e-6)
