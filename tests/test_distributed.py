"""Tests for repro.distributed (all-reduce, Horovod API, data parallelism, DGX model)."""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BatchLoader
from repro.distributed import (
    DGXTrainingModel,
    DataParallelTrainer,
    DistributedOptimizer,
    ElasticTrainer,
    PipeRingAllReducer,
    RingBroken,
    ShardedBatches,
    WorkerGroup,
    broadcast_parameters,
    latest_checkpoints,
    naive_allreduce,
    paper_table3,
    ring_allreduce,
)
from repro.nn import SGD
from repro.reliability import FaultSpec, configure_faults, reset_faults
from repro.unet import UNet, UNetConfig, UNetTrainer

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="fork start method unavailable"
)

#: Tiny elastic-trainer config shared by the elastic tests below.
ELASTIC_CONFIG = UNetConfig(depth=2, base_channels=4, dropout=0.2, seed=7)


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    reset_faults()


class TestRingAllReduce:
    def test_matches_mean(self):
        rng = np.random.default_rng(0)
        buffers = [rng.normal(size=(33,)) for _ in range(4)]
        reduced, _ = ring_allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in reduced:
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_sum_mode(self):
        buffers = [np.ones(5), 2 * np.ones(5)]
        reduced, _ = ring_allreduce(buffers, average=False)
        np.testing.assert_allclose(reduced[0], 3.0)

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(1)
        buffers = [rng.normal(size=(4, 7)) for _ in range(5)]
        ring, _ = ring_allreduce(buffers)
        naive, _ = naive_allreduce(buffers)
        np.testing.assert_allclose(ring[2], naive[2], rtol=1e-10)

    def test_single_worker(self):
        reduced, stats = ring_allreduce([np.arange(5.0)])
        np.testing.assert_array_equal(reduced[0], np.arange(5.0))
        assert stats.communication_steps == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 7), st.integers(1, 40))
    def test_property_any_worker_count_and_size(self, workers, size):
        rng = np.random.default_rng(workers * 100 + size)
        buffers = [rng.normal(size=(size,)) for _ in range(workers)]
        reduced, stats = ring_allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in reduced:
            np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-12)
        assert stats.communication_steps == 2 * (workers - 1)

    def test_bandwidth_optimality_traffic(self):
        """Per-worker traffic approaches 2(p-1)/p of the buffer — the ring's defining property."""
        buffers = [np.ones(1000) for _ in range(8)]
        _, ring_stats = ring_allreduce(buffers)
        assert ring_stats.traffic_fraction == pytest.approx(2 * 7 / 8, rel=0.05)
        _, naive_stats = naive_allreduce(buffers)
        # The centralised scheme moves ~p times the buffer through the root.
        assert naive_stats.elements_sent_per_worker > ring_stats.elements_sent_per_worker * 3

    def test_preserves_shape(self):
        buffers = [np.ones((3, 4, 5)) for _ in range(3)]
        reduced, _ = ring_allreduce(buffers)
        assert reduced[0].shape == (3, 4, 5)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.ones(3), np.ones(4)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    def test_pipe_ring_across_processes(self):
        rng = np.random.default_rng(5)
        buffers = [rng.normal(size=(17,)) for _ in range(3)]
        results = PipeRingAllReducer(3).allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in results:
            np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_pipe_ring_validates_count(self):
        with pytest.raises(ValueError):
            PipeRingAllReducer(2).allreduce([np.ones(3)])

    def test_pipe_ring_large_buffers_do_not_deadlock(self):
        """Chunks bigger than the OS pipe capacity used to wedge every worker
        in send(); the rank-0 recv-first schedule must keep the ring moving."""
        rng = np.random.default_rng(6)
        buffers = [rng.normal(size=(150_000,)) for _ in range(3)]
        results = PipeRingAllReducer(3, timeout_s=30.0).allreduce(buffers)
        expected = np.mean(buffers, axis=0)
        for out in results:
            np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_ring_broken_carries_rank(self):
        err = RingBroken(2)
        assert err.rank == 2
        assert "rank 2" in str(err)
        assert isinstance(err, RuntimeError)

    @fork_only
    def test_pipe_ring_stall_raises_ring_broken(self):
        """A stalled worker must surface as RingBroken (with the failing rank)
        within the deadline — the pre-fix behaviour was an indefinite hang on
        the neighbour's blocking recv."""
        configure_faults({"allreduce_stall": FaultSpec(times=1, param=600.0)})
        reducer = PipeRingAllReducer(3, start_method="fork", timeout_s=1.5)
        buffers = [np.ones(8) * r for r in range(3)]
        with pytest.raises(RingBroken) as excinfo:
            reducer.allreduce(buffers)
        assert excinfo.value.rank in range(3)


class TestHorovodAPI:
    def test_worker_group_init(self):
        group = WorkerGroup.init(4)
        assert group.size == 4
        assert list(group.ranks()) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            WorkerGroup.init(0)

    def test_allreduce_gradients_averages_lists(self):
        group = WorkerGroup.init(3)
        shapes = [(2, 3), (4,)]
        rng = np.random.default_rng(0)
        per_worker = [[rng.normal(size=s) for s in shapes] for _ in range(3)]
        averaged = group.allreduce_gradients(per_worker)
        for i, s in enumerate(shapes):
            expected = np.mean([per_worker[r][i] for r in range(3)], axis=0)
            np.testing.assert_allclose(averaged[i], expected, rtol=1e-5)
        assert group.last_stats is not None

    def test_allreduce_gradients_validates(self):
        group = WorkerGroup.init(2)
        with pytest.raises(ValueError):
            group.allreduce_gradients([[np.zeros(2)]])
        with pytest.raises(ValueError):
            group.allreduce_gradients([[np.zeros(2)], [np.zeros(2), np.zeros(3)]])

    def test_distributed_optimizer_applies_average(self):
        model = UNet(UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=0))
        group = WorkerGroup.init(2)
        opt = DistributedOptimizer(SGD(model.parameters(), lr=1.0), group)
        before = [p.value.copy() for p in model.parameters()]
        grads_a = [np.ones_like(p.value) for p in model.parameters()]
        grads_b = [3 * np.ones_like(p.value) for p in model.parameters()]
        opt.step([grads_a, grads_b])
        for b, p in zip(before, model.parameters()):
            np.testing.assert_allclose(p.value, b - 2.0, rtol=1e-5)  # mean grad = 2, lr = 1

    def test_broadcast_parameters(self):
        src = UNet(UNetConfig(depth=1, base_channels=2, seed=1))
        dst = UNet(UNetConfig(depth=1, base_channels=2, seed=9))
        broadcast_parameters(src, [dst])
        for a, b in zip(src.parameters(), dst.parameters()):
            np.testing.assert_array_equal(a.value, b.value)

    def test_worker_group_resize(self):
        group = WorkerGroup.init(4)
        group.resize(4)  # same size: no-op, not a rebuild
        assert group.size == 4 and group.resizes == 0
        group.resize(2)
        assert group.size == 2 and group.resizes == 1
        group.resize(6)
        assert group.size == 6 and group.resizes == 2
        with pytest.raises(ValueError):
            group.resize(0)


class TestDataParallelTrainer:
    def test_sharding(self):
        sharder = ShardedBatches(2)
        x = np.zeros((5, 3, 8, 8), dtype=np.float32)
        y = np.zeros((5, 8, 8), dtype=np.int64)
        shards = sharder.shard(x, y)
        assert len(shards) == 2
        assert shards[0][0].shape[0] == 2  # 5 // 2
        assert sharder.shard(x[:1], y[:1]) is None

    def test_distributed_equals_serial_training(self, tiny_split):
        """Synchronous data parallelism with ring all-reduce must match single-worker
        training on the same global batches (the correctness claim behind Horovod)."""
        train, _ = tiny_split
        config = UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=7)

        serial_trainer = UNetTrainer(model=UNet(config), optimizer=None, learning_rate=1e-2)
        serial_trainer.optimizer = SGD(serial_trainer.model.parameters(), lr=1e-2)
        loader_a = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        serial_trainer.fit(loader_a, epochs=1)

        parallel = DataParallelTrainer(num_workers=2, config=config, learning_rate=1e-2)
        parallel.optimizer = DistributedOptimizer(SGD(parallel.master.parameters(), lr=1e-2), parallel.group)
        loader_b = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        parallel.fit(loader_b, epochs=1)

        for (name_a, pa), (name_b, pb) in zip(
            serial_trainer.model.named_parameters().items(), parallel.master.named_parameters().items()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(pa.value, pb.value, atol=2e-4)

    def test_replicas_stay_synchronised(self, tiny_split):
        train, _ = tiny_split
        trainer = DataParallelTrainer(
            num_workers=2,
            config=UNetConfig(depth=2, base_channels=4, dropout=0.0, seed=3),
            keep_replicas=True,
        )
        loader = BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True)
        trainer.fit(loader, epochs=1)
        assert trainer.replicas_synchronised()

    def test_skips_too_small_batches(self):
        trainer = DataParallelTrainer(num_workers=4, config=UNetConfig(depth=1, base_channels=2, seed=0))
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        y = np.zeros((2, 16, 16), dtype=np.int64)
        assert trainer.train_step(x, y) is None

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(num_workers=0)

    def test_resize_workers_preserves_master(self):
        trainer = DataParallelTrainer(
            num_workers=4, config=UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=5)
        )
        before = [p.value.copy() for p in trainer.master.parameters()]
        trainer.resize_workers(2)
        assert trainer.num_workers == 2
        assert trainer.group.size == 2 and trainer.group.resizes == 1
        for b, p in zip(before, trainer.master.parameters()):
            np.testing.assert_array_equal(b, p.value)
        # A batch too small for 4 workers now trains on 2.
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        y = np.zeros((2, 16, 16), dtype=np.int64)
        assert trainer.train_step(x, y) is not None
        with pytest.raises(ValueError):
            trainer.resize_workers(0)

    def test_checkpoint_roundtrip_with_extra_state(self, tmp_path):
        config = UNetConfig(depth=1, base_channels=2, dropout=0.0, seed=5)
        trainer = DataParallelTrainer(num_workers=2, config=config)
        x = np.zeros((4, 3, 16, 16), dtype=np.float32)
        y = np.zeros((4, 16, 16), dtype=np.int64)
        trainer.train_step(x, y)
        path = trainer.save_checkpoint(tmp_path / "ckpt", extra_state={"epoch": 3})
        restored = DataParallelTrainer(num_workers=2, config=config, keep_replicas=True)
        assert restored.load_checkpoint(path) == {"epoch": 3}
        for a, b in zip(trainer.master.parameters(), restored.master.parameters()):
            np.testing.assert_array_equal(a.value, b.value)
        assert restored.replicas_synchronised()


class TestDGXModel:
    def test_default_calibration_matches_paper(self):
        model = DGXTrainingModel()
        assert model.relative_error_vs_paper() < 0.05
        row8 = model.predict_row(8)
        assert row8["speedup"] == pytest.approx(7.21, abs=0.3)

    def test_monotone_speedup_and_throughput(self):
        model = DGXTrainingModel()
        rows = model.sweep()
        speedups = [r["speedup"] for r in rows]
        throughputs = [r["images_per_s"] for r in rows]
        assert speedups == sorted(speedups)
        assert throughputs == sorted(throughputs)

    def test_efficiency_degrades_with_gpus(self):
        """The paper observes GPU starvation from the input pipeline at high GPU counts."""
        model = DGXTrainingModel()
        eff = [model.speedup(g) / g for g in (1, 2, 4, 8)]
        assert eff[0] == pytest.approx(1.0)
        assert eff[-1] < eff[1]

    def test_paper_table3_shape(self):
        rows = paper_table3()
        assert len(rows) == 5
        assert rows[-1]["speedup"] == 7.21

    def test_allreduce_cost_grows_then_saturates(self):
        model = DGXTrainingModel()
        assert model.allreduce_time_per_step(1) == 0.0
        assert model.allreduce_time_per_step(8) > model.allreduce_time_per_step(2)

    def test_calibrated_from_measurement(self):
        model = DGXTrainingModel.calibrated_from_measurement(
            measured_epoch_time=10.0, images_per_epoch=100, model_parameters=10_000
        )
        assert model.epoch_time(1) == pytest.approx(10.0, rel=0.05)
        assert model.speedup(4) > 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DGXTrainingModel(images_per_epoch=0)
        with pytest.raises(ValueError):
            DGXTrainingModel().epoch_time(0)
        with pytest.raises(ValueError):
            DGXTrainingModel.calibrated_from_measurement(0.0, 10, 10)


# --------------------------------------------------------------------------- #
# Elastic fault-tolerant trainer
# --------------------------------------------------------------------------- #
def _elastic_loader(split, seed: int = 5) -> BatchLoader:
    train, _ = split
    return BatchLoader(train.images, train.labels, batch_size=4,
                       shuffle=True, augment=True, seed=seed)


class TestLoaderRngState:
    def test_rng_state_roundtrip_replays_exact_batches(self, tiny_split):
        loader = _elastic_loader(tiny_split)
        state = loader.rng_state()
        first = [(x.copy(), y.copy()) for x, y in loader]
        loader.set_rng_state(state)
        second = [(x.copy(), y.copy()) for x, y in loader]
        assert len(first) == len(second) > 0
        for (xa, ya), (xb, yb) in zip(first, second):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_rng_state_is_json_serialisable(self, tiny_split):
        import json

        loader = _elastic_loader(tiny_split)
        encoded = json.loads(json.dumps(loader.rng_state()))
        loader.set_rng_state(encoded)
        assert len(list(loader)) > 0


@fork_only
class TestElasticTrainer:
    def test_bit_identical_across_worker_counts(self, tiny_split):
        """The left-fold over a fixed micro-shard count must make the
        trajectory independent of the fleet size — the property that makes
        elastic shrink/grow trajectory-preserving."""
        results = {}
        for workers in (1, 3):
            loader = _elastic_loader(tiny_split)
            with ElasticTrainer(num_workers=workers, config=ELASTIC_CONFIG,
                                micro_shards=4, seed=0, step_timeout_s=30.0) as trainer:
                history = trainer.fit(loader, epochs=2)
                results[workers] = (list(history.losses), trainer.weights_digest())
        assert results[1][0] == results[3][0]
        assert results[1][1] == results[3][1]

    def test_checkpoint_resume_bit_identical(self, tiny_split, tmp_path):
        """SIGKILL-and-resume semantics: a fresh trainer resuming from the
        newest checkpoint must reproduce the uninterrupted run bit-for-bit
        (losses and weights), including the loader's shuffle/augment draws."""
        loader = _elastic_loader(tiny_split)
        with ElasticTrainer(num_workers=2, config=ELASTIC_CONFIG, micro_shards=4,
                            seed=0, step_timeout_s=30.0) as trainer:
            reference = trainer.fit(loader, epochs=3)
            ref_losses = list(reference.losses)
            ref_digest = trainer.weights_digest()

        loader = _elastic_loader(tiny_split)
        with ElasticTrainer(num_workers=2, config=ELASTIC_CONFIG, micro_shards=4,
                            seed=0, step_timeout_s=30.0,
                            checkpoint_dir=tmp_path, checkpoint_every=1) as trainer:
            trainer.fit(loader, epochs=1)
        assert latest_checkpoints(tmp_path)

        loader = _elastic_loader(tiny_split)  # fresh process-equivalent state
        with ElasticTrainer(num_workers=2, config=ELASTIC_CONFIG, micro_shards=4,
                            seed=0, step_timeout_s=30.0,
                            checkpoint_dir=tmp_path, checkpoint_every=1) as trainer:
            resumed = trainer.fit(loader, epochs=3, resume=True)
            assert trainer.resumes == 1
            assert list(resumed.losses) == ref_losses
            assert trainer.weights_digest() == ref_digest

    def test_resume_without_checkpoints_starts_fresh(self, tiny_split, tmp_path):
        loader = _elastic_loader(tiny_split)
        with ElasticTrainer(num_workers=1, config=ELASTIC_CONFIG, micro_shards=2,
                            seed=0, checkpoint_dir=tmp_path) as trainer:
            history = trainer.fit(loader, epochs=1, resume=True)
            assert trainer.resumes == 0
            assert len(history.losses) == 1

    def test_keep_checkpoints_prunes_old_archives(self, tiny_split, tmp_path):
        loader = _elastic_loader(tiny_split)
        with ElasticTrainer(num_workers=1, config=ELASTIC_CONFIG, micro_shards=2,
                            seed=0, checkpoint_dir=tmp_path, checkpoint_every=1,
                            keep_checkpoints=2) as trainer:
            trainer.fit(loader, epochs=3)
        assert len(latest_checkpoints(tmp_path)) == 2

    def test_stats_surface(self, tiny_split):
        loader = _elastic_loader(tiny_split)
        with ElasticTrainer(num_workers=2, config=ELASTIC_CONFIG, micro_shards=2,
                            seed=0) as trainer:
            trainer.fit(loader, epochs=1)
            stats = trainer.stats()
            assert stats["global_step"] >= 1
            assert stats["live_workers"] == stats["target_workers"] == 2
            assert stats["ring_rebuilds"] == 0 and stats["resumes"] == 0
            assert len(stats["weights_digest"]) == 64
            assert trainer.ping()  # every worker answers the heartbeat

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticTrainer(num_workers=0)
        with pytest.raises(ValueError):
            ElasticTrainer(num_workers=2, micro_shards=0)
        with pytest.raises(ValueError):
            ElasticTrainer(num_workers=2, start_method="spawn")


class TestLatestCheckpoints:
    def test_orders_newest_first_and_ignores_strangers(self, tmp_path):
        for name in ("ckpt-00000002.npz", "ckpt-00000010.npz", "ckpt-00000001.npz",
                     "weights.npz", "ckpt-123.npz", "notes.txt"):
            (tmp_path / name).write_bytes(b"x")
        found = latest_checkpoints(tmp_path)
        assert [os.path.basename(p) for p in found] == [
            "ckpt-00000010.npz", "ckpt-00000002.npz", "ckpt-00000001.npz"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert latest_checkpoints(tmp_path / "nope") == []
