"""2-D convolution layers (offset-GEMM engine with an im2col reference path)."""

from __future__ import annotations

import numpy as np

from .im2col import (
    col2im,
    conv_backward_offset,
    conv_forward_offset,
    conv_output_size,
    im2col,
    pad_input,
)
from .initializers import he_normal, zeros
from .module import Module, Parameter

__all__ = ["Conv2D"]


class Conv2D(Module):
    """2-D convolution over ``(N, C, H, W)`` batches.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the input and output feature maps.
    kernel_size:
        Square kernel side (the paper's U-Net uses 3×3, 2×2 and 1×1 kernels).
    stride:
        Spatial stride.
    padding:
        Symmetric zero padding; ``"same"`` picks ``kernel_size // 2`` so the
        spatial size is preserved for odd kernels at stride 1 (the paper's
        U-Net keeps tile size constant through each stage).
    use_bias:
        Add a per-output-channel bias.
    seed:
        Seed of the weight initialisation.
    engine:
        ``"offset"`` (default) trains through the offset-sliced GEMM path,
        which caches only the padded input — ~``k²`` fewer bytes pinned per
        layer than ``"im2col"``, the seed implementation retained as the
        reference for gradient-parity tests.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: "int | str" = "same",
        use_bias: bool = True,
        seed: int = 0,
        engine: str = "offset",
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be >= 1")
        if kernel_size < 1 or stride < 1:
            raise ValueError("kernel_size and stride must be >= 1")
        if isinstance(padding, str):
            if padding != "same":
                raise ValueError("string padding must be 'same'")
            padding = kernel_size // 2
        if padding < 0:
            raise ValueError("padding must be >= 0")
        if engine not in ("offset", "im2col"):
            raise ValueError("engine must be 'offset' or 'im2col'")

        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = int(padding)
        self.use_bias = use_bias
        self.engine = engine

        rng = np.random.default_rng(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(he_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        if use_bias:
            self.bias = Parameter(zeros((out_channels,)))

        self._cache: tuple | None = None

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W) input, got shape {x.shape}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = conv_output_size(h, k, s, p)
        out_w = conv_output_size(w, k, s, p)
        bias = self.bias.value if self.use_bias else None

        if not self.training:
            self._cache = None
            return conv_forward_offset(pad_input(x, p), self.weight.value, bias, s, out_h, out_w)

        if self.engine == "im2col":
            cols = im2col(x, k, k, s, p)  # (N*out_h*out_w, C*k*k)
            w_mat = self.weight.value.reshape(self.out_channels, -1)  # (F, C*k*k)
            out = cols @ w_mat.T  # (N*out_h*out_w, F)
            if self.use_bias:
                out += self.bias.value
            out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
            self._cache = ("im2col", x.shape, cols)
            return np.ascontiguousarray(out)

        # Fast path: only the padded input survives the forward — dW and dX
        # are recomputed from it per kernel offset during backward, so the
        # k²-inflated unrolled matrix is never pinned across the step.
        xp = pad_input(x, p)
        self._cache = ("offset", x.shape, xp)
        return conv_forward_offset(xp, self.weight.value, bias, s, out_h, out_w)

    def backward(self, grad_output: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        """Accumulate parameter gradients and return ``dL/dinput``.

        ``need_input_grad=False`` skips the input-gradient contraction
        entirely (a third of the backward cost) — used for the first layer of
        a network, whose input gradient nobody consumes.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        kind, input_shape, cached = self._cache
        k, s, p = self.kernel_size, self.stride, self.padding
        grad = np.asarray(grad_output, dtype=np.float32)

        if kind == "offset":
            dxp, dw, db = conv_backward_offset(
                cached, self.weight.value, grad, s,
                need_input_grad=need_input_grad, need_bias_grad=self.use_bias,
            )
            self.weight.grad += dw
            if self.use_bias:
                self.bias.grad += db
            if dxp is None:
                return None
            return dxp[:, :, p:-p, p:-p] if p > 0 else dxp

        # (N, F, out_h, out_w) -> (N*out_h*out_w, F)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ cached).reshape(self.weight.value.shape)
        if self.use_bias:
            self.bias.grad += grad_mat.sum(axis=0)

        if not need_input_grad:
            return None
        grad_cols = grad_mat @ w_mat  # (N*out_h*out_w, C*k*k)
        return col2im(grad_cols, input_shape, k, k, s, p)
