"""Smoothing and noise-reduction filters (NumPy / SciPy implementations).

The cloud/shadow filter uses Gaussian blurring for veil estimation and
median filtering for speckle-noise suppression, mirroring the OpenCV calls
(``GaussianBlur``, ``medianBlur``, ``blur``) the paper relies on.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "gaussian_kernel1d",
    "gaussian_blur",
    "box_filter",
    "median_blur",
    "bilateral_filter",
]


def gaussian_kernel1d(ksize: int, sigma: float | None = None) -> np.ndarray:
    """Return a normalised 1-D Gaussian kernel of length ``ksize``.

    When ``sigma`` is ``None`` the OpenCV heuristic
    ``sigma = 0.3 * ((ksize - 1) * 0.5 - 1) + 0.8`` is used.
    """
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError("ksize must be a positive odd integer")
    if sigma is None or sigma <= 0:
        sigma = 0.3 * ((ksize - 1) * 0.5 - 1) + 0.8
    x = np.arange(ksize, dtype=np.float64) - (ksize - 1) / 2.0
    kernel = np.exp(-(x**2) / (2.0 * sigma**2))
    return kernel / kernel.sum()


def _per_channel(image: np.ndarray, func) -> np.ndarray:
    """Apply ``func`` to each channel of a 2-D or 3-D image."""
    img = np.asarray(image)
    if img.ndim == 2:
        return func(img)
    if img.ndim == 3:
        return np.stack([func(img[..., c]) for c in range(img.shape[-1])], axis=-1)
    raise ValueError(f"expected 2-D or 3-D image, got shape {img.shape}")


def gaussian_blur(image: np.ndarray, ksize: int = 5, sigma: float | None = None) -> np.ndarray:
    """Separable Gaussian blur with reflective border handling.

    Works on grayscale or multi-channel images and preserves the input dtype
    (integer results are rounded and clipped back to the input dtype's range).
    """
    img = np.asarray(image)
    kernel = gaussian_kernel1d(ksize, sigma)

    def _blur2d(channel: np.ndarray) -> np.ndarray:
        data = channel.astype(np.float64)
        data = ndimage.correlate1d(data, kernel, axis=0, mode="reflect")
        data = ndimage.correlate1d(data, kernel, axis=1, mode="reflect")
        return data

    out = _per_channel(img, _blur2d)
    if np.issubdtype(img.dtype, np.integer):
        info = np.iinfo(img.dtype)
        return np.clip(np.round(out), info.min, info.max).astype(img.dtype)
    return out.astype(img.dtype, copy=False) if np.issubdtype(img.dtype, np.floating) else out


def box_filter(image: np.ndarray, ksize: int = 3) -> np.ndarray:
    """Normalised box (mean) filter, OpenCV ``blur`` equivalent.

    Returns float64 output so callers can compare against it without
    quantisation error (used by adaptive thresholding).
    """
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError("ksize must be a positive odd integer")
    img = np.asarray(image)

    def _box2d(channel: np.ndarray) -> np.ndarray:
        return ndimage.uniform_filter(channel.astype(np.float64), size=ksize, mode="reflect")

    return _per_channel(img, _box2d)


def median_blur(image: np.ndarray, ksize: int = 3) -> np.ndarray:
    """Median filter for salt-and-pepper / speckle noise removal."""
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError("ksize must be a positive odd integer")
    img = np.asarray(image)

    def _median2d(channel: np.ndarray) -> np.ndarray:
        return ndimage.median_filter(channel, size=ksize, mode="reflect")

    out = _per_channel(img, _median2d)
    return out.astype(img.dtype, copy=False)


def bilateral_filter(
    image: np.ndarray,
    ksize: int = 5,
    sigma_color: float = 25.0,
    sigma_space: float = 3.0,
) -> np.ndarray:
    """Edge-preserving bilateral filter (small-kernel, vectorised).

    Provided for the optional edge-preserving variant of the shadow filter.
    The implementation shifts the image over the kernel window (``ksize**2``
    shifted copies) instead of looping over pixels, which keeps the work in
    NumPy even though it allocates ``ksize**2`` temporaries.
    """
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError("ksize must be a positive odd integer")
    img = np.asarray(image)

    def _bilateral2d(channel: np.ndarray) -> np.ndarray:
        data = channel.astype(np.float64)
        radius = ksize // 2
        padded = np.pad(data, radius, mode="reflect")
        acc = np.zeros_like(data)
        weight_sum = np.zeros_like(data)
        h, w = data.shape
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                shifted = padded[radius + dy : radius + dy + h, radius + dx : radius + dx + w]
                spatial = np.exp(-(dy * dy + dx * dx) / (2.0 * sigma_space**2))
                rangew = np.exp(-((shifted - data) ** 2) / (2.0 * sigma_color**2))
                weight = spatial * rangew
                acc += weight * shifted
                weight_sum += weight
        return acc / np.maximum(weight_sum, 1e-12)

    out = _per_channel(img, _bilateral2d)
    if img.dtype == np.uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out
