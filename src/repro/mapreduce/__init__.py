"""sparklite: a miniature map-reduce engine standing in for PySpark.

* :mod:`repro.mapreduce.partition` — partitions and partitioning policies
* :mod:`repro.mapreduce.executors` — serial / thread / process executor backends
* :mod:`repro.mapreduce.dataset` — lazy transformations, eager actions, phase timings
* :mod:`repro.mapreduce.cluster` — calibrated Dataproc cluster cost model (Table II)
* :mod:`repro.mapreduce.autolabel_job` — the distributed auto-labeling job itself
"""

from .autolabel_job import (
    MapReduceAutoLabelResult,
    autolabel_udf,
    autolabel_udf_unfiltered,
    mapreduce_scaling_sweep,
    run_mapreduce_autolabel,
)
from .cluster import PAPER_TABLE2_ROWS, ClusterShape, GCDClusterModel, paper_table2
from .dataset import Dataset, JobTimings, SparkLiteContext, udf
from .executors import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    ThreadPoolExecutorBackend,
    make_executor,
)
from .partition import Partition, default_num_partitions, partition_items

__all__ = [
    "MapReduceAutoLabelResult",
    "autolabel_udf",
    "autolabel_udf_unfiltered",
    "mapreduce_scaling_sweep",
    "run_mapreduce_autolabel",
    "PAPER_TABLE2_ROWS",
    "ClusterShape",
    "GCDClusterModel",
    "paper_table2",
    "Dataset",
    "JobTimings",
    "SparkLiteContext",
    "udf",
    "ProcessPoolExecutorBackend",
    "SerialExecutor",
    "ThreadPoolExecutorBackend",
    "make_executor",
    "Partition",
    "default_num_partitions",
    "partition_items",
]
