"""Tests for repro.imops.morphology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imops import (
    dilate,
    erode,
    fill_holes,
    morph_close,
    morph_open,
    remove_small_objects,
    structuring_element,
)


@pytest.fixture()
def blob_mask():
    mask = np.zeros((30, 30), dtype=bool)
    mask[5:15, 5:15] = True  # 10x10 blob
    mask[22, 22] = True  # isolated pixel
    return mask


class TestStructuringElement:
    def test_rect_is_full(self):
        assert structuring_element("rect", 3).sum() == 9

    def test_cross_count(self):
        assert structuring_element("cross", 5).sum() == 9

    def test_ellipse_is_subset_of_rect(self):
        e = structuring_element("ellipse", 7)
        assert e.sum() < 49
        assert e[3, 3]

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            structuring_element("hexagon", 3)

    def test_even_size_raises(self):
        with pytest.raises(ValueError):
            structuring_element("rect", 4)


class TestErodeDilate:
    def test_erosion_shrinks(self, blob_mask):
        out = erode(blob_mask, 3)
        assert out.sum() < blob_mask.sum()
        assert not out[22, 22]

    def test_dilation_grows(self, blob_mask):
        out = dilate(blob_mask, 3)
        assert out.sum() > blob_mask.sum()

    def test_erosion_dilation_are_duals_on_masks(self, blob_mask):
        # erode(m) == ~dilate(~m) for symmetric structuring elements
        a = erode(blob_mask, 3)
        b = ~dilate(~blob_mask, 3)
        np.testing.assert_array_equal(a, b)

    def test_uint8_mask_preserved_levels(self, blob_mask):
        img = blob_mask.astype(np.uint8) * 255
        out = dilate(img, 3)
        assert set(np.unique(out)).issubset({0, 255})

    def test_grayscale_dilation_takes_local_max(self):
        img = np.zeros((9, 9), dtype=np.uint8)
        img[4, 4] = 200
        img[0, 0] = 90
        out = dilate(img, 3)
        assert out[4, 5] == 200
        assert out[1, 1] == 90

    def test_iterations(self, blob_mask):
        once = dilate(blob_mask, 3, iterations=1)
        twice = dilate(blob_mask, 3, iterations=2)
        assert twice.sum() > once.sum()

    def test_rejects_3d(self, rgb_image):
        with pytest.raises(ValueError):
            erode(rgb_image, 3)


class TestOpenClose:
    def test_open_removes_specks(self, blob_mask):
        out = morph_open(blob_mask, 3)
        assert not out[22, 22]
        assert out[9, 9]

    def test_close_fills_small_gap(self):
        mask = np.ones((20, 20), dtype=bool)
        mask[10, 10] = False
        out = morph_close(mask, 3)
        assert out[10, 10]


class TestCleanup:
    def test_remove_small_objects(self, blob_mask):
        out = remove_small_objects(blob_mask, min_size=4)
        assert not out[22, 22]
        assert out[9, 9]

    def test_remove_small_objects_empty_mask(self):
        out = remove_small_objects(np.zeros((5, 5), dtype=bool), min_size=2)
        assert out.sum() == 0

    def test_fill_holes(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[3:17, 3:17] = True
        mask[8:12, 8:12] = False
        out = fill_holes(mask)
        assert out[10, 10]
        assert not out[0, 0]

    def test_fill_holes_uint8(self):
        mask = np.zeros((10, 10), dtype=np.uint8)
        mask[2:8, 2:8] = 255
        mask[5, 5] = 0
        out = fill_holes(mask)
        assert out[5, 5] == 255
