"""Loss functions: softmax + categorical cross-entropy for per-pixel classification."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "CategoricalCrossEntropy"]


def softmax(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = np.asarray(logits, dtype=np.float64)
    z = z - z.max(axis=axis, keepdims=True)
    exp = np.exp(z)
    return (exp / exp.sum(axis=axis, keepdims=True)).astype(np.float32)


class CategoricalCrossEntropy:
    """Softmax cross-entropy over per-pixel class logits.

    ``forward(logits, targets)`` accepts ``(N, K, H, W)`` logits and either
    integer targets ``(N, H, W)`` or one-hot targets ``(N, K, H, W)``, and
    returns the mean loss over all pixels.  ``backward()`` returns
    ``dL/dlogits`` with the same shape as the logits (the softmax gradient is
    fused, as in every practical implementation).
    """

    def __init__(self, class_weights: np.ndarray | None = None) -> None:
        self.class_weights = None if class_weights is None else np.asarray(class_weights, dtype=np.float32)
        self._cache: tuple | None = None

    # ------------------------------------------------------------------ #
    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float32)
        if logits.ndim != 4:
            raise ValueError(f"expected (N, K, H, W) logits, got shape {logits.shape}")
        n, k, h, w = logits.shape

        targets = np.asarray(targets)
        if targets.ndim == 4:
            if targets.shape != logits.shape:
                raise ValueError("one-hot targets must match the logits shape")
            target_idx = targets.argmax(axis=1)
        elif targets.ndim == 3:
            if targets.shape != (n, h, w):
                raise ValueError(f"integer targets must have shape {(n, h, w)}, got {targets.shape}")
            target_idx = targets.astype(np.intp)
        else:
            raise ValueError("targets must be (N, H, W) integers or (N, K, H, W) one-hot")
        if target_idx.min() < 0 or target_idx.max() >= k:
            raise ValueError("target class ids outside [0, num_classes)")

        probs = softmax(logits, axis=1)
        n_idx = np.arange(n)[:, None, None]
        h_idx = np.arange(h)[None, :, None]
        w_idx = np.arange(w)[None, None, :]
        picked = probs[n_idx, target_idx, h_idx, w_idx]
        picked = np.clip(picked, 1e-12, 1.0)

        if self.class_weights is not None:
            if self.class_weights.shape != (k,):
                raise ValueError(f"class_weights must have shape ({k},)")
            weights = self.class_weights[target_idx]
        else:
            weights = np.ones_like(picked, dtype=np.float32)

        loss = float(-(weights * np.log(picked)).sum() / weights.sum())
        self._cache = (probs, target_idx, weights)
        return loss

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, target_idx, weights = self._cache
        n, k, h, w = probs.shape

        onehot = np.zeros_like(probs)
        n_idx = np.arange(n)[:, None, None]
        h_idx = np.arange(h)[None, :, None]
        w_idx = np.arange(w)[None, None, :]
        onehot[n_idx, target_idx, h_idx, w_idx] = 1.0

        grad = (probs - onehot) * weights[:, None, :, :]
        return (grad / weights.sum()).astype(np.float32)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
