"""Synthetic Sentinel-2 radiometry for the three sea-ice surface types.

The real paper uses Level-1C RGB reflectance of the Ross Sea; we cannot
download it, so the generator assigns each class a reference RGB colour
(chosen so that its HSV *value* falls inside the paper's published
auto-labeling range for that class) plus realistic per-pixel texture.

Thin clouds and cloud shadows are modelled with the standard linear mixing
model used in optical remote sensing::

    observed = (1 - alpha) * surface + alpha * contaminant

where the contaminant is white scattering for clouds and dark ambient
skylight for shadows, and ``alpha`` is a smooth spatial field.  The same
model is inverted by :mod:`repro.cloudshadow`, which mirrors how the paper's
OpenCV filter removes thin veils by brightness/contrast restoration.
"""

from __future__ import annotations

import numpy as np

from ..classes import NUM_CLASSES, SeaIceClass

__all__ = [
    "CLASS_RGB_PROTOTYPES",
    "CLASS_TEXTURE_AMPLITUDE",
    "CLOUD_CONTAMINANT_RGB",
    "SHADOW_CONTAMINANT_RGB",
    "prototype_array",
    "render_class_map",
    "mix_contaminant",
]

#: Reference (clean, texture-free) RGB colour of each surface type.  The HSV
#: value of each prototype sits comfortably inside the corresponding paper
#: threshold band: thick ice V>=205, thin ice 31<=V<=204, open water V<=30.
CLASS_RGB_PROTOTYPES: dict[SeaIceClass, tuple[float, float, float]] = {
    SeaIceClass.THICK_ICE: (238.0, 242.0, 248.0),
    SeaIceClass.THIN_ICE: (126.0, 124.0, 120.0),
    SeaIceClass.OPEN_WATER: (2.0, 13.0, 22.0),
}

#: Peak-to-peak amplitude of the per-class surface texture (snow dunes,
#: frost flowers on young ice, waves/sun-glint on water).
CLASS_TEXTURE_AMPLITUDE: dict[SeaIceClass, float] = {
    SeaIceClass.THICK_ICE: 14.0,
    SeaIceClass.THIN_ICE: 18.0,
    SeaIceClass.OPEN_WATER: 4.0,
}

#: Thin clouds scatter white light into the sensor.
CLOUD_CONTAMINANT_RGB: tuple[float, float, float] = (255.0, 255.0, 255.0)

#: Shadowed surfaces are lit only by blue ambient skylight.
SHADOW_CONTAMINANT_RGB: tuple[float, float, float] = (24.0, 38.0, 88.0)


def prototype_array() -> np.ndarray:
    """Return the class prototypes as a ``(NUM_CLASSES, 3)`` float array."""
    out = np.zeros((NUM_CLASSES, 3), dtype=np.float64)
    for cls, rgb in CLASS_RGB_PROTOTYPES.items():
        out[int(cls)] = rgb
    return out


def render_class_map(
    class_map: np.ndarray,
    texture: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    pixel_noise: float = 2.0,
) -> np.ndarray:
    """Render an integer class map into a clean (cloud-free) RGB scene.

    Parameters
    ----------
    class_map:
        ``(H, W)`` integer map of :class:`~repro.classes.SeaIceClass` ids.
    texture:
        Optional ``(H, W)`` field in ``[0, 1]`` modulating the per-class
        texture (e.g. fractal noise); a flat 0.5 field is used when omitted.
    rng:
        Random generator for the small uncorrelated sensor noise.
    pixel_noise:
        Standard deviation of the additive per-pixel sensor noise in DN.

    Returns
    -------
    numpy.ndarray
        ``(H, W, 3)`` uint8 RGB image.
    """
    cmap = np.asarray(class_map)
    if cmap.ndim != 2:
        raise ValueError(f"expected 2-D class map, got shape {cmap.shape}")
    if cmap.min() < 0 or cmap.max() >= NUM_CLASSES:
        raise ValueError("class map contains unknown class ids")
    rng = rng or np.random.default_rng()

    if texture is None:
        texture = np.full(cmap.shape, 0.5)
    texture = np.asarray(texture, dtype=np.float64)
    if texture.shape != cmap.shape:
        raise ValueError("texture field must match the class map shape")

    prototypes = prototype_array()
    amplitude = np.zeros(NUM_CLASSES)
    for cls, amp in CLASS_TEXTURE_AMPLITUDE.items():
        amplitude[int(cls)] = amp

    base = prototypes[cmap.astype(np.intp)]  # (H, W, 3)
    amp = amplitude[cmap.astype(np.intp)][..., None]
    # Texture is a shared luminance modulation: centred on 0, scaled per class.
    modulation = (texture - 0.5)[..., None] * amp
    noise = rng.normal(0.0, pixel_noise, size=base.shape)
    rgb = base + modulation + noise
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def mix_contaminant(
    rgb: np.ndarray,
    alpha: np.ndarray,
    contaminant: tuple[float, float, float],
) -> np.ndarray:
    """Blend ``rgb`` toward ``contaminant`` with per-pixel opacity ``alpha``.

    ``observed = (1 - alpha) * rgb + alpha * contaminant``; used for both
    thin clouds (white contaminant) and shadows (dark blue contaminant).
    """
    img = np.asarray(rgb, dtype=np.float64)
    a = np.asarray(alpha, dtype=np.float64)
    if a.shape != img.shape[:2]:
        raise ValueError(f"alpha shape {a.shape} does not match image {img.shape[:2]}")
    if (a < 0).any() or (a > 1).any():
        raise ValueError("alpha must lie in [0, 1]")
    c = np.asarray(contaminant, dtype=np.float64).reshape(1, 1, 3)
    out = (1.0 - a[..., None]) * img + a[..., None] * c
    return np.clip(np.round(out), 0, 255).astype(np.uint8)
