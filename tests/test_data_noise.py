"""Tests for repro.data.noise (spectral / fractal noise fields)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import fractal_noise, smooth_blobs, spectral_noise


class TestSpectralNoise:
    def test_range_and_shape(self):
        field = spectral_noise((32, 48), beta=2.0, rng=np.random.default_rng(0))
        assert field.shape == (32, 48)
        assert field.min() >= 0.0 and field.max() <= 1.0

    def test_deterministic_given_rng_seed(self):
        a = spectral_noise((16, 16), rng=np.random.default_rng(5))
        b = spectral_noise((16, 16), rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spectral_noise((16, 16), rng=np.random.default_rng(1))
        b = spectral_noise((16, 16), rng=np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_higher_beta_is_smoother(self):
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        rough = spectral_noise((64, 64), beta=0.5, rng=rng1)
        smooth = spectral_noise((64, 64), beta=4.0, rng=rng2)
        rough_grad = np.abs(np.diff(rough, axis=0)).mean()
        smooth_grad = np.abs(np.diff(smooth, axis=0)).mean()
        assert smooth_grad < rough_grad

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            spectral_noise((0, 10))


class TestFractalNoise:
    def test_range(self):
        field = fractal_noise((32, 32), rng=np.random.default_rng(0))
        assert 0.0 <= field.min() and field.max() <= 1.0

    def test_octaves_must_be_positive(self):
        with pytest.raises(ValueError):
            fractal_noise((8, 8), octaves=0)

    def test_single_octave_equals_spectral_structure(self):
        field = fractal_noise((16, 16), octaves=1, rng=np.random.default_rng(0))
        assert field.shape == (16, 16)


class TestSmoothBlobs:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.05, 0.95))
    def test_coverage_close_to_target(self, coverage):
        mask = smooth_blobs((64, 64), coverage, rng=np.random.default_rng(7))
        assert abs(mask.mean() - coverage) < 0.05

    def test_zero_and_full_coverage(self):
        assert not smooth_blobs((16, 16), 0.0).any()
        assert smooth_blobs((16, 16), 1.0).all()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            smooth_blobs((8, 8), 1.5)

    def test_blobs_are_spatially_coherent(self):
        mask = smooth_blobs((64, 64), 0.3, beta=3.5, rng=np.random.default_rng(1))
        # A coherent mask has far fewer boundary transitions than random noise.
        transitions = np.abs(np.diff(mask.astype(int), axis=0)).sum()
        random_mask = np.random.default_rng(2).uniform(size=(64, 64)) < 0.3
        random_transitions = np.abs(np.diff(random_mask.astype(int), axis=0)).sum()
        assert transitions < random_transitions / 2
