"""Thin-cloud and shadow *detection* (mask + coverage estimation).

Detection answers two questions the workflow needs: *which pixels* are
contaminated (so the removal step can be audited and visualised) and *how
much* of a tile is contaminated (the quantity behind Table V's split into
"more / less than about 10 % cloud and shadow cover").

The detector combines two cues:

* the per-pixel veil opacity estimated by the linear-mixing-model remover
  (:class:`~repro.cloudshadow.removal.ThinCloudShadowRemover`), which is the
  physically grounded signal, and
* a classical OpenCV-style brightness-deviation gate (grayscale conversion,
  heavy Gaussian blurring, absolute difference from the scene median, Otsu
  thresholding) that suppresses spurious detections in scenes whose
  low-frequency brightness is flat — the chain of transforms the paper's
  §III-A describes.

The masks are then cleaned with median filtering, morphological closing and
small-object removal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..imops import (
    absdiff,
    gaussian_blur,
    median_blur,
    morph_close,
    otsu_threshold,
    remove_small_objects,
    rgb_to_hsv,
    scale_to_uint8,
)
from .removal import ThinCloudShadowRemover

__all__ = ["CloudShadowMasks", "detect_cloud_shadow", "estimate_coverage"]


@dataclass
class CloudShadowMasks:
    """Boolean masks of detected cloud and shadow pixels."""

    cloud: np.ndarray
    shadow: np.ndarray

    @property
    def affected(self) -> np.ndarray:
        return self.cloud | self.shadow

    @property
    def coverage(self) -> float:
        """Fraction of the image flagged as cloud or shadow."""
        return float(self.affected.mean())


def _brightness_deviation(rgb: np.ndarray, blur_ksize: int) -> np.ndarray:
    """Low-frequency brightness deviation from the scene's median level (uint8)."""
    hsv = rgb_to_hsv(rgb)
    value = hsv[..., 2].astype(np.float64)
    smoothed = gaussian_blur(value, ksize=blur_ksize).astype(np.float64)
    reference = float(np.median(smoothed))
    deviation = np.abs(smoothed - reference)
    return scale_to_uint8(absdiff(scale_to_uint8(deviation), np.zeros(deviation.shape, dtype=np.uint8)))


def _clean(mask: np.ndarray, min_object_size: int) -> np.ndarray:
    cleaned = median_blur(mask.astype(np.uint8) * 255, ksize=5) > 0
    cleaned = morph_close(cleaned, ksize=5)
    return remove_small_objects(cleaned, min_size=min_object_size)


def detect_cloud_shadow(
    rgb: np.ndarray,
    blur_ksize: int = 63,
    alpha_threshold: float = 0.10,
    min_object_size: int = 64,
    remover: ThinCloudShadowRemover | None = None,
) -> CloudShadowMasks:
    """Detect thin-cloud and shadow masks from a single RGB tile or scene.

    Parameters
    ----------
    rgb:
        ``(H, W, 3)`` uint8 image.
    blur_ksize:
        Kernel of the low-frequency brightness-deviation gate.
    alpha_threshold:
        Minimum estimated veil opacity for a pixel to count as contaminated.
    min_object_size:
        Smallest connected component (pixels) kept after clean-up.
    remover:
        Optionally reuse an existing remover (and its calibration).
    """
    img = np.asarray(rgb)
    if img.ndim != 3 or img.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got shape {img.shape}")
    if blur_ksize % 2 == 0:
        blur_ksize += 1

    remover = remover or ThinCloudShadowRemover()
    estimate = remover.estimate(img)

    cloud = estimate.cloud_alpha > alpha_threshold
    shadow = estimate.shadow_alpha > alpha_threshold

    # Classical gate: genuine veils also perturb the low-frequency brightness
    # field.  Requiring a minimal deviation suppresses speckle detections on
    # clean scenes while leaving real banks (which are large and smooth) intact.
    deviation = _brightness_deviation(img, blur_ksize)
    if deviation.max() > 0:
        otsu_level, _ = otsu_threshold(deviation)
        gate = deviation >= min(max(otsu_level * 0.5, 4.0), 40.0)
    else:
        gate = np.zeros(deviation.shape, dtype=bool)
    cloud &= gate
    shadow &= gate

    return CloudShadowMasks(
        cloud=_clean(cloud, min_object_size),
        shadow=_clean(shadow, min_object_size),
    )


def estimate_coverage(rgb: np.ndarray, **kwargs) -> float:
    """Convenience wrapper returning only the detected cloud+shadow coverage fraction."""
    return detect_cloud_shadow(rgb, **kwargs).coverage
