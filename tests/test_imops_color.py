"""Tests for repro.imops.color (RGB/HSV/grayscale conversions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.imops import (
    gray_to_rgb,
    hsv_to_rgb,
    merge_channels,
    rgb_to_gray,
    rgb_to_hsv,
    split_channels,
)


class TestRgbToHsv:
    def test_output_shape_and_dtype(self, rgb_image):
        hsv = rgb_to_hsv(rgb_image)
        assert hsv.shape == rgb_image.shape
        assert hsv.dtype == np.uint8

    def test_hue_range_is_opencv_convention(self, rgb_image):
        hsv = rgb_to_hsv(rgb_image)
        assert hsv[..., 0].max() <= 179

    def test_pure_colors(self):
        img = np.zeros((1, 3, 3), dtype=np.uint8)
        img[0, 0] = (255, 0, 0)  # red
        img[0, 1] = (0, 255, 0)  # green
        img[0, 2] = (0, 0, 255)  # blue
        hsv = rgb_to_hsv(img)
        assert hsv[0, 0, 0] == 0  # red hue
        assert hsv[0, 1, 0] == 60  # green hue (120 deg / 2)
        assert hsv[0, 2, 0] == 120  # blue hue (240 deg / 2)
        assert np.all(hsv[..., 1] == 255)
        assert np.all(hsv[..., 2] == 255)

    def test_gray_pixels_have_zero_saturation(self):
        img = np.full((4, 4, 3), 123, dtype=np.uint8)
        hsv = rgb_to_hsv(img)
        assert np.all(hsv[..., 0] == 0)
        assert np.all(hsv[..., 1] == 0)
        assert np.all(hsv[..., 2] == 123)

    def test_value_channel_is_max_of_rgb(self, rgb_image):
        hsv = rgb_to_hsv(rgb_image)
        np.testing.assert_array_equal(hsv[..., 2], rgb_image.max(axis=-1))

    def test_black_pixel(self):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        hsv = rgb_to_hsv(img)
        assert np.all(hsv == 0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            rgb_to_hsv(np.zeros((4, 4), dtype=np.uint8))

    def test_accepts_float_input_in_unit_range(self):
        img = np.array([[[1.0, 0.0, 0.0]]])
        hsv = rgb_to_hsv(img)
        assert hsv[0, 0, 2] == 255


class TestHsvRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(st.integers(1, 8), st.integers(1, 8), st.just(3)),
        )
    )
    def test_round_trip_close(self, img):
        # Hue is quantised to 2-degree bins so allow a small tolerance.
        back = hsv_to_rgb(rgb_to_hsv(img))
        assert np.max(np.abs(back.astype(int) - img.astype(int))) <= 6

    def test_round_trip_on_sea_ice_palette(self):
        from repro.data import prototype_array

        img = np.clip(np.round(prototype_array()), 0, 255).astype(np.uint8).reshape(1, 3, 3)
        back = hsv_to_rgb(rgb_to_hsv(img))
        assert np.max(np.abs(back.astype(int) - img.astype(int))) <= 4

    def test_hsv_to_rgb_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hsv_to_rgb(np.zeros((3, 3), dtype=np.uint8))


class TestGray:
    def test_weights_sum_to_white(self):
        img = np.full((2, 2, 3), 255, dtype=np.uint8)
        assert np.all(rgb_to_gray(img) == 255)

    def test_green_dominates_luminance(self):
        red = np.zeros((1, 1, 3), dtype=np.uint8)
        red[..., 0] = 200
        green = np.zeros((1, 1, 3), dtype=np.uint8)
        green[..., 1] = 200
        assert rgb_to_gray(green)[0, 0] > rgb_to_gray(red)[0, 0]

    def test_gray_passthrough(self, gray_image):
        np.testing.assert_array_equal(rgb_to_gray(gray_image), gray_image)

    def test_gray_to_rgb_shape(self, gray_image):
        rgb = gray_to_rgb(gray_image)
        assert rgb.shape == gray_image.shape + (3,)
        np.testing.assert_array_equal(rgb[..., 0], rgb[..., 2])

    def test_gray_to_rgb_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            gray_to_rgb(np.zeros((2, 2, 2, 2)))


class TestSplitMerge:
    def test_split_merge_round_trip(self, rgb_image):
        channels = split_channels(rgb_image)
        assert len(channels) == 3
        np.testing.assert_array_equal(merge_channels(channels), rgb_image)

    def test_split_returns_contiguous(self, rgb_image):
        for channel in split_channels(rgb_image):
            assert channel.flags["C_CONTIGUOUS"]

    def test_merge_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            merge_channels([np.zeros((2, 2)), np.zeros((3, 3))])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_channels([])
