"""Model checkpoint I/O: save and load module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_weights", "load_weights"]


def save_weights(module: Module, path: str | os.PathLike) -> str:
    """Write every parameter of ``module`` to a compressed ``.npz`` file.

    Returns the path written (with ``.npz`` appended if missing).
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    state = module.state_dict()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_weights(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_weights` into ``module`` (strict match)."""
    path = str(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module
