"""Tests for the compiled-plan machinery: arena slots, plan cache behaviour."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.nn.plan import PlanCache, Slot


class _FakePlan:
    """Stands in for a CompiledPlan: the cache only needs arena_nbytes."""

    def __init__(self, shape):
        self.input_shape = shape
        self.arena_nbytes = 128

    def run(self, x):
        return x


class TestSlot:
    def test_resolve_and_channel_slice(self):
        arena = np.arange(2 * 4 * 3 * 3, dtype=np.float32)
        slot = Slot(0, (2, 4, 3, 3))
        full = slot.resolve(arena)
        assert full.shape == (2, 4, 3, 3) and full.base is arena

        sliced = slot.slice(1, 3)
        view = sliced.resolve(arena)
        assert view.shape == (2, 2, 3, 3)
        np.testing.assert_array_equal(view, full[:, 1:3])
        assert sliced.view_shape == (2, 2, 3, 3)

    def test_slice_validation(self):
        slot = Slot(0, (1, 4, 2, 2))
        with pytest.raises(ValueError, match="channel slice"):
            slot.slice(2, 5)
        with pytest.raises(ValueError, match="already-sliced"):
            slot.slice(0, 2).slice(0, 1)


class TestPlanCache:
    def test_miss_compiles_then_hits(self):
        compiled: list[tuple] = []

        def compile_fn(shape):
            compiled.append(shape)
            return _FakePlan(shape)

        cache = PlanCache(compile_fn, max_plans=4)
        a = cache.get((1, 3, 8, 8))
        b = cache.get((1, 3, 8, 8))
        assert a is b and compiled == [(1, 3, 8, 8)]
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["plans"] == 1
        assert info["arena_bytes"] == 128

    def test_lru_eviction_order(self):
        cache = PlanCache(_FakePlan, max_plans=2)
        s1, s2, s3 = (1, 3, 8, 8), (2, 3, 8, 8), (4, 3, 8, 8)
        cache.get(s1)
        cache.get(s2)
        cache.get(s1)  # s1 is now most recent: s2 must be the eviction victim
        cache.get(s3)
        assert cache.shapes() == [s1, s3]
        assert cache.info()["evictions"] == 1
        # Re-requesting the evicted shape recompiles (a miss, not a hit).
        before = cache.info()["misses"]
        cache.get(s2)
        assert cache.info()["misses"] == before + 1

    def test_clear_drops_plans(self):
        cache = PlanCache(_FakePlan, max_plans=4)
        cache.get((1, 3, 8, 8))
        cache.clear()
        assert len(cache) == 0
        cache.get((1, 3, 8, 8))
        assert cache.info()["misses"] == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="max_plans"):
            PlanCache(_FakePlan, max_plans=0)

    def test_concurrent_gets_build_one_plan_per_shape(self):
        compiled: list[tuple] = []
        lock = threading.Lock()

        def compile_fn(shape):
            with lock:
                compiled.append(shape)
            return _FakePlan(shape)

        cache = PlanCache(compile_fn, max_plans=8)
        shapes = [(n, 3, 8, 8) for n in (1, 2, 4)] * 8
        results: dict[tuple, list] = {shape: [] for shape in shapes}
        threads = [threading.Thread(target=lambda s=s: results[s].append(cache.get(s))) for s in shapes]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One compile per distinct shape, and every caller got the same object.
        assert sorted(compiled) == sorted(set(shapes))
        for shape, plans in results.items():
            assert all(p is plans[0] for p in plans)
