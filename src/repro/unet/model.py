"""The U-Net semantic segmentation model (paper §III-C, Figure 7).

The architecture is parameterised by depth (number of encoder/decoder
steps) and base channel width so that the full paper-scale model
(5 down-sampling steps, 64 base channels, 28 convolution layers, 256×256
inputs) and small fast variants for tests share the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..classes import NUM_CLASSES
from ..nn import Conv2D, Module
from ..nn.losses import softmax
from .blocks import DecoderBlock, DoubleConv, EncoderBlock

__all__ = ["UNetConfig", "UNet", "build_unet", "paper_unet_config", "tiny_unet_config"]


@dataclass(frozen=True)
class UNetConfig:
    """Hyper-parameters of a U-Net instance."""

    in_channels: int = 3
    num_classes: int = NUM_CLASSES
    depth: int = 3
    base_channels: int = 16
    dropout: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.base_channels < 1:
            raise ValueError("base_channels must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    def encoder_channels(self) -> list[int]:
        """Output channel width of every encoder step."""
        return [self.base_channels * (2**i) for i in range(self.depth)]

    def min_input_size(self) -> int:
        """Smallest spatial size the model accepts (input must be divisible by this)."""
        return 2**self.depth


def paper_unet_config(seed: int = 0) -> UNetConfig:
    """The full-scale configuration described in the paper (5 steps, 64 base channels)."""
    return UNetConfig(depth=5, base_channels=64, dropout=0.2, seed=seed)


def tiny_unet_config(seed: int = 0) -> UNetConfig:
    """A small configuration used by tests and quick examples."""
    return UNetConfig(depth=2, base_channels=8, dropout=0.1, seed=seed)


class UNet(Module):
    """Encoder–bottleneck–decoder U-Net with skip connections."""

    def __init__(self, config: UNetConfig | None = None) -> None:
        super().__init__()
        self.config = config or UNetConfig()
        cfg = self.config
        widths = cfg.encoder_channels()

        self.encoders: list[EncoderBlock] = []
        in_ch = cfg.in_channels
        for i, width in enumerate(widths):
            block = EncoderBlock(in_ch, width, dropout=cfg.dropout, seed=cfg.seed + 10 * i)
            self.register_module(f"enc{i}", block)
            self.encoders.append(block)
            in_ch = width

        bottleneck_width = widths[-1] * 2
        self.bottleneck = DoubleConv(in_ch, bottleneck_width, dropout=cfg.dropout, seed=cfg.seed + 1000)

        self.decoders: list[DecoderBlock] = []
        in_ch = bottleneck_width
        for i, width in enumerate(reversed(widths)):
            block = DecoderBlock(in_ch, skip_channels=width, out_channels=width,
                                 dropout=cfg.dropout, seed=cfg.seed + 2000 + 10 * i)
            self.register_module(f"dec{i}", block)
            self.decoders.append(block)
            in_ch = width

        self.head = Conv2D(in_ch, cfg.num_classes, kernel_size=1, padding=0, seed=cfg.seed + 3000)
        self._skips: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return per-pixel class logits of shape ``(N, num_classes, H, W)``."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4 or x.shape[1] != self.config.in_channels:
            raise ValueError(f"expected (N, {self.config.in_channels}, H, W) input, got shape {x.shape}")
        step = self.config.min_input_size()
        if x.shape[2] % step or x.shape[3] % step:
            raise ValueError(f"input spatial size must be divisible by {step} for depth {self.config.depth}")

        skips = []
        out = x
        for encoder in self.encoders:
            out, skip = encoder(out)
            skips.append(skip)
        out = self.bottleneck(out)
        for decoder, skip in zip(self.decoders, reversed(skips)):
            out = decoder(out, skip)
        self._skips = skips if self.training else None
        return self.head(out)

    def backward(self, grad_output: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        """Back-propagate ``dL/dlogits`` and return ``dL/dinput``.

        Training loops pass ``need_input_grad=False``: nothing consumes the
        input gradient there, and skipping the first layer's input
        contraction saves a full-resolution transposed convolution per step.
        """
        if self._skips is None:
            raise RuntimeError("backward called before forward")
        grad = self.head.backward(np.asarray(grad_output, dtype=np.float32))

        skip_grads: list[np.ndarray | None] = [None] * len(self.encoders)
        # Decoders were applied in order during forward, so backward visits
        # them in reverse; decoder i consumed the skip of encoder (depth-1-i).
        for i in range(len(self.decoders) - 1, -1, -1):
            grad, grad_skip = self.decoders[i].backward(grad)
            skip_grads[len(self.encoders) - 1 - i] = grad_skip

        grad = self.bottleneck.backward(grad)
        for index, (encoder, grad_skip) in enumerate(zip(reversed(self.encoders), reversed(skip_grads))):
            is_first_layer = index == len(self.encoders) - 1
            grad = encoder.backward(grad, grad_skip,
                                    need_input_grad=need_input_grad or not is_first_layer)
        return grad

    # ------------------------------------------------------------------ #
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities ``(N, K, H, W)`` with the model in eval mode."""
        was_training = self.training
        self.eval()
        try:
            probs = softmax(self.forward(np.asarray(x, dtype=np.float32)), axis=1)
        finally:
            if was_training:
                self.train()
        return probs

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Per-pixel class predictions ``(N, H, W)`` (uint8)."""
        return self.predict_proba(x).argmax(axis=1).astype(np.uint8)

    def num_conv_layers(self) -> int:
        """Number of convolution layers in the model (28 for the paper configuration)."""
        return sum(1 for m in self.modules() if isinstance(m, Conv2D))


def build_unet(config: UNetConfig | None = None) -> UNet:
    """Factory mirroring the paper's model construction step."""
    return UNet(config)
