"""Elastic fault-tolerant data-parallel training over real forked workers.

:class:`ElasticTrainer` is the training-side counterpart of the fork
serving backend: persistent forked worker processes, weights published
through one shared-memory segment (the :mod:`repro.backend.store` idiom),
gradients exchanged through a shared micro-shard arena, and every
cross-process wait bounded by a deadline so a dead or hung worker can
never wedge a step.

Two properties drive the design:

**Elastic bit-identity.**  A p-dependent reduction order would make the
update depend on how many workers happen to be alive, so losing a worker
would fork the training trajectory.  Instead the global batch is split
into a *fixed* number ``M`` of micro-shards (independent of the live
worker count) and the reduction is a deterministic left-fold over slots
``0..M-1``: live workers own contiguous runs of slots, and the parent
walks them in rank order, each folding its run — in slot order — into a
shared float64 accumulator.  The fold therefore performs the exact same
float operations for *any* worker count, which is what lets the ring
shrink (or grow back) mid-epoch while producing bit-identical weights.
Dropout masks are reseeded per ``(seed, step, micro-shard)`` so they too
are assignment-independent.

**Crash-safe exact resume.**  Periodic checkpoints are written atomically
(temp file + ``os.replace``) and capture — besides model and optimiser —
the epoch/step cursor and the :class:`~repro.data.loader.BatchLoader` RNG
state at the *start* of the current epoch.  Resume restores that state and
replays (draws and discards) the first ``step_in_epoch`` batches, which
re-consumes the shuffle permutation and every augmentation draw exactly,
so a run SIGKILLed at an arbitrary step and resumed with ``--resume``
reproduces the uninterrupted run bit-for-bit.  Corrupt archives (torn
writes, ``ckpt_corrupt_write`` injections) surface as
:class:`~repro.nn.serialization.CheckpointError` and resume falls back to
the next-newest checkpoint, mirroring the serving registry's quarantine.

Failure handling in a step: every reply and every fold hop has a
``poll`` deadline; a worker that misses it (or EOFs) is killed, the ring
is rebuilt with the survivors (``RingBroken`` carries the rank), the
batch is re-sharded over them and the *same* step re-runs — nothing is
lost, and determinism makes the re-computation identical.  Below-target
fleets are topped back up at step boundaries (elastic grow).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
import os
import re
import time
from dataclasses import dataclass

import numpy as np

from ..backend.store import (
    SharedArrayField,
    attach_segment,
    close_segment,
    create_segment,
    ndarray_view,
)
from ..data.loader import BatchLoader
from ..nn import Adam, CategoricalCrossEntropy, Optimizer, save_checkpoint
from ..nn import load_checkpoint as _load_checkpoint
from ..nn.layers import Dropout
from ..nn.serialization import CheckpointError
from ..obs.metrics import get_registry
from ..reliability import fault_point
from ..unet.model import UNet, UNetConfig
from ..unet.trainer import EpochStats, TrainingHistory
from .allreduce import RingBroken

__all__ = ["ElasticTrainer", "ElasticTrainingError", "latest_checkpoints"]

_ALIGN = 64

#: Default per-reply / per-fold-hop deadline (seconds).
_DEFAULT_STEP_TIMEOUT_S = 60.0

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class ElasticTrainingError(RuntimeError):
    """Elastic training cannot make progress (e.g. every worker died)."""


def latest_checkpoints(directory: str | os.PathLike) -> list[str]:
    """``ckpt-*.npz`` paths in ``directory``, newest (highest step) first."""
    directory = str(directory)
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _CKPT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return [path for _, path in sorted(found, reverse=True)]


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _reseed_dropouts(dropouts: list[Dropout], seed: int, step: int, slot: int) -> None:
    """Make dropout a pure function of (seed, step, micro-shard).

    Reseeding per micro-shard — never per worker — keeps the masks
    identical no matter which worker a shard lands on, which is required
    for re-dispatching shards after an eviction to be bit-exact.
    """
    for index, drop in enumerate(dropouts):
        drop._rng = np.random.default_rng([seed, step, slot, index])


def _elastic_worker_main(conn, config, seed, weight_segment, weight_fields,
                         grad_segment, num_shards, flat_size, acc_offset,
                         siblings=()) -> None:
    """Blocking request loop of one elastic training worker (runs in the child)."""
    # Same fd hygiene as the backend workers: close inherited parent-side
    # pipe ends so every pipe EOFs when the parent actually dies.
    for sibling in siblings:
        try:
            sibling.close()
        except OSError:  # pragma: no cover - already closed
            pass
    # Zero the forked copy of the metrics registry; deltas piggyback on
    # replies and merge into the parent (the PR 8 protocol).
    get_registry().reset()

    model = UNet(config)
    loss_fn = CategoricalCrossEntropy()
    dropouts = [m for m in model.modules() if isinstance(m, Dropout)]
    params = model.named_parameters()

    weight_shm = attach_segment(weight_segment)
    grad_shm = attach_segment(grad_segment)
    weight_views = [
        (params[fld.name], ndarray_view(weight_shm, fld.shape, fld.offset, writeable=False))
        for fld in weight_fields
    ]
    slot_views = [
        ndarray_view(grad_shm, (flat_size,), offset=m * flat_size * 4)
        for m in range(num_shards)
    ]
    acc_view = ndarray_view(grad_shm, (flat_size,), offset=acc_offset, dtype=np.float64)

    hist_compute = get_registry().histogram(
        "repro_train_shard_compute_ms",
        "Forward+backward time per micro-shard in an elastic worker",
    )

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            try:
                if op == "stop":
                    conn.send(("ok", None))
                    break
                if op == "step":
                    step_idx, shards = msg[1], msg[2]
                    fault_point("trainer_worker_crash")
                    for param, view in weight_views:
                        param.value[...] = view
                    model.train()
                    losses = {}
                    for slot, x, y in shards:
                        t0 = time.perf_counter()
                        _reseed_dropouts(dropouts, seed, step_idx, slot)
                        model.zero_grad()
                        logits = model.forward(x)
                        losses[slot] = float(loss_fn.forward(logits, y))
                        model.backward(loss_fn.backward(), need_input_grad=False)
                        flat = slot_views[slot]
                        offset = 0
                        for param, _view in weight_views:
                            size = param.grad.size
                            flat[offset:offset + size] = param.grad.ravel()
                            offset += size
                        hist_compute.observe((time.perf_counter() - t0) * 1e3)
                    conn.send(("ok", losses, _reply_meta()))
                elif op == "fold":
                    _step_idx, slots, init = msg[1], msg[2], msg[3]
                    fault_point("allreduce_stall")
                    if init:
                        acc_view[...] = 0.0
                    for slot in slots:
                        acc_view += slot_views[slot]
                    conn.send(("ok", None, _reply_meta()))
                elif op == "ping":
                    conn.send(("ok", os.getpid()))
                else:
                    conn.send(("err", f"unknown elastic op {op!r}"))
            except Exception as exc:  # report, keep serving
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        acc_view = None
        slot_views = None
        weight_views = None
        close_segment(weight_shm)
        close_segment(grad_shm)
        conn.close()


def _reply_meta() -> dict:
    meta = {"pid": os.getpid()}
    drained = get_registry().drain()
    if drained:
        meta["metrics"] = drained
    return meta


class _ElasticWorker:
    """Parent-side handle of one elastic worker (pipe + liveness flag)."""

    def __init__(self, ctx, rank: int, spawn_args, siblings=()) -> None:
        self.rank = rank
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_elastic_worker_main,
            args=(child_conn,) + tuple(spawn_args) + (tuple(siblings) + (self.conn,),),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.dead = False

    def send(self, *msg) -> None:
        try:
            self.conn.send(msg)
        except (OSError, BrokenPipeError) as exc:
            self.kill()
            raise RingBroken(self.rank, f"worker rank {self.rank} pipe broken: {exc!r}") from exc

    def recv(self, timeout: float):
        """One reply with a deadline; silence or EOF evicts the worker."""
        try:
            if not self.conn.poll(timeout):
                self.kill()
                raise RingBroken(
                    self.rank,
                    f"worker rank {self.rank} (pid {self.process.pid}) missed its "
                    f"{timeout:.1f}s reply deadline; killed",
                )
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            self.kill()
            raise RingBroken(
                self.rank, f"worker rank {self.rank} died: {exc!r}"
            ) from exc
        status, payload = reply[0], reply[1]
        meta = reply[2] if len(reply) > 2 else None
        if meta is not None:
            drained = meta.get("metrics")
            if drained:
                get_registry().merge(drained)
        if status != "ok":
            raise ElasticTrainingError(f"elastic worker rank {self.rank} failed: {payload}")
        return payload

    def kill(self) -> None:
        self.dead = True
        if self.process.is_alive():
            self.process.kill()
        self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stop(self, timeout: float = 2.0) -> None:
        if not self.dead and self.process.is_alive():
            try:
                self.conn.send(("stop",))
                if self.conn.poll(timeout):
                    self.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------- #
# Parent-side trainer
# ---------------------------------------------------------------------- #
@dataclass
class _StepOutcome:
    loss: float
    images: int
    workers_used: int


class ElasticTrainer:
    """Synchronous data-parallel training that survives worker loss.

    Parameters
    ----------
    num_workers:
        Target fleet size.  The fleet may shrink below this when workers
        die mid-step and grows back at step boundaries (``auto_respawn``).
    micro_shards:
        Fixed micro-shard count ``M`` (defaults to ``num_workers``).  The
        update trajectory depends on ``M`` and the data — never on the
        live worker count — so runs with different fleets but equal ``M``
        are bit-identical.
    step_timeout_s:
        Per-reply / per-fold-hop deadline; a worker silent past it is
        evicted and the step re-runs on the survivors.
    checkpoint_dir / checkpoint_every:
        When set, write an atomic ``ckpt-{step:08d}.npz`` every
        ``checkpoint_every`` global steps (and at every epoch end).
    keep_checkpoints:
        Retain at most this many newest checkpoints.
    auto_respawn:
        Top the fleet back up to ``num_workers`` at step boundaries.
    """

    def __init__(
        self,
        num_workers: int = 2,
        config: UNetConfig | None = None,
        learning_rate: float = 1e-3,
        micro_shards: int | None = None,
        seed: int = 0,
        step_timeout_s: float = _DEFAULT_STEP_TIMEOUT_S,
        checkpoint_dir: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 3,
        auto_respawn: bool = True,
        start_method: str = "fork",
        optimizer: Optimizer | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if micro_shards is not None and micro_shards < 1:
            raise ValueError("micro_shards must be >= 1")
        if start_method not in mp.get_all_start_methods():
            raise ValueError(f"start method {start_method!r} is not available")
        if start_method != "fork":
            raise ValueError("ElasticTrainer requires the fork start method "
                             "(workers inherit fault budgets and pipe ends)")
        self.num_workers = int(num_workers)
        self.micro_shards = int(micro_shards) if micro_shards is not None else self.num_workers
        self.config = config if config is not None else UNetConfig()
        self.seed = int(seed)
        self.step_timeout_s = float(step_timeout_s)
        self.checkpoint_dir = None if checkpoint_dir is None else str(checkpoint_dir)
        self.checkpoint_every = int(checkpoint_every)
        self.keep_checkpoints = int(keep_checkpoints)
        self.auto_respawn = bool(auto_respawn)
        self._ctx = mp.get_context(start_method)

        self.master = UNet(self.config)
        self.optimizer = optimizer if optimizer is not None else Adam(
            self.master.parameters(), lr=learning_rate
        )
        self.history = TrainingHistory()
        self.global_step = 0
        self.ring_rebuilds = 0
        self.worker_respawns = 0
        self.resumes = 0

        self._params = list(self.master.named_parameters().items())
        self._flat_size = int(sum(p.value.size for _name, p in self._params))
        self._weight_shm = None
        self._grad_shm = None
        self._weight_fields: list[SharedArrayField] = []
        self._acc_offset = 0
        self._workers: dict[int, _ElasticWorker] = {}
        self._next_rank = 0
        self._started = False

        registry = get_registry()
        self._m_step_ms = registry.histogram(
            "repro_train_step_ms", "Wall time of one elastic training step")
        self._m_allreduce_ms = registry.histogram(
            "repro_train_allreduce_ms", "Wall time of the gradient fold (all-reduce) per step")
        self._m_allreduce_bytes = registry.counter(
            "repro_train_allreduce_bytes_total", "Gradient bytes folded across workers")
        self._m_rebuilds = registry.counter(
            "repro_train_ring_rebuilds_total", "Ring rebuilds after worker eviction")
        self._m_respawns = registry.counter(
            "repro_train_worker_respawns_total", "Elastic workers respawned (grow)")
        self._m_resumes = registry.counter(
            "repro_train_resumes_total", "Training runs resumed from a checkpoint")
        self._m_checkpoints = registry.counter(
            "repro_train_checkpoints_total", "Checkpoints written")
        self._m_workers = registry.gauge(
            "repro_train_workers", "Live elastic training workers")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ElasticTrainer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self) -> None:
        """Lay out the shared segments and fork the worker fleet."""
        if self._started:
            return
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        offset = 0
        fields = []
        for name, param in self._params:
            offset = _aligned(offset)
            fields.append(SharedArrayField(name, tuple(param.value.shape), offset))
            offset += param.value.size * 4
        self._weight_fields = fields
        self._weight_shm = create_segment(max(offset, 1))
        self._acc_offset = _aligned(self.micro_shards * self._flat_size * 4)
        self._grad_shm = create_segment(self._acc_offset + self._flat_size * 8)
        self._publish_weights()
        self._workers = {}
        for _ in range(self.num_workers):
            self._spawn_worker()
        self._started = True
        self._m_workers.set(float(len(self._workers)))

    def close(self) -> None:
        """Stop the fleet and unlink the shared segments."""
        for worker in self._workers.values():
            worker.stop()
        self._workers = {}
        if self._weight_shm is not None:
            close_segment(self._weight_shm, unlink=True)
            self._weight_shm = None
        if self._grad_shm is not None:
            close_segment(self._grad_shm, unlink=True)
            self._grad_shm = None
        self._started = False
        self._m_workers.set(0.0)

    def _spawn_args(self):
        return (
            self.config,
            self.seed,
            self._weight_shm.name,
            tuple(self._weight_fields),
            self._grad_shm.name,
            self.micro_shards,
            self._flat_size,
            self._acc_offset,
        )

    def _spawn_worker(self) -> _ElasticWorker:
        rank = self._next_rank
        self._next_rank += 1
        worker = _ElasticWorker(
            self._ctx, rank, self._spawn_args(),
            siblings=[w.conn for w in self._workers.values()],
        )
        self._workers[rank] = worker
        return worker

    @property
    def live_workers(self) -> int:
        return sum(1 for w in self._workers.values()
                   if not w.dead and w.process.is_alive())

    def ping(self) -> dict[int, int]:
        """Heartbeat every live worker; evict the silent (watchdog probe)."""
        pids = {}
        for rank in list(self._workers):
            worker = self._workers[rank]
            try:
                worker.send("ping")
                pids[rank] = worker.recv(self.step_timeout_s)
            except RingBroken:
                self._evict(rank)
        return pids

    # ------------------------------------------------------------------ #
    # Ring membership
    # ------------------------------------------------------------------ #
    def _evict(self, rank: int) -> None:
        worker = self._workers.pop(rank, None)
        if worker is not None:
            worker.kill()
        self._m_workers.set(float(len(self._workers)))

    def _ensure_fleet(self) -> None:
        """Step-boundary grow: evict the silently dead, top back up to target."""
        for rank in list(self._workers):
            worker = self._workers[rank]
            if worker.dead or not worker.process.is_alive():
                self._evict(rank)
        if not self.auto_respawn:
            return
        while len(self._workers) < self.num_workers:
            self._spawn_worker()
            self.worker_respawns += 1
            self._m_respawns.inc()
        self._m_workers.set(float(len(self._workers)))

    def _publish_weights(self) -> None:
        for fld, (_name, param) in zip(self._weight_fields, self._params):
            ndarray_view(self._weight_shm, fld.shape, fld.offset)[...] = param.value

    # ------------------------------------------------------------------ #
    # One step
    # ------------------------------------------------------------------ #
    def _shard_batch(self, x: np.ndarray, y: np.ndarray):
        per = x.shape[0] // self.micro_shards
        if per == 0:
            return None
        return [
            (m, x[m * per:(m + 1) * per], y[m * per:(m + 1) * per])
            for m in range(self.micro_shards)
        ]

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float | None:
        """One synchronous step over a global batch (``None`` if too small).

        Survives any number of mid-step worker deaths: each eviction
        rebuilds the ring, re-shards onto the survivors and re-runs the
        step — determinism makes the retry bit-identical, so no batch is
        ever lost or double-counted.
        """
        if not self._started:
            self.start()
        shards = self._shard_batch(x, y)
        if shards is None:
            return None
        t_step = time.perf_counter()
        self._ensure_fleet()
        while True:
            ranks = sorted(
                rank for rank, w in self._workers.items() if not w.dead
            )
            if not ranks:
                raise ElasticTrainingError(
                    f"no live workers left at step {self.global_step}"
                )
            assignment = self._assign(ranks)
            try:
                losses = self._compute_phase(shards, assignment)
                fold_t0 = time.perf_counter()
                self._fold_phase(assignment)
                self._m_allreduce_ms.observe((time.perf_counter() - fold_t0) * 1e3)
                self._m_allreduce_bytes.inc(float(self.micro_shards * self._flat_size * 4))
                break
            except RingBroken as exc:
                self._evict(exc.rank)
                self.ring_rebuilds += 1
                self._m_rebuilds.inc()
        self._apply_update()
        self.global_step += 1
        self._m_step_ms.observe((time.perf_counter() - t_step) * 1e3)
        return float(np.mean([losses[m] for m in range(self.micro_shards)]))

    def _assign(self, ranks: list[int]) -> list[tuple[int, list[int]]]:
        """Contiguous micro-shard runs per live rank (rank order = slot order)."""
        splits = np.array_split(np.arange(self.micro_shards), len(ranks))
        return [(rank, [int(s) for s in split])
                for rank, split in zip(ranks, splits)]

    def _compute_phase(self, shards, assignment) -> dict[int, float]:
        # Send everything first so the shard computations overlap, then
        # collect with per-reply deadlines.  A failure still drains every
        # reply that was solicited before raising, so a retry never reads
        # a stale reply from the previous attempt.
        sent: list[int] = []
        failure: RingBroken | None = None
        for rank, slots in assignment:
            try:
                self._workers[rank].send(
                    "step", self.global_step, [shards[m] for m in slots]
                )
                sent.append(rank)
            except RingBroken as exc:
                failure = failure or exc
        losses: dict[int, float] = {}
        for rank in sent:
            if self._workers[rank].dead:
                continue
            try:
                losses.update(self._workers[rank].recv(self.step_timeout_s))
            except RingBroken as exc:
                failure = failure or exc
        if failure is not None:
            raise failure
        return losses

    def _fold_phase(self, assignment) -> None:
        """Chain-fold the micro-shard slots into the shared accumulator.

        The token walks the live ranks in order; each worker folds its
        contiguous slot run in index order, so the accumulation order is
        always slots ``0..M-1`` — independent of the fleet that runs it.
        """
        first = True
        for rank, slots in assignment:
            if not slots:
                continue
            worker = self._workers[rank]
            worker.send("fold", self.global_step, slots, first)
            worker.recv(self.step_timeout_s)
            first = False

    def _apply_update(self) -> None:
        acc = ndarray_view(self._grad_shm, (self._flat_size,),
                           offset=self._acc_offset, dtype=np.float64)
        offset = 0
        inv = 1.0 / self.micro_shards
        for _name, param in self._params:
            size = param.value.size
            param.grad[...] = (acc[offset:offset + size] * inv).astype(
                np.float32
            ).reshape(param.value.shape)
            offset += size
        self.optimizer.step()
        self._publish_weights()

    # ------------------------------------------------------------------ #
    # Checkpointing / resume
    # ------------------------------------------------------------------ #
    def _checkpoint_path(self) -> str:
        return os.path.join(self.checkpoint_dir, f"ckpt-{self.global_step:08d}.npz")

    def _save_checkpoint(self, epoch: int, step_in_epoch: int,
                         epoch_rng_state: dict, epoch_losses: list[float],
                         epoch_images: int) -> str:
        extra = {
            "epoch": epoch,
            "step_in_epoch": step_in_epoch,
            "global_step": self.global_step,
            "epoch_rng_state": epoch_rng_state,
            "epoch_losses": [float(v) for v in epoch_losses],
            "epoch_images": int(epoch_images),
            "completed_losses": [float(v) for v in self.history.losses],
            "micro_shards": self.micro_shards,
            "seed": self.seed,
        }
        path = save_checkpoint(
            self.master, self.optimizer, self._checkpoint_path(),
            metadata={"kind": "elastic-trainer"}, extra_state=extra,
        )
        self._m_checkpoints.inc()
        for old in latest_checkpoints(self.checkpoint_dir)[self.keep_checkpoints:]:
            try:
                os.unlink(old)
            except OSError:  # pragma: no cover - already gone
                pass
        return path

    def _load_latest(self) -> dict | None:
        """Newest loadable checkpoint's extra state; skips corrupt archives."""
        for path in latest_checkpoints(self.checkpoint_dir):
            try:
                return _load_checkpoint(self.master, self.optimizer, path)
            except CheckpointError:
                continue
        return None

    # ------------------------------------------------------------------ #
    # Epoch / fit loops
    # ------------------------------------------------------------------ #
    def fit(self, loader: BatchLoader, epochs: int = 1, resume: bool = False,
            verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs`` passes; the loader's batch size is the global batch.

        With ``resume=True`` (and a ``checkpoint_dir``), pick up from the
        newest readable checkpoint: restore model/optimiser, rewind the
        loader RNG to the interrupted epoch's start and replay the already
        -trained batches so the data trajectory continues bit-exactly.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not self._started:
            self.start()
        start_epoch = 0
        skip_steps = 0
        initial_losses: list[float] = []
        initial_images = 0
        if resume and self.checkpoint_dir:
            extra = self._load_latest()
            if extra:
                self.global_step = int(extra["global_step"])
                start_epoch = int(extra["epoch"])
                skip_steps = int(extra["step_in_epoch"])
                initial_losses = [float(v) for v in extra["epoch_losses"]]
                initial_images = int(extra["epoch_images"])
                loader.set_rng_state(extra["epoch_rng_state"])
                self.history = TrainingHistory()
                for e, loss in enumerate(extra["completed_losses"]):
                    self.history.append(EpochStats(
                        epoch=e, loss=float(loss), time_s=0.0, images_per_s=0.0))
                self.resumes += 1
                self._m_resumes.inc()
                self._publish_weights()
        for epoch in range(start_epoch, epochs):
            replay = skip_steps if epoch == start_epoch else 0
            losses = list(initial_losses) if epoch == start_epoch else []
            images = initial_images if epoch == start_epoch else 0
            stats = self._run_epoch(loader, epoch, replay, losses, images)
            self.history.append(stats)
            if verbose:  # pragma: no cover - console output
                print(f"[elastic x{self.live_workers}] epoch {epoch + 1}/{epochs} "
                      f"loss={stats.loss:.4f} time={stats.time_s:.2f}s")
        return self.history

    def _run_epoch(self, loader: BatchLoader, epoch: int, replay: int,
                   losses: list[float], images: int) -> EpochStats:
        # The loader RNG state *before* the permutation draw is what a
        # mid-epoch checkpoint must carry: restoring it and replaying the
        # first N batches re-consumes permutation + augmentation draws
        # exactly, which is the whole bit-exact-resume trick.
        epoch_rng_state = loader.rng_state()
        # Epoch-boundary heartbeat: busy workers are covered by per-reply
        # deadlines; this catches ones that wedged while idle.
        self.ping()
        start = time.perf_counter()
        step_in_epoch = 0
        for x, y in loader:
            step_in_epoch += 1
            if step_in_epoch <= replay:
                continue
            loss = self.train_step(x, y)
            if loss is None:
                continue
            losses.append(loss)
            images += x.shape[0]
            if (self.checkpoint_dir and self.checkpoint_every > 0
                    and self.global_step % self.checkpoint_every == 0):
                self._save_checkpoint(epoch, step_in_epoch, epoch_rng_state,
                                      losses, images)
        elapsed = time.perf_counter() - start
        stats = EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            time_s=elapsed,
            images_per_s=images / elapsed if elapsed > 0 else 0.0,
        )
        if self.checkpoint_dir:
            # Epoch-boundary checkpoint: cursor at the *next* epoch's start.
            self.history.append(stats)
            try:
                self._save_checkpoint(epoch + 1, 0, loader.rng_state(), [], 0)
            finally:
                self.history.epochs.pop()
        return stats

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def weights_digest(self) -> str:
        """SHA-256 over every parameter, in name order (bit-parity probe)."""
        digest = hashlib.sha256()
        for name, param in self._params:
            digest.update(name.encode("utf-8"))
            digest.update(np.ascontiguousarray(param.value).tobytes())
        return digest.hexdigest()

    def stats(self) -> dict:
        """Counters the CLI reports and the CI smoke asserts on."""
        return {
            "global_step": self.global_step,
            "live_workers": self.live_workers,
            "target_workers": self.num_workers,
            "micro_shards": self.micro_shards,
            "ring_rebuilds": self.ring_rebuilds,
            "worker_respawns": self.worker_respawns,
            "resumes": self.resumes,
            "weights_digest": self.weights_digest(),
        }


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN
