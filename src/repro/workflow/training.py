"""The U-Net-Man vs U-Net-Auto accuracy experiment (Tables IV, V and Figure 13).

The paper's central validation: train one U-Net on manually labelled tiles
and one on auto-labelled tiles, then evaluate both against the manual ground
truth of a held-out test set, once on the original (possibly cloudy) images
and once on the thin-cloud/shadow-filtered images, with an extra breakdown
of the test set by cloud coverage.  This module runs that whole experiment
on the synthetic archive and returns every number those tables and the
confusion-matrix figure need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..classes import CLASS_NAMES, SeaIceClass
from ..cloudshadow import CloudShadowFilter
from ..data.catalog import TileDataset, build_dataset, train_test_split
from ..data.loader import BatchLoader
from ..labeling.manual import simulate_manual_labels
from ..metrics.classification import ClassificationReport
from ..unet.model import UNet, UNetConfig
from ..unet.trainer import UNetTrainer
from .autolabel import AutoLabelWorkflow, AutoLabelWorkflowConfig

__all__ = ["AccuracyExperimentConfig", "AccuracyExperimentResult", "run_accuracy_experiment"]

_CLASS_NAMES = [CLASS_NAMES[SeaIceClass(i)] for i in range(len(SeaIceClass))]


@dataclass(frozen=True)
class AccuracyExperimentConfig:
    """Scale knobs of the accuracy experiment.

    The defaults run in a couple of minutes on a laptop CPU; the paper-scale
    configuration (66 scenes of 2048², 256-pixel tiles, depth-5/64-channel
    U-Net, 50 epochs) uses the same code path.
    """

    num_scenes: int = 6
    scene_size: int = 128
    tile_size: int = 32
    cloudy_fraction: float = 0.5
    test_fraction: float = 0.2
    epochs: int = 30
    batch_size: int = 8
    learning_rate: float = 2e-3
    unet_depth: int = 3
    unet_base_channels: int = 12
    unet_dropout: float = 0.1
    cloud_split_threshold: float = 0.10
    seed: int = 0

    def unet_config(self, seed_offset: int = 0) -> UNetConfig:
        return UNetConfig(
            depth=self.unet_depth,
            base_channels=self.unet_base_channels,
            dropout=self.unet_dropout,
            seed=self.seed + seed_offset,
        )


@dataclass
class AccuracyExperimentResult:
    """Everything Tables IV/V and Figure 13 report, for both models."""

    config: AccuracyExperimentConfig
    unet_man: UNet
    unet_auto: UNet
    #: {"original" | "filtered"} -> {"man" | "auto"} -> ClassificationReport  (Table IV)
    table4: dict = field(default_factory=dict)
    #: {"cloudy" | "clear"} -> {"original" | "filtered"} -> {"man" | "auto"} -> report (Table V)
    table5: dict = field(default_factory=dict)
    #: auto-label quality on the training split (the Fig 11 / SSIM result)
    autolabel_ssim: float = 0.0
    autolabel_agreement: float = 0.0

    # ------------------------------------------------------------------ #
    def table4_rows(self) -> list[dict]:
        """Rows in the layout of the paper's Table IV (percent accuracy)."""
        rows = []
        for variant, label in (("original", "Original S2 images"), ("filtered", "S2 images with thin cloud and shadow filtered")):
            rows.append(
                {
                    "dataset": label,
                    "unet_man_accuracy_pct": round(self.table4[variant]["man"].accuracy * 100, 2),
                    "unet_auto_accuracy_pct": round(self.table4[variant]["auto"].accuracy * 100, 2),
                }
            )
        return rows

    def table5_rows(self) -> list[dict]:
        """Rows in the layout of the paper's Table V."""
        rows = []
        labels = {"cloudy": "More than ~10% cloud and shadow cover", "clear": "Less than ~10% cloud and shadow cover"}
        for split in ("cloudy", "clear"):
            for variant in ("original", "filtered"):
                reports = self.table5[split].get(variant)
                if reports is None:
                    continue
                rows.append(
                    {
                        "dataset": labels[split],
                        "images": f"{variant} images",
                        "unet_man_accuracy_pct": round(reports["man"].accuracy * 100, 2),
                        "unet_auto_accuracy_pct": round(reports["auto"].accuracy * 100, 2),
                    }
                )
        return rows

    def confusion_matrices(self) -> dict:
        """Row-normalised confusion matrices (percent) for Figure 13."""
        out = {}
        for variant in ("original", "filtered"):
            for model in ("man", "auto"):
                out[f"{model}_{variant}"] = np.round(self.table4[variant][model].confusion_percent, 2)
        return out


# --------------------------------------------------------------------------- #
def _train_model(
    config: AccuracyExperimentConfig,
    images: np.ndarray,
    labels: np.ndarray,
    seed_offset: int,
) -> UNetTrainer:
    trainer = UNetTrainer(config=config.unet_config(seed_offset), learning_rate=config.learning_rate)
    loader = BatchLoader(
        images,
        labels,
        batch_size=config.batch_size,
        shuffle=True,
        augment=True,
        seed=config.seed + seed_offset,
    )
    trainer.fit(loader, epochs=config.epochs)
    return trainer


def _evaluate(trainer: UNetTrainer, images: np.ndarray, labels: np.ndarray) -> ClassificationReport:
    return trainer.evaluate(images, labels, class_names=_CLASS_NAMES)


def run_accuracy_experiment(
    config: AccuracyExperimentConfig = AccuracyExperimentConfig(),
    dataset: TileDataset | None = None,
) -> AccuracyExperimentResult:
    """Run the full U-Net-Man vs U-Net-Auto comparison.

    Steps (mirroring Figure 2 of the paper):

    1. build (or accept) the tile dataset with ground truth;
    2. derive simulated manual labels and colour-segmentation auto-labels
       (auto-labels are computed on cloud/shadow-filtered tiles);
    3. split 80/20 into train / test tiles;
    4. train U-Net-Man on the manual labels and U-Net-Auto on the auto labels
       (both on filtered training imagery, as in the paper's workflow);
    5. evaluate both models against manual ground truth on the original and
       the filtered test imagery, overall (Table IV) and split by cloud
       coverage (Table V), with per-class confusion matrices (Figure 13).
    """
    if dataset is None:
        dataset = build_dataset(
            num_scenes=config.num_scenes,
            scene_size=config.scene_size,
            tile_size=config.tile_size,
            base_seed=config.seed,
            cloudy_fraction=config.cloudy_fraction,
        )

    train_ds, test_ds = train_test_split(dataset, test_fraction=config.test_fraction, seed=config.seed)

    # --- labels for training -------------------------------------------------
    manual_train = simulate_manual_labels(train_ds.labels, seed=config.seed)
    autolabel_workflow = AutoLabelWorkflow(AutoLabelWorkflowConfig(backend="serial", apply_cloud_filter=True))
    auto_result = autolabel_workflow.run(train_ds, manual_labels=manual_train)
    auto_train = auto_result.auto_labels

    # --- training imagery: thin-cloud/shadow-filtered tiles ------------------
    cloud_filter = CloudShadowFilter()
    train_filtered = cloud_filter.apply_batch(train_ds.images)
    test_filtered = cloud_filter.apply_batch(test_ds.images)

    trainer_man = _train_model(config, train_filtered, manual_train, seed_offset=1)
    trainer_auto = _train_model(config, train_filtered, auto_train, seed_offset=2)

    # --- evaluation -----------------------------------------------------------
    # Ground truth of the test tiles plays the role of the manual validation labels.
    test_truth = test_ds.labels
    table4 = {
        "original": {
            "man": _evaluate(trainer_man, test_ds.images, test_truth),
            "auto": _evaluate(trainer_auto, test_ds.images, test_truth),
        },
        "filtered": {
            "man": _evaluate(trainer_man, test_filtered, test_truth),
            "auto": _evaluate(trainer_auto, test_filtered, test_truth),
        },
    }

    cloudy_ds, clear_ds = test_ds.split_by_cloud_coverage(config.cloud_split_threshold)
    table5: dict = {"cloudy": {}, "clear": {}}
    for split_name, split_ds in (("cloudy", cloudy_ds), ("clear", clear_ds)):
        if len(split_ds) == 0:
            continue
        split_filtered = cloud_filter.apply_batch(split_ds.images)
        table5[split_name] = {
            "original": {
                "man": _evaluate(trainer_man, split_ds.images, split_ds.labels),
                "auto": _evaluate(trainer_auto, split_ds.images, split_ds.labels),
            },
            "filtered": {
                "man": _evaluate(trainer_man, split_filtered, split_ds.labels),
                "auto": _evaluate(trainer_auto, split_filtered, split_ds.labels),
            },
        }

    return AccuracyExperimentResult(
        config=config,
        unet_man=trainer_man.model,
        unet_auto=trainer_auto.model,
        table4=table4,
        table5=table5,
        autolabel_ssim=auto_result.ssim_vs_manual,
        autolabel_agreement=auto_result.pixel_agreement,
    )
