"""Synthetic Sentinel-2 data substrate.

Because the original Sentinel-2 Ross Sea archive cannot be downloaded in
this environment, this package generates physically-motivated synthetic
scenes (ice-floe class maps, per-class radiometry, thin-cloud and shadow
veils) along with exact ground truth, and provides the tiling, cataloguing
and batch-loading machinery the workflow needs.
"""

from .io import load_dataset, save_dataset
from .catalog import TileDataset, TileRecord, build_dataset, tiles_from_scenes, train_test_split
from .clouds import CloudShadowField, generate_cloud_field, generate_cloud_shadow_pair
from .loader import BatchLoader, augment_batch, augment_pair, image_to_tensor, labels_to_onehot
from .noise import fractal_noise, smooth_blobs, spectral_noise
from .radiometry import (
    CLASS_RGB_PROTOTYPES,
    CLASS_TEXTURE_AMPLITUDE,
    CLOUD_CONTAMINANT_RGB,
    SHADOW_CONTAMINANT_RGB,
    mix_contaminant,
    prototype_array,
    render_class_map,
)
from .scene import Scene, SceneSpec, synthesize_scene, synthesize_scenes

__all__ = [
    "load_dataset",
    "save_dataset",
    "TileDataset",
    "TileRecord",
    "build_dataset",
    "tiles_from_scenes",
    "train_test_split",
    "CloudShadowField",
    "generate_cloud_field",
    "generate_cloud_shadow_pair",
    "BatchLoader",
    "augment_batch",
    "augment_pair",
    "image_to_tensor",
    "labels_to_onehot",
    "fractal_noise",
    "smooth_blobs",
    "spectral_noise",
    "CLASS_RGB_PROTOTYPES",
    "CLASS_TEXTURE_AMPLITUDE",
    "CLOUD_CONTAMINANT_RGB",
    "SHADOW_CONTAMINANT_RGB",
    "mix_contaminant",
    "prototype_array",
    "render_class_map",
    "Scene",
    "SceneSpec",
    "synthesize_scene",
    "synthesize_scenes",
]
