"""Shared-memory model store for the process backend.

Publishing a model serialises it **once** into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment holding

* every ``state_dict`` parameter array, and
* the pre-packed ``(F, k·k·C)`` GEMM weight matrix + bias column of every
  convolution a compiled plan binds (see
  :func:`repro.unet.compiled.iter_plan_conv_layers` /
  :func:`repro.nn.plan.pack_conv_weights`).

Workers receive only a tiny picklable :class:`SharedModelSpec` (segment name
plus array offsets) and :func:`attach_model` rebuilds the model with its
parameter values *aliased* to read-only views of the one shared segment —
N workers, one physical copy, no per-worker pickling and no per-worker
re-packing.  Packing is input-shape independent, so the shared pack serves
every plan shape a worker compiles.

The same segment helpers back the backend's input/output arenas: a tile
batch is written into a shared input segment once and each worker's compiled
plan softmaxes straight into a shared output arena (``plan.run(out=…)``),
so task messages carry only span indices.
"""

from __future__ import annotations

import itertools
import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..obs.metrics import get_registry
from ..reliability import fault_point

__all__ = [
    "SEGMENT_PREFIX",
    "SharedArrayField",
    "SharedModelSpec",
    "SharedModelStore",
    "AttachedModel",
    "attach_model",
    "create_segment",
    "attach_segment",
    "ndarray_view",
]

#: Every segment this store creates carries this prefix, so leak checks can
#: assert ``/dev/shm`` holds no ``repro_ms_*`` entries after a backend closes.
SEGMENT_PREFIX = "repro_ms_"

_ALIGN = 64  # cache-line align every array so BLAS sees friendly operands
_counter = itertools.count()


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{next(_counter):x}_{secrets.token_hex(4)}"


def create_segment(nbytes: int, name: str | None = None) -> shared_memory.SharedMemory:
    """Create (and own) a shared-memory segment of at least ``nbytes``."""
    return shared_memory.SharedMemory(
        name=name or _new_segment_name(), create=True, size=max(1, int(nbytes))
    )


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment owned by the parent process.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the mapping with
    the resource tracker even when merely attaching.  Backend workers share
    the parent's tracker process (multiprocessing hands the tracker down),
    whose cache is a *set* of names — the attach-side register is therefore
    an idempotent no-op, and calling ``unregister`` here would delete the
    *owner's* registration (KeyError spam at unlink, leaked segments on
    crash).  So: attach plainly, never unregister from the attach side, and
    let the creating process's unlink do the single balanced unregister.
    """
    fault_point("shm_attach_fail")
    return shared_memory.SharedMemory(name=name)


def close_segment(shm: shared_memory.SharedMemory, unlink: bool = False) -> None:
    """Close (and optionally unlink) a segment, tolerating live array views.

    ``SharedMemory.close`` raises ``BufferError`` while ndarray views of the
    buffer are still alive; during teardown the mapping is reclaimed at
    process exit anyway, so a lingering view must not turn shutdown into a
    crash.
    """
    try:
        shm.close()
    except BufferError:
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def ndarray_view(
    shm: shared_memory.SharedMemory,
    shape: tuple[int, ...],
    offset: int = 0,
    dtype=np.float32,
    writeable: bool = True,
) -> np.ndarray:
    """A (optionally read-only) ndarray aliasing ``shm``'s buffer at ``offset``."""
    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
    if not writeable:
        view.flags.writeable = False
    return view


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class SharedArrayField:
    """Location of one float32 array inside a model segment."""

    name: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * 4 if self.shape else 4


@dataclass(frozen=True)
class SharedModelSpec:
    """Everything a worker needs to rebuild a published model (picklable, tiny)."""

    key: object
    segment_name: str
    unet_config: object  # UNetConfig (frozen dataclass, pickles by value)
    params: tuple[SharedArrayField, ...]
    packed: tuple[tuple[str, SharedArrayField, SharedArrayField | None], ...]
    cloud_filter: object | None = None
    plan_cache_size: int = 8
    warm_shapes: tuple[tuple[int, ...], ...] = field(default_factory=tuple)


class SharedModelStore:
    """Parent-side registry of published model segments (one per key)."""

    def __init__(self) -> None:
        self._segments: dict[object, shared_memory.SharedMemory] = {}
        self._specs: dict[object, SharedModelSpec] = {}
        self._m_bytes = get_registry().gauge(
            "repro_store_shm_bytes",
            "Bytes of shared memory held by published model segments",
        )
        self._m_models = get_registry().gauge(
            "repro_store_models",
            "Models currently published in the shared store",
        )

    def _update_gauges(self) -> None:
        self._m_bytes.set(float(sum(shm.size for shm in self._segments.values())))
        self._m_models.set(float(len(self._segments)))

    # ------------------------------------------------------------------ #
    def publish(
        self,
        key,
        model,
        cloud_filter=None,
        *,
        plan_cache_size: int = 8,
        warm_shapes=(),
    ) -> SharedModelSpec:
        """Lay ``model`` out in one shared segment and return its spec.

        Re-publishing an existing key replaces the old segment (hot-swap).
        """
        from ..nn.plan import pack_conv_weights
        from ..unet.compiled import iter_plan_conv_layers
        from ..unet.model import UNet

        if not isinstance(model, UNet):
            raise TypeError(
                f"the shared model store requires a UNet, got {type(model).__name__}"
            )

        state = {name: p.value for name, p in model.named_parameters().items()}
        packs = {name: pack_conv_weights(conv) for name, conv in iter_plan_conv_layers(model)}

        # First pass: compute the aligned layout.
        offset = 0
        param_fields: list[SharedArrayField] = []
        for name, value in state.items():
            offset = _aligned(offset)
            param_fields.append(SharedArrayField(name, tuple(value.shape), offset))
            offset += value.size * 4
        packed_fields: list[tuple[str, SharedArrayField, SharedArrayField | None]] = []
        for name, (w_mat, bias) in packs.items():
            offset = _aligned(offset)
            w_field = SharedArrayField(name, tuple(w_mat.shape), offset)
            offset += w_mat.size * 4
            b_field = None
            if bias is not None:
                offset = _aligned(offset)
                b_field = SharedArrayField(name, tuple(bias.shape), offset)
                offset += bias.size * 4
            packed_fields.append((name, w_field, b_field))

        # Second pass: copy everything in.
        shm = create_segment(offset)
        try:
            for fld in param_fields:
                ndarray_view(shm, fld.shape, fld.offset)[...] = state[fld.name]
            for name, w_field, b_field in packed_fields:
                w_mat, bias = packs[name]
                ndarray_view(shm, w_field.shape, w_field.offset)[...] = w_mat
                if b_field is not None:
                    ndarray_view(shm, b_field.shape, b_field.offset)[...] = bias
        except BaseException:
            close_segment(shm, unlink=True)
            raise

        spec = SharedModelSpec(
            key=key,
            segment_name=shm.name,
            unet_config=model.config,
            params=tuple(param_fields),
            packed=tuple(packed_fields),
            cloud_filter=cloud_filter,
            plan_cache_size=int(plan_cache_size),
            warm_shapes=tuple(tuple(int(d) for d in s) for s in warm_shapes),
        )
        self.release(key)
        self._segments[key] = shm
        self._specs[key] = spec
        self._update_gauges()
        return spec

    def spec(self, key) -> SharedModelSpec:
        return self._specs[key]

    def specs(self) -> list[SharedModelSpec]:
        return list(self._specs.values())

    def __contains__(self, key) -> bool:
        return key in self._specs

    def keys(self) -> list:
        return list(self._specs)

    def release(self, key) -> None:
        """Unlink ``key``'s segment (no-op when absent)."""
        shm = self._segments.pop(key, None)
        self._specs.pop(key, None)
        if shm is not None:
            close_segment(shm, unlink=True)
            self._update_gauges()

    def close(self) -> None:
        for key in list(self._segments):
            self.release(key)


class AttachedModel:
    """Worker-side handle: a model whose weights alias the shared segment.

    The rebuilt model's parameter values are **read-only views** into the
    published segment, and its :class:`~repro.unet.compiled.CompiledUNet`
    binds the shared pre-packed GEMM operands — attaching costs one mmap
    plus module construction, never a weight copy or a re-pack.
    """

    def __init__(self, spec: SharedModelSpec) -> None:
        from ..unet.compiled import CompiledUNet
        from ..unet.model import UNet

        self.spec = spec
        self.shm = attach_segment(spec.segment_name)
        model = UNet(spec.unet_config)
        params = model.named_parameters()
        for fld in spec.params:
            param = params[fld.name]
            if tuple(param.value.shape) != fld.shape:  # pragma: no cover - defensive
                raise ValueError(f"shared layout mismatch for parameter {fld.name!r}")
            param.value = ndarray_view(self.shm, fld.shape, fld.offset, writeable=False)
        model.eval()
        packed = {
            name: (
                ndarray_view(self.shm, w.shape, w.offset, writeable=False),
                None if b is None else ndarray_view(self.shm, b.shape, b.offset, writeable=False),
            )
            for name, w, b in spec.packed
        }
        self.model = model
        self.cloud_filter = spec.cloud_filter
        self.engine = CompiledUNet(model, max_plans=spec.plan_cache_size, packed_weights=packed)
        for shape in spec.warm_shapes:
            self.engine.warm(shape)

    def predict(self, batch: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        from ..unet.inference import predict_batch_probabilities

        return predict_batch_probabilities(
            batch, self.model, self.cloud_filter, engine=self.engine, out=out
        )

    def warm(self, batch_shape: tuple[int, ...]) -> None:
        """Run one throwaway ``(N, H, W, C)`` batch to bring a plan fully hot.

        Compiling a plan is cheap; its *first execution* is not — it
        first-touches the workspace arena (page faults on tens of MB).  The
        parent broadcasts a warm for each new stack shape so no real request
        ever lands on a cold plan.
        """
        if self.engine is not None:
            self.predict(np.zeros(tuple(batch_shape), dtype=np.uint8))

    def close(self) -> None:
        """Detach from the segment (drops the weight views first)."""
        self.engine = None
        self.model = None
        close_segment(self.shm)


def attach_model(spec: SharedModelSpec) -> AttachedModel:
    """Attach to a published model (worker-side entry point)."""
    return AttachedModel(spec)
