"""Colour-segmentation auto-labeling (paper §III-B, Figure 6).

Each Sentinel-2 RGB tile is converted to HSV; per-class masks are built from
the fixed HSV lower/upper bounds the paper determined for the Ross Sea
summer season, and the masks are merged into a single class map / colour
label image.  Optionally the thin-cloud/shadow filter is applied first,
which is the configuration that produces the paper's best results.

The per-pixel work is completely independent across tiles, which is what
makes the process embarrassingly parallel — the multiprocessing and
map-reduce scaling experiments (Tables I and II) both parallelise exactly
this function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..classes import HSV_RANGES, NUM_CLASSES, SeaIceClass, class_map_to_color
from ..cloudshadow import CloudShadowFilter
from ..imops import rgb_to_hsv

__all__ = ["AutoLabelResult", "ColorSegmentationLabeler", "autolabel_tile", "autolabel_batch"]


@dataclass
class AutoLabelResult:
    """Output of auto-labeling one tile."""

    class_map: np.ndarray  #: (H, W) uint8 class ids
    label_image: np.ndarray  #: (H, W, 3) uint8 red/blue/green label rendering
    masks: dict  #: per-class boolean masks keyed by :class:`SeaIceClass`
    filtered_rgb: np.ndarray | None = None  #: cloud/shadow-filtered input, if filtering was enabled


@dataclass
class ColorSegmentationLabeler:
    """HSV colour-range segmentation labeler.

    Parameters
    ----------
    hsv_ranges:
        Mapping of class → :class:`~repro.classes.HSVRange`.  Defaults to the
        paper's published thresholds.  The ranges must not overlap; pixels
        matching no range are assigned to the nearest range by HSV value.
    apply_cloud_filter:
        Run the thin-cloud/shadow filter before segmentation (the paper's
        recommended configuration).
    cloud_filter:
        The filter instance to use when ``apply_cloud_filter`` is set.
    """

    hsv_ranges: dict = field(default_factory=lambda: dict(HSV_RANGES))
    apply_cloud_filter: bool = False
    cloud_filter: CloudShadowFilter = field(default_factory=CloudShadowFilter)

    def __post_init__(self) -> None:
        if set(self.hsv_ranges.keys()) != set(SeaIceClass):
            raise ValueError("hsv_ranges must define a range for every SeaIceClass")

    # ------------------------------------------------------------------ #
    def class_masks(self, hsv: np.ndarray) -> dict:
        """Per-class boolean masks from an HSV image (may leave pixels unassigned)."""
        return {cls: rng.contains(hsv) for cls, rng in self.hsv_ranges.items()}

    def segment(self, rgb: np.ndarray) -> AutoLabelResult:
        """Auto-label one ``(H, W, 3)`` uint8 RGB tile."""
        img = np.asarray(rgb)
        if img.ndim != 3 or img.shape[-1] != 3:
            raise ValueError(f"expected (H, W, 3) RGB image, got shape {img.shape}")

        filtered = None
        if self.apply_cloud_filter:
            filtered = self.cloud_filter.filter_image(img)
            working = filtered
        else:
            working = img

        hsv = rgb_to_hsv(working)
        masks = self.class_masks(hsv)

        class_map = np.full(hsv.shape[:2], 255, dtype=np.uint8)
        for cls in SeaIceClass:
            mask = masks[cls]
            class_map[mask & (class_map == 255)] = int(cls)

        unassigned = class_map == 255
        if unassigned.any():
            class_map[unassigned] = self._nearest_class(hsv[unassigned])

        return AutoLabelResult(
            class_map=class_map,
            label_image=class_map_to_color(class_map),
            masks=masks,
            filtered_rgb=filtered,
        )

    def _nearest_class(self, hsv_pixels: np.ndarray) -> np.ndarray:
        """Assign leftover pixels to the class whose value band is closest."""
        values = hsv_pixels[..., 2].astype(np.int32)
        centers = np.zeros(NUM_CLASSES, dtype=np.int32)
        for cls, rng in self.hsv_ranges.items():
            centers[int(cls)] = (rng.lower[2] + rng.upper[2]) // 2
        dist = np.abs(values[:, None] - centers[None, :])
        return np.argmin(dist, axis=1).astype(np.uint8)

    # ------------------------------------------------------------------ #
    def __call__(self, rgb: np.ndarray) -> np.ndarray:
        """Return only the class map (the form used by the parallel pipelines)."""
        return self.segment(rgb).class_map

    def label_batch(self, tiles: np.ndarray) -> np.ndarray:
        """Auto-label a ``(N, H, W, 3)`` stack of tiles into ``(N, H, W)`` class maps."""
        stack = np.asarray(tiles)
        if stack.ndim != 4 or stack.shape[-1] != 3:
            raise ValueError(f"expected (N, H, W, 3) tile stack, got shape {stack.shape}")
        return np.stack([self(stack[i]) for i in range(stack.shape[0])])


def autolabel_tile(rgb: np.ndarray, apply_cloud_filter: bool = True) -> np.ndarray:
    """Label one tile with default settings; module-level function so it pickles cleanly
    for the multiprocessing and map-reduce backends."""
    labeler = ColorSegmentationLabeler(apply_cloud_filter=apply_cloud_filter)
    return labeler(rgb)


def autolabel_batch(tiles: np.ndarray, apply_cloud_filter: bool = True) -> np.ndarray:
    """Label a stack of tiles with default settings (serial reference implementation)."""
    labeler = ColorSegmentationLabeler(apply_cloud_filter=apply_cloud_filter)
    return labeler.label_batch(tiles)
