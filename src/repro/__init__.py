"""repro: a parallel workflow for polar sea-ice classification using auto-labeling
of (synthetic) Sentinel-2 imagery.

Reproduction of Iqrah et al., "A Parallel Workflow for Polar Sea-Ice
Classification using Auto-labeling of Sentinel-2 Imagery".  The package is
organised as a set of substrates (image ops, synthetic data, map-reduce
engine, NumPy deep-learning framework, distributed training) plus the
paper's workflow layered on top; see DESIGN.md for the inventory and
EXPERIMENTS.md for the per-table reproduction status.
"""

from . import classes, cloudshadow, data, distributed, imops, labeling, mapreduce, metrics, nn, parallel, unet, workflow
from .classes import CLASS_NAMES, HSV_RANGES, LABEL_COLORS, NUM_CLASSES, SeaIceClass

__version__ = "1.0.0"

__all__ = [
    "classes",
    "cloudshadow",
    "data",
    "distributed",
    "imops",
    "labeling",
    "mapreduce",
    "metrics",
    "nn",
    "parallel",
    "unet",
    "workflow",
    "CLASS_NAMES",
    "HSV_RANGES",
    "LABEL_COLORS",
    "NUM_CLASSES",
    "SeaIceClass",
    "__version__",
]
