"""Tests for repro.data.catalog (tile datasets and splits)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_dataset, tiles_from_scenes, train_test_split
from repro.data.scene import SceneSpec, synthesize_scene


class TestTilesFromScenes:
    def test_tile_count_matches_grid(self):
        scenes = [synthesize_scene(SceneSpec(height=64, width=96, seed=i)) for i in range(2)]
        ds = tiles_from_scenes(scenes, tile_size=32)
        assert len(ds) == 2 * 2 * 3
        assert ds.images.shape == (12, 32, 32, 3)
        assert ds.labels.shape == (12, 32, 32)

    def test_records_reference_scenes(self):
        scenes = [synthesize_scene(SceneSpec(height=64, width=64, seed=i)) for i in range(3)]
        ds = tiles_from_scenes(scenes, tile_size=32)
        assert {r.scene_index for r in ds.records} == {0, 1, 2}
        assert all(0.0 <= r.cloud_shadow_fraction <= 1.0 for r in ds.records)

    def test_empty_scene_list_raises(self):
        with pytest.raises(ValueError):
            tiles_from_scenes([], tile_size=32)


class TestTileDataset:
    def test_build_dataset_shapes(self, tiny_dataset):
        assert len(tiny_dataset) == 8
        assert tiny_dataset.tile_size == 32
        assert tiny_dataset.images.dtype == np.uint8
        assert tiny_dataset.clean_images.shape == tiny_dataset.images.shape

    def test_subset_preserves_alignment(self, tiny_dataset):
        sub = tiny_dataset.subset([3, 1])
        np.testing.assert_array_equal(sub.images[0], tiny_dataset.images[3])
        np.testing.assert_array_equal(sub.labels[1], tiny_dataset.labels[1])
        assert sub.records[0].tile_index == tiny_dataset.records[3].tile_index

    def test_class_distribution_sums_to_one(self, tiny_dataset):
        dist = tiny_dataset.class_distribution()
        assert dist.shape == (3,)
        assert np.isclose(dist.sum(), 1.0)

    def test_split_by_cloud_coverage_partitions(self):
        ds = build_dataset(num_scenes=4, scene_size=64, tile_size=32, base_seed=9, cloudy_fraction=0.8)
        cloudy, clear = ds.split_by_cloud_coverage(0.10)
        assert len(cloudy) + len(clear) == len(ds)
        assert all(r.cloud_shadow_fraction > 0.10 for r in cloudy.records)
        assert all(r.cloud_shadow_fraction <= 0.10 for r in clear.records)

    def test_mismatched_lengths_raise(self, tiny_dataset):
        from repro.data import TileDataset

        with pytest.raises(ValueError):
            TileDataset(
                images=tiny_dataset.images,
                clean_images=tiny_dataset.clean_images,
                labels=tiny_dataset.labels[:-1],
                records=tiny_dataset.records,
            )


class TestTrainTestSplit:
    def test_sizes(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, test_fraction=0.25, seed=1)
        assert len(test) == 2
        assert len(train) == 6

    def test_disjoint_and_exhaustive(self, tiny_dataset):
        train, test = train_test_split(tiny_dataset, test_fraction=0.25, seed=1)
        train_keys = {(r.scene_index, r.tile_index) for r in train.records}
        test_keys = {(r.scene_index, r.tile_index) for r in test.records}
        assert not train_keys & test_keys
        assert len(train_keys | test_keys) == len(tiny_dataset)

    def test_reproducible(self, tiny_dataset):
        a_train, _ = train_test_split(tiny_dataset, seed=5)
        b_train, _ = train_test_split(tiny_dataset, seed=5)
        np.testing.assert_array_equal(a_train.images, b_train.images)

    def test_different_seeds_differ(self, tiny_dataset):
        a_train, _ = train_test_split(tiny_dataset, seed=1)
        b_train, _ = train_test_split(tiny_dataset, seed=2)
        assert not np.array_equal(a_train.images, b_train.images)

    def test_rejects_bad_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(tiny_dataset, test_fraction=1.0)
