"""Tests for repro.data.io (dataset persistence)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset, train_test_split


class TestDatasetIO:
    def test_round_trip(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "archive")
        assert path.endswith(".npz")
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.images, tiny_dataset.images)
        np.testing.assert_array_equal(loaded.clean_images, tiny_dataset.clean_images)
        np.testing.assert_array_equal(loaded.labels, tiny_dataset.labels)
        assert len(loaded.records) == len(tiny_dataset.records)
        for a, b in zip(loaded.records, tiny_dataset.records):
            assert (a.scene_index, a.tile_index) == (b.scene_index, b.tile_index)
            assert a.cloud_shadow_fraction == pytest.approx(b.cloud_shadow_fraction)

    def test_loaded_dataset_supports_splits(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "archive.npz")
        loaded = load_dataset(path)
        train, test = train_test_split(loaded, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(tiny_dataset)

    def test_load_without_suffix(self, tiny_dataset, tmp_path):
        save_dataset(tiny_dataset, tmp_path / "archive")
        loaded = load_dataset(tmp_path / "archive")
        assert len(loaded) == len(tiny_dataset)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "does_not_exist.npz")

    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, something=np.zeros(3))
        with pytest.raises(ValueError):
            load_dataset(path)
