"""Model checkpoint I/O: save and load module weights as ``.npz`` archives.

Two levels are provided: ``save_weights`` / ``load_weights`` persist model
parameters only, while ``save_checkpoint`` / ``load_checkpoint`` bundle the
model *and* the full optimiser state (Adam moments and step count, SGD
velocity, every hyper-parameter) so a resumed run continues exactly where it
stopped instead of silently restarting the adaptive state.
"""

from __future__ import annotations

import os

import numpy as np

from .module import Module
from .optimizers import Optimizer

__all__ = ["save_weights", "load_weights", "save_checkpoint", "load_checkpoint"]

_MODEL_PREFIX = "model/"
_OPTIM_PREFIX = "optim/"


def save_weights(module: Module, path: str | os.PathLike) -> str:
    """Write every parameter of ``module`` to a compressed ``.npz`` file.

    Returns the path written (with ``.npz`` appended if missing).
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    state = module.state_dict()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_weights(module: Module, path: str | os.PathLike) -> Module:
    """Load weights saved by :func:`save_weights` into ``module`` (strict match)."""
    path = str(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def save_checkpoint(module: Module, optimizer: Optimizer, path: str | os.PathLike) -> str:
    """Write model parameters and the complete optimiser state to one ``.npz``.

    Returns the path written (with ``.npz`` appended if missing).
    """
    path = str(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    state: dict[str, np.ndarray] = {}
    for key, value in module.state_dict().items():
        state[_MODEL_PREFIX + key] = value
    for key, value in optimizer.state_dict().items():
        state[_OPTIM_PREFIX + key] = np.asarray(value)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_checkpoint(module: Module, optimizer: Optimizer, path: str | os.PathLike) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` (strict match)."""
    path = str(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    model_state: dict[str, np.ndarray] = {}
    optim_state: dict[str, np.ndarray] = {}
    with np.load(path) as archive:
        for key in archive.files:
            if key.startswith(_MODEL_PREFIX):
                model_state[key[len(_MODEL_PREFIX):]] = archive[key]
            elif key.startswith(_OPTIM_PREFIX):
                optim_state[key[len(_OPTIM_PREFIX):]] = archive[key]
            else:
                raise KeyError(f"unexpected checkpoint key {key!r}")
    if not optim_state:
        raise KeyError("checkpoint has no optimizer state (was it saved with save_weights?)")
    module.load_state_dict(model_state)
    optimizer.load_state_dict(optim_state)
