"""Tests for repro.unet (model, trainer, inference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BatchLoader
from repro.unet import (
    SceneClassifier,
    InferenceConfig,
    UNet,
    UNetConfig,
    UNetTrainer,
    build_unet,
    paper_unet_config,
    predict_tiles,
    tiny_unet_config,
)


@pytest.fixture(scope="module")
def tiny_model():
    return UNet(tiny_unet_config(seed=1))


class TestUNetModel:
    def test_output_shape(self, tiny_model):
        x = np.random.default_rng(0).random((2, 3, 32, 32)).astype(np.float32)
        logits = tiny_model.forward(x)
        assert logits.shape == (2, 3, 32, 32)

    def test_paper_configuration_matches_description(self):
        """Paper: 28 convolutional layers, 5 down-sampling steps, 256x256 inputs."""
        model = UNet(paper_unet_config())
        assert model.num_conv_layers() == 28
        assert len(model.encoders) == 5
        assert len(model.decoders) == 5
        assert model.config.min_input_size() == 32  # 256 is a valid input size
        assert 256 % model.config.min_input_size() == 0

    def test_predict_returns_valid_classes(self, tiny_model):
        x = np.random.default_rng(1).random((1, 3, 32, 32)).astype(np.float32)
        pred = tiny_model.predict(x)
        assert pred.shape == (1, 32, 32)
        assert set(np.unique(pred)).issubset({0, 1, 2})

    def test_predict_proba_sums_to_one(self, tiny_model):
        x = np.random.default_rng(2).random((1, 3, 32, 32)).astype(np.float32)
        probs = tiny_model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_predict_restores_training_mode(self, tiny_model):
        tiny_model.train()
        tiny_model.predict(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert tiny_model.training

    def test_rejects_indivisible_input(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.zeros((1, 3, 30, 30), dtype=np.float32))

    def test_rejects_wrong_channels(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model.forward(np.zeros((1, 4, 32, 32), dtype=np.float32))

    def test_backward_shape(self, tiny_model):
        x = np.random.default_rng(3).random((1, 3, 32, 32)).astype(np.float32)
        logits = tiny_model.forward(x)
        grad = tiny_model.backward(np.ones_like(logits))
        assert grad.shape == x.shape

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            UNet(tiny_unet_config()).backward(np.zeros((1, 3, 32, 32), dtype=np.float32))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UNetConfig(depth=0)
        with pytest.raises(ValueError):
            UNetConfig(base_channels=0)
        with pytest.raises(ValueError):
            UNetConfig(dropout=1.5)

    def test_build_unet_factory(self):
        assert isinstance(build_unet(), UNet)

    def test_deterministic_construction(self):
        a, b = UNet(UNetConfig(seed=5, depth=2, base_channels=4)), UNet(UNetConfig(seed=5, depth=2, base_channels=4))
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)


class TestTrainer:
    def test_loss_decreases_on_tiny_problem(self, tiny_split):
        train, _ = tiny_split
        loader = BatchLoader(train.images, train.labels, batch_size=4, seed=0)
        trainer = UNetTrainer(config=tiny_unet_config(seed=0), learning_rate=3e-3)
        history = trainer.fit(loader, epochs=5)
        assert history.losses[-1] < history.losses[0]
        assert history.total_time > 0
        assert history.mean_throughput > 0

    def test_learns_trivial_mapping(self):
        """A tiny U-Net must learn to map a constant-class image to its class."""
        rng = np.random.default_rng(0)
        images, labels = [], []
        values = {0: 240, 1: 120, 2: 15}
        for cls in (0, 1, 2):
            for _ in range(4):
                noise = rng.integers(-5, 6, size=(16, 16, 3))
                images.append(np.clip(values[cls] + noise, 0, 255).astype(np.uint8))
                labels.append(np.full((16, 16), cls, dtype=np.uint8))
        images, labels = np.stack(images), np.stack(labels)
        loader = BatchLoader(images, labels, batch_size=6, seed=1)
        trainer = UNetTrainer(config=UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=2), learning_rate=5e-3)
        trainer.fit(loader, epochs=40)
        report = trainer.evaluate(images, labels)
        assert report.accuracy > 0.9

    def test_evaluate_report_structure(self, tiny_split):
        train, test = tiny_split
        trainer = UNetTrainer(config=tiny_unet_config(seed=3))
        report = trainer.evaluate(test.images, test.labels, class_names=["thick", "thin", "water"])
        assert 0.0 <= report.accuracy <= 1.0
        assert report.confusion.shape == (3, 3)

    def test_fit_rejects_zero_epochs(self, tiny_split):
        train, _ = tiny_split
        loader = BatchLoader(train.images, train.labels, batch_size=4)
        with pytest.raises(ValueError):
            UNetTrainer(config=tiny_unet_config()).fit(loader, epochs=0)


class TestInference:
    def test_predict_tiles_shape(self, tiny_model, tiny_dataset):
        preds = predict_tiles(tiny_model, tiny_dataset.images[:3], batch_size=2)
        assert preds.shape == (3, 32, 32)

    def test_predict_tiles_with_filter(self, tiny_model, tiny_dataset):
        from repro.cloudshadow import CloudShadowFilter

        preds = predict_tiles(tiny_model, tiny_dataset.images[:2], cloud_filter=CloudShadowFilter())
        assert preds.shape == (2, 32, 32)

    def test_predict_tiles_rejects_bad_input(self, tiny_model, tiny_dataset):
        with pytest.raises(ValueError):
            predict_tiles(tiny_model, tiny_dataset.labels)
        with pytest.raises(ValueError):
            predict_tiles(tiny_model, tiny_dataset.images, batch_size=0)

    def test_scene_classifier_full_scene(self, tiny_model, clear_scene):
        classifier = SceneClassifier(
            model=tiny_model, config=InferenceConfig(tile_size=32, apply_cloud_filter=False, batch_size=4)
        )
        class_map = classifier.classify_scene(clear_scene.rgb)
        assert class_map.shape == clear_scene.class_map.shape
        assert set(np.unique(class_map)).issubset({0, 1, 2})

    def test_scene_classifier_rejects_bad_scene(self, tiny_model):
        classifier = SceneClassifier(model=tiny_model)
        with pytest.raises(ValueError):
            classifier.classify_scene(np.zeros((32, 32), dtype=np.uint8))

    def test_trained_classifier_beats_chance_on_scene(self, clear_scene, tiny_split):
        from repro.metrics import accuracy_score

        train, _ = tiny_split
        loader = BatchLoader(train.images, train.labels, batch_size=4, seed=0, augment=True)
        trainer = UNetTrainer(config=UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=4), learning_rate=3e-3)
        trainer.fit(loader, epochs=12)
        classifier = SceneClassifier(
            model=trainer.model, config=InferenceConfig(tile_size=32, apply_cloud_filter=False)
        )
        prediction = classifier.classify_scene(clear_scene.rgb)
        assert accuracy_score(clear_scene.class_map, prediction) > 0.6
