"""Colour-space conversions used by the cloud/shadow filter and auto-labeler.

The paper uses OpenCV's ``cv2.cvtColor`` with the ``BGR2HSV`` / ``RGB2HSV``
conventions, where for 8-bit images hue is stored in ``[0, 179]`` (degrees
halved), and saturation / value in ``[0, 255]``.  The HSV thresholds quoted
in the paper (e.g. thick ice ``(0, 0, 205)``–``(185, 255, 255)``) are
expressed in that convention, so this module reproduces it exactly.

All functions are fully vectorised NumPy; no Python-level per-pixel loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_hsv",
    "hsv_to_rgb",
    "rgb_to_gray",
    "gray_to_rgb",
    "split_channels",
    "merge_channels",
]

# OpenCV stores hue / 2 so that it fits in uint8.
_HUE_SCALE = 2.0


def _as_float(image: np.ndarray) -> np.ndarray:
    """Return a float64 copy of ``image`` scaled to [0, 1]."""
    img = np.asarray(image)
    if img.dtype == np.uint8:
        return img.astype(np.float64) / 255.0
    img = img.astype(np.float64)
    if img.size and img.max() > 1.0 + 1e-9:
        img = img / 255.0
    return img


def rgb_to_hsv(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image to HSV using OpenCV's uint8 conventions.

    Parameters
    ----------
    image:
        ``(H, W, 3)`` array, ``uint8`` in ``[0, 255]`` or float in ``[0, 1]``.

    Returns
    -------
    numpy.ndarray
        ``(H, W, 3)`` ``uint8`` array with hue in ``[0, 179]``,
        saturation and value in ``[0, 255]``.
    """
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got shape {img.shape}")
    rgb = _as_float(img)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]

    maxc = np.max(rgb, axis=-1)
    minc = np.min(rgb, axis=-1)
    delta = maxc - minc

    value = maxc
    saturation = np.where(maxc > 0, delta / np.maximum(maxc, 1e-12), 0.0)

    # Hue in degrees [0, 360)
    with np.errstate(invalid="ignore", divide="ignore"):
        safe_delta = np.where(delta > 0, delta, 1.0)
        hr = (60.0 * (g - b) / safe_delta) % 360.0
        hg = 60.0 * (b - r) / safe_delta + 120.0
        hb = 60.0 * (r - g) / safe_delta + 240.0
    hue = np.where(maxc == r, hr, np.where(maxc == g, hg, hb))
    hue = np.where(delta > 0, hue, 0.0)

    out = np.empty(img.shape[:2] + (3,), dtype=np.uint8)
    out[..., 0] = np.clip(np.round(hue / _HUE_SCALE), 0, 179).astype(np.uint8)
    out[..., 1] = np.clip(np.round(saturation * 255.0), 0, 255).astype(np.uint8)
    out[..., 2] = np.clip(np.round(value * 255.0), 0, 255).astype(np.uint8)
    return out


def hsv_to_rgb(image: np.ndarray) -> np.ndarray:
    """Convert an OpenCV-convention HSV uint8 image back to RGB uint8.

    Inverse of :func:`rgb_to_hsv` up to rounding error (hue is quantised to
    2-degree bins by the uint8 representation).
    """
    img = np.asarray(image)
    if img.ndim != 3 or img.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) HSV image, got shape {img.shape}")
    hue = img[..., 0].astype(np.float64) * _HUE_SCALE
    sat = img[..., 1].astype(np.float64) / 255.0
    val = img[..., 2].astype(np.float64) / 255.0

    c = val * sat
    hprime = hue / 60.0
    x = c * (1.0 - np.abs(hprime % 2.0 - 1.0))
    m = val - c

    zeros = np.zeros_like(c)
    # Piecewise assembly over the six hue sectors.
    conds = [
        (hprime < 1.0),
        (hprime >= 1.0) & (hprime < 2.0),
        (hprime >= 2.0) & (hprime < 3.0),
        (hprime >= 3.0) & (hprime < 4.0),
        (hprime >= 4.0) & (hprime < 5.0),
        (hprime >= 5.0),
    ]
    r = np.select(conds, [c, x, zeros, zeros, x, c])
    g = np.select(conds, [x, c, c, x, zeros, zeros])
    b = np.select(conds, [zeros, zeros, x, c, c, x])

    rgb = np.stack([r + m, g + m, b + m], axis=-1)
    return np.clip(np.round(rgb * 255.0), 0, 255).astype(np.uint8)


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Convert RGB to single-channel grayscale using the ITU-R BT.601 weights.

    Matches OpenCV's ``COLOR_RGB2GRAY`` (0.299 R + 0.587 G + 0.114 B).
    Returns ``uint8`` if the input was ``uint8``, otherwise float64.
    """
    img = np.asarray(image)
    if img.ndim == 2:
        return img.copy()
    if img.ndim != 3 or img.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got shape {img.shape}")
    weights = np.array([0.299, 0.587, 0.114], dtype=np.float64)
    gray = img.astype(np.float64) @ weights
    if img.dtype == np.uint8:
        return np.clip(np.round(gray), 0, 255).astype(np.uint8)
    return gray


def gray_to_rgb(image: np.ndarray) -> np.ndarray:
    """Replicate a single-channel image into three identical RGB channels."""
    img = np.asarray(image)
    if img.ndim == 3 and img.shape[-1] == 3:
        return img.copy()
    if img.ndim != 2:
        raise ValueError(f"expected (H, W) gray image, got shape {img.shape}")
    return np.repeat(img[..., None], 3, axis=-1)


def split_channels(image: np.ndarray) -> tuple[np.ndarray, ...]:
    """Split an ``(H, W, C)`` image into ``C`` contiguous ``(H, W)`` arrays."""
    img = np.asarray(image)
    if img.ndim != 3:
        raise ValueError(f"expected (H, W, C) image, got shape {img.shape}")
    return tuple(np.ascontiguousarray(img[..., c]) for c in range(img.shape[-1]))


def merge_channels(channels: "list[np.ndarray] | tuple[np.ndarray, ...]") -> np.ndarray:
    """Stack single-channel images back into an ``(H, W, C)`` array."""
    if not channels:
        raise ValueError("need at least one channel")
    shapes = {np.asarray(c).shape for c in channels}
    if len(shapes) != 1:
        raise ValueError(f"channel shapes differ: {shapes}")
    return np.stack([np.asarray(c) for c in channels], axis=-1)
