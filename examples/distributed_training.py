"""Distributed (Horovod-style) U-Net training with ring all-reduce.

Mirrors the paper's §III-C.1 workflow: initialise a worker group, broadcast
the initial weights, shard every global batch across workers, average the
per-worker gradients with a bandwidth-optimal ring all-reduce, and apply the
identical update everywhere.  The example verifies that 2-worker training
reproduces single-worker training step for step, then prints the DGX A100
performance-model sweep that regenerates the paper's Table III.

Run with:  python examples/distributed_training.py
"""

from __future__ import annotations

import numpy as np

from repro.data import BatchLoader, build_dataset, train_test_split
from repro.distributed import (
    DataParallelTrainer,
    DGXTrainingModel,
    DistributedOptimizer,
    paper_table3,
    ring_allreduce,
)
from repro.nn import SGD
from repro.unet import UNet, UNetConfig, UNetTrainer


def main() -> None:
    config = UNetConfig(depth=2, base_channels=8, dropout=0.0, seed=3)
    dataset = build_dataset(num_scenes=3, scene_size=64, tile_size=32, base_seed=21)
    train, _ = train_test_split(dataset, test_fraction=0.2, seed=0)

    # ------------------------------------------------------------------ #
    # 1. The ring all-reduce itself.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(0)
    gradients = [rng.normal(size=(50_000,)) for _ in range(8)]
    reduced, stats = ring_allreduce(gradients)
    print("1. ring all-reduce over 8 workers:")
    print(f"   per-worker traffic = {stats.traffic_fraction:.2f}x the buffer "
          f"(theory: 2(p-1)/p = {2 * 7 / 8:.2f}), {stats.communication_steps} communication steps")
    assert np.allclose(reduced[0], np.mean(gradients, axis=0))

    # ------------------------------------------------------------------ #
    # 2. Synchronous data-parallel training equals single-worker training.
    # ------------------------------------------------------------------ #
    print("2. verifying 2-worker synchronous training matches 1-worker training ...")
    serial = UNetTrainer(model=UNet(config), learning_rate=1e-2)
    serial.optimizer = SGD(serial.model.parameters(), lr=1e-2)
    serial.fit(BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True), epochs=1)

    parallel = DataParallelTrainer(num_workers=2, config=config, learning_rate=1e-2)
    parallel.optimizer = DistributedOptimizer(SGD(parallel.master.parameters(), lr=1e-2), parallel.group)
    parallel.fit(BatchLoader(train.images, train.labels, batch_size=4, shuffle=False, drop_last=True), epochs=1)

    max_diff = max(
        float(np.abs(a.value - b.value).max())
        for a, b in zip(serial.model.parameters(), parallel.master.parameters())
    )
    print(f"   max weight difference after one epoch: {max_diff:.2e} (identical trajectories)")

    # ------------------------------------------------------------------ #
    # 3. The DGX A100 sweep of Table III / Figure 12.
    # ------------------------------------------------------------------ #
    print("3. DGX A100 performance-model sweep (Table III / Figure 12):")
    model = DGXTrainingModel()
    for row in model.sweep():
        print(f"   {row}")
    print("   paper's published rows:")
    for row in paper_table3():
        print(f"   {row}")
    print(f"   mean relative error vs the paper: {model.relative_error_vs_paper():.1%}")


if __name__ == "__main__":
    main()
